//! Shape tests: the paper's qualitative findings must hold on the smoke-
//! scale reproduction of every experiment. These are the repository's
//! regression net for the characterization results themselves.

use memres_bench::experiments as ex;

fn setup() -> ex::Setup {
    ex::Setup::smoke()
}

#[test]
fn fig5a_lustre_input_hurts_scan_jobs() {
    let t = ex::fig5a(setup());
    let ratios = t.column("ratio-32");
    assert!(
        ratios.iter().all(|&r| r > 3.0),
        "Lustre should cost scan jobs several x: {ratios:?}"
    );
    // Larger splits help the Lustre configuration (scheduling/RPC overhead).
    let l32 = t.column("lustre-32");
    let l128 = t.column("lustre-128");
    for (a, b) in l32.iter().zip(l128.iter()) {
        assert!(
            b < a,
            "128 MB splits should beat 32 MB on Lustre: {b} vs {a}"
        );
    }
}

#[test]
fn fig5b_lustre_competitive_for_compute_bound_lr() {
    let t = ex::fig5b(setup());
    // Compute-intensive jobs: the storage architecture is a small effect.
    for r in t.column("lustre-gain-%") {
        assert!(
            (-15.0..60.0).contains(&r),
            "LR gain should be modest, got {r}%"
        );
    }
}

#[test]
fn fig7_intermediate_data_placement_ordering() {
    let t = ex::fig7a(setup());
    let ram = t.column("hdfs-ram");
    let ll = t.column("lustre-local");
    let ls = t.column("lustre-shared");
    // Lustre-shared is never better than Lustre-local (DLM revocations).
    for (a, b) in ls.iter().zip(ll.iter()) {
        assert!(*a >= b * 0.95, "shared {a} should not beat local {b}");
    }
    // The local-store advantage grows with intermediate size.
    let first_ratio = ll[0] / ram[0];
    let last_ratio = ll[ll.len() - 1] / ram[ram.len() - 1];
    assert!(
        last_ratio > first_ratio,
        "LL/ram should grow with size: {first_ratio} -> {last_ratio}"
    );
    assert!(
        last_ratio > 2.0,
        "LL should lose clearly at TB scale: {last_ratio}"
    );
}

#[test]
fn fig7b_shared_shuffle_phase_collapses() {
    let t = ex::fig7b(setup());
    let r = t.column("shuffle-ratio");
    assert!(
        r.iter().cloned().fold(0.0, f64::max) > 1.5,
        "Lustre-shared shuffling should be much slower: {r:?}"
    );
}

#[test]
fn fig8_ssd_parity_then_collapse() {
    let t = ex::fig8a(setup());
    let ratios = t.column("ssd/ram");
    // Parity in the cache regime...
    assert!(
        ratios[0] < 1.3,
        "small sizes should be comparable: {ratios:?}"
    );
    // ...clear degradation at 1.5 TB.
    assert!(
        *ratios.last().unwrap() > 2.0,
        "SSD should degrade at 1.5 TB: {ratios:?}"
    );
    // Monotone-ish growth of the gap.
    assert!(ratios.last().unwrap() > &ratios[0]);
}

#[test]
fn fig8c_task_spread_widens() {
    let t = ex::fig8c(setup());
    let spread = t.column("max/min");
    assert!(
        *spread.last().unwrap() > spread[0],
        "spread should widen with data size: {spread:?}"
    );
    assert!(
        *spread.last().unwrap() > 8.0,
        "1.5 TB spread should be large (paper 18x): {spread:?}"
    );
}

#[test]
fn fig9_delay_scheduling_degrades() {
    let t = ex::fig9a(setup());
    let deg = t.column("degradation-%");
    assert!(deg[0] > 5.0, "Grep at 32 MB should degrade: {deg:?}");
    let t = ex::fig9b(setup());
    for d in t.column("degradation-%") {
        assert!(d >= -5.0, "delay should never help LR: {d}");
    }
}

#[test]
fn fig10_locality_buys_little() {
    let t = ex::fig10(setup());
    // For each benchmark, local vs remote mean task times are close
    // (within 2x — the paper's point is "little performance gain").
    for pair in t.rows.chunks(2) {
        let (local_label, local) = &pair[0];
        let (_, remote) = &pair[1];
        if local[1] == 0.0 || remote[1] == 0.0 {
            continue; // a class with no tasks at smoke scale
        }
        // The paper's claim is one-sided: remote input does not make tasks
        // meaningfully slower (pipelined input). Remote tasks can be *faster*
        // here: FIFO steals tail tasks onto lightly loaded nodes.
        let ratio = remote[1] / local[1];
        assert!(
            ratio < 2.0,
            "{local_label}: remote tasks much slower ({ratio}x)"
        );
    }
}

#[test]
fn fig12_imbalance_emerges_from_speed_skew() {
    let t = ex::fig12b(setup());
    // p90 / p10 of per-node intermediate data should show real skew.
    let p10 = &t.rows[1];
    let p90 = &t.rows[9];
    assert_eq!(p10.0, "p 10");
    for (lo, hi) in p10.1.iter().zip(p90.1.iter()) {
        assert!(hi > lo, "CDF must be increasing");
        assert!(
            hi / lo.max(1e-9) > 1.2,
            "skew should be visible: {lo} vs {hi}"
        );
    }
}

#[test]
fn fig13a_elb_helps_under_storage_bottleneck() {
    let t = ex::fig13a(setup());
    let imp = t.column("improvement-%");
    let large = imp.last().unwrap();
    assert!(*large > 0.0, "ELB should improve the largest run: {imp:?}");
}

#[test]
fn fig14_cad_accelerates_storing() {
    let (a, b) = ex::fig14(setup());
    let imp = a.column("improvement-%");
    let store_imp = b.column("store-improvement-%");
    assert!(
        *store_imp.last().unwrap() > 5.0,
        "CAD should accelerate storing at 1.5 TB: {store_imp:?}"
    );
    assert!(
        *imp.last().unwrap() > 0.0,
        "CAD should improve job time at 1.5 TB: {imp:?}"
    );
}

#[test]
fn table1_and_plans_render() {
    let t = ex::table1();
    assert_eq!(t.rows.len(), 5);
    let plans = ex::plans(setup());
    assert!(plans.contains("GroupBy"));
    assert!(plans.contains("ShuffleMapTasks"));
    assert!(plans.contains("Logistic Regression"));
}
