//! Cross-crate correctness: real jobs must produce identical results no
//! matter which simulated storage architecture, scheduler, or optimization
//! executes them — performance models may change timing, never answers.

use memres::cluster::tiny;
use memres::core::prelude::*;
use memres::workloads::datagen;
use std::collections::HashMap;

fn wordcount(cfg: EngineConfig) -> HashMap<String, i64> {
    let mut driver = Driver::new(tiny(4), cfg);
    let recs: Vec<Record> = datagen::text_lines(300, 7)
        .into_iter()
        .flat_map(|(_, line)| {
            line.as_str()
                .split_whitespace()
                .map(|w| (Value::str(w), Value::I64(1)))
                .collect::<Vec<_>>()
        })
        .collect();
    let rdd =
        Rdd::source(Dataset::from_records(recs, 6)).reduce_by_key(Some(3), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    let (out, _) = driver.run(&rdd, Action::Collect);
    out.records
        .expect("real job collects")
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
        .collect()
}

#[test]
fn results_identical_across_shuffle_strategies() {
    let base = EngineConfig::default().homogeneous();
    let reference = wordcount(base.clone());
    assert!(!reference.is_empty());
    let total: i64 = reference.values().sum();
    assert!(total > 1000, "word occurrences: {total}");
    for shuffle in [
        ShuffleStore::Local(StoreDevice::RamDisk),
        ShuffleStore::Local(StoreDevice::Ssd),
        ShuffleStore::LustreLocal,
        ShuffleStore::LustreShared,
    ] {
        let got = wordcount(EngineConfig {
            shuffle,
            ..base.clone()
        });
        assert_eq!(got, reference, "results diverged under {shuffle:?}");
    }
}

#[test]
fn results_identical_across_schedulers_and_optimizations() {
    let base = EngineConfig {
        speed_sigma: 0.4,
        ..EngineConfig::default()
    };
    let reference = wordcount(base.clone().homogeneous());
    for cfg in [
        base.clone(),
        base.clone()
            .with_delay_scheduling(memres_des::SimDuration::from_secs(3)),
        base.clone().with_elb(),
        base.clone().with_cad(),
        EngineConfig {
            input: InputSource::Lustre,
            ..base.clone()
        },
    ] {
        assert_eq!(wordcount(cfg), reference);
    }
}

#[test]
fn group_by_key_groups_are_complete_under_every_store() {
    for shuffle in [
        ShuffleStore::Local(StoreDevice::RamDisk),
        ShuffleStore::LustreShared,
    ] {
        let cfg = EngineConfig {
            shuffle,
            ..EngineConfig::default()
        }
        .homogeneous();
        let mut driver = Driver::new(tiny(4), cfg);
        let recs = datagen::kv_pairs(500, 13, 3);
        let rdd = Rdd::source(Dataset::from_records(recs, 5)).group_by_key(Some(4), 1e9);
        let (out, _) = driver.run(&rdd, Action::Collect);
        let groups = out.records.unwrap();
        assert_eq!(groups.len(), 13, "all 13 keys appear");
        let values: usize = groups.iter().map(|(_, v)| v.as_list().len()).sum();
        assert_eq!(values, 500, "no record lost or duplicated in the shuffle");
    }
}

#[test]
fn multi_shuffle_pipeline_runs_end_to_end() {
    // Two chained shuffles: group, re-key by group size, group again.
    let cfg = EngineConfig::default().homogeneous();
    let mut driver = Driver::new(tiny(4), cfg);
    let recs = datagen::kv_pairs(200, 10, 5);
    let rdd = Rdd::source(Dataset::from_records(recs, 4))
        .group_by_key(Some(4), 1e9)
        .map("size-key", SizeModel::scan(), |(_, v)| {
            (Value::I64(v.as_list().len() as i64), Value::I64(1))
        })
        .group_by_key(Some(2), 1e9);
    let (out, metrics) = driver.run(&rdd, Action::Collect);
    let groups = out.records.unwrap();
    // Total inner values across size-groups = 10 original keys.
    let total: usize = groups.iter().map(|(_, v)| v.as_list().len()).sum();
    assert_eq!(total, 10);
    // Three stages ran: two storing phases recorded.
    let storing_stages: std::collections::HashSet<u32> =
        metrics.tasks_in(Phase::Storing).map(|t| t.stage).collect();
    assert_eq!(
        storing_stages.len(),
        2,
        "both shuffles flushed intermediate data"
    );
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let cfg = EngineConfig {
            speed_sigma: 0.3,
            seed: 9,
            ..EngineConfig::default()
        };
        let mut driver = Driver::new(tiny(6), cfg);
        let gb = memres::workloads::GroupBy::new(3.0e9).with_reducers(8);
        driver.run_for_metrics(&gb.build(), gb.action()).job_time()
    };
    assert_eq!(run(), run());
}
