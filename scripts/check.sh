#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and a smoke run of
# the machine-readable performance benchmark (see EXPERIMENTS.md
# "Performance"). Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== memres-lint (determinism rules, DESIGN.md 4.10) =="
cargo run -q -p memres-lint

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== bench smoke (JSON) =="
out="$(mktemp -d)"
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$out" bench >/dev/null
test -s "$out/bench.json" || { echo "bench.json missing or empty"; exit 1; }
grep -q '"total_wall_s"' "$out/bench.json" || { echo "bench.json malformed"; exit 1; }
echo "ok: $out/bench.json"

echo "== fault smoke (JSON) =="
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$out" faults >/dev/null
test -s "$out/faults.json" || { echo "faults.json missing or empty"; exit 1; }
grep -q '"tasks_retried"' "$out/faults.json" || { echo "faults.json malformed"; exit 1; }
echo "ok: $out/faults.json"
