#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and a smoke run of
# the machine-readable performance benchmark (see EXPERIMENTS.md
# "Performance"). Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== memres-lint (determinism rules, DESIGN.md 4.10) =="
cargo run -q -p memres-lint

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== bench smoke (JSON) =="
out="$(mktemp -d)"
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$out" bench >/dev/null
test -s "$out/bench.json" || { echo "bench.json missing or empty"; exit 1; }
grep -q '"total_wall_s"' "$out/bench.json" || { echo "bench.json malformed"; exit 1; }
echo "ok: $out/bench.json"

echo "== fault smoke (JSON) =="
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$out" faults >/dev/null
test -s "$out/faults.json" || { echo "faults.json missing or empty"; exit 1; }
grep -q '"tasks_retried"' "$out/faults.json" || { echo "faults.json malformed"; exit 1; }
echo "ok: $out/faults.json"

echo "== trace smoke (Perfetto JSON, byte-deterministic) =="
# One traced cell, run twice into separate dirs: the Perfetto JSON must
# parse and both runs must produce byte-identical trace artifacts
# (DESIGN.md 4.11 determinism contract, from the shell's point of view).
cell="fig7a_400gb_ramdisk"
run_a="$out/trace-a"; run_b="$out/trace-b"
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$run_a" trace "$cell" >/dev/null
cargo run -q --release -p memres-bench --bin repro -- --smoke --json "$run_b" trace "$cell" >/dev/null
for d in "$run_a" "$run_b"; do
  test -s "$d/$cell.trace.json" || { echo "$d/$cell.trace.json missing or empty"; exit 1; }
  test -s "$d/$cell.events.jsonl" || { echo "$d/$cell.events.jsonl missing or empty"; exit 1; }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'no trace events'" \
    "$run_a/$cell.trace.json" || { echo "trace.json is not valid JSON"; exit 1; }
else
  echo "(python3 not found; skipping JSON parse validation)"
fi
cmp -s "$run_a/$cell.trace.json" "$run_b/$cell.trace.json" \
  || { echo "trace.json differs between identical runs"; exit 1; }
cmp -s "$run_a/$cell.events.jsonl" "$run_b/$cell.events.jsonl" \
  || { echo "events.jsonl differs between identical runs"; exit 1; }
echo "ok: $run_a/$cell.trace.json (deterministic)"
