#!/usr/bin/env bash
# Regenerate BENCH_10.json: before/after engine-throughput evidence for the
# scale-out work (calendar queue + rack aggregation + SoA arenas), re-baselined
# after the metrics-plane PR (sampler is off by default in bench runs, so
# release-build throughput and sim_job_s must be unchanged — `repro diff
# BENCH_9.json BENCH_10.json` in scripts/check.sh holds that line).
#
#   scripts/bench_baseline.sh [OUT_JSON]
#
# Runs, with a release build:
#   repro bench                    paper cells, optimized       (after)
#   repro bench  --baseline        paper cells, legacy queue    (before)
#   repro scale  --smoke           CI scale cell, optimized     (after)
#   repro scale  --smoke --baseline  CI scale cell, per-node    (before)
#   repro scale                    full scale family, optimized (after)
#   repro scale  --baseline        full family; only baseline-feasible
#                                  cells run (per-node flows beyond a few
#                                  hundred nodes never finish — see
#                                  DESIGN.md, rack aggregation)
# and merges the per-target JSON into one before/after document. Run on an
# otherwise-idle machine; the checked-in file is the reference CI floors
# are computed from (scripts/check.sh, .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_10.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release -q -p memres-bench

REPRO=target/release/repro
"$REPRO" bench --json "$TMP" >/dev/null
"$REPRO" bench --baseline --json "$TMP" >/dev/null
"$REPRO" scale --smoke --json "$TMP/smoke" >/dev/null
"$REPRO" scale --smoke --baseline --json "$TMP/smoke" >/dev/null
"$REPRO" scale --json "$TMP" >/dev/null
"$REPRO" scale --baseline --json "$TMP" >/dev/null 2>&1 || true

python3 - "$TMP" "$OUT" <<'EOF'
import json, sys, os

tmp, out = sys.argv[1], sys.argv[2]

def load(path):
    full = os.path.join(tmp, path)
    if not os.path.exists(full):
        return {"runs": []}
    with open(full) as f:
        return json.load(f)

after = load("scale.json")
smoke_after = load("smoke/scale.json")
smoke_before = load("smoke/scale_baseline.json")
before = load("scale_baseline.json")

doc = {
    "issue": 10,
    "note": "engine throughput before/after the scale-out work; "
            "'before' = legacy binary-heap event queue + per-node fetch "
            "flows (rack aggregation off). Missing 'before' rows are "
            "baseline-infeasible cells (per-node flows at >=1k nodes).",
    "paper_cells": {
        "before": load("bench_baseline.json")["runs"],
        "after": load("bench.json")["runs"],
    },
    "scale_cells": {
        "before": smoke_before["runs"] + before["runs"],
        "after": smoke_after["runs"] + after["runs"],
    },
}

names = {r["name"]: r for r in doc["scale_cells"]["before"]}
for r in doc["scale_cells"]["after"]:
    b = names.get(r["name"])
    if b and b["events_per_s"] > 0:
        r["speedup_events_per_s"] = round(r["events_per_s"] / b["events_per_s"], 2)

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF
