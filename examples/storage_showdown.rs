//! The paper's central question at example scale: where should a
//! dual-purpose HPC system keep MapReduce data?
//!
//! Runs the same GroupBy job across the §IV design space — input from HDFS
//! vs Lustre, intermediate data on the local store vs `Lustre-local` vs
//! `Lustre-shared` — and prints the comparison the paper's Figs 5/7 make.
//!
//! Run with: `cargo run --release --example storage_showdown`

use memres::core::prelude::*;
use memres::workloads::{Grep, GroupBy};
use memres_des::units::{GB, MB};

fn main() {
    // A 1/10th-scale Hyperion: 10 workers, proportional Lustre bandwidth.
    let cluster = memres::cluster::hyperion().scaled_workers(10);
    let input_gb = 40.0;

    println!("== input-source comparison (paper Fig 5) ==");
    let grep = Grep::new(input_gb * GB).with_split(32.0 * MB);
    let mut results = Vec::new();
    for (name, input, delay) in [
        ("HDFS/RAMDisk + delay sched", InputSource::HdfsRamDisk, true),
        ("Lustre + immediate sched  ", InputSource::Lustre, false),
    ] {
        let mut cfg = EngineConfig {
            input,
            ..EngineConfig::default()
        };
        if delay {
            cfg = cfg.with_delay_scheduling(memres_des::SimDuration::from_secs(3));
        }
        let mut driver = Driver::new(cluster.clone(), cfg);
        let m = driver.run_for_metrics(&grep.build(), grep.action());
        println!(
            "  Grep {input_gb:.0} GB | {name} | job {:>7.2}s",
            m.job_time()
        );
        results.push(m.job_time());
    }
    println!(
        "  -> compute-centric Lustre input costs {:.1}x for scan-style jobs\n",
        results[1] / results[0]
    );

    println!("== intermediate-data placement (paper Fig 7) ==");
    let gb = GroupBy::new(input_gb * GB);
    for (name, shuffle) in [
        (
            "local RAMDisk store   ",
            ShuffleStore::Local(StoreDevice::RamDisk),
        ),
        ("Lustre-local fetching ", ShuffleStore::LustreLocal),
        ("Lustre-shared fetching", ShuffleStore::LustreShared),
    ] {
        let cfg = EngineConfig {
            input: InputSource::Lustre,
            shuffle,
            ..EngineConfig::default()
        };
        let mut driver = Driver::new(cluster.clone(), cfg);
        let m = driver.run_for_metrics(&gb.build(), gb.action());
        println!(
            "  GroupBy {input_gb:.0} GB | {name} | job {:>7.2}s (store {:>6.2}s, shuffle {:>6.2}s)",
            m.job_time(),
            m.phase_time(Phase::Storing),
            m.phase_time(Phase::Shuffling),
        );
    }
    println!(
        "  -> the DLM makes direct shared-file-system shuffles collapse: \
         \"avoid a pitfall to use traditional HPC parallel file system as a \
         bridge for fast storage of intermediate data\" (§VII)"
    );
}
