//! kMeans — one of the GroupBy-family applications the paper names (§III-B)
//! — as real Lloyd iterations over a memory-resident cached point set.
//!
//! Run with: `cargo run --release --example kmeans`

use memres::core::prelude::*;
use memres::workloads::KMeans;
use memres_des::units::MB;
use std::sync::Arc;

fn main() {
    let cluster = memres::cluster::tiny(4);
    let mut driver = Driver::new(cluster, EngineConfig::default().homogeneous());

    let km = KMeans {
        dims: 2,
        iterations: 8,
        ..KMeans::new(2.0 * MB, 3)
    };
    let (points, assign) = km.build_real(3000, 99);

    let mut centroids = Arc::new(vec![vec![-1.5, -1.5], vec![0.0, 0.2], vec![1.5, 1.5]]);
    println!("iter |  job time | centroid shift");
    for it in 0..km.iterations {
        let job = assign(&points, centroids.clone());
        let (out, metrics) = driver.run(&job, Action::Collect);
        let next = km.centroids_from(&out.records.expect("collect returns accumulators"));
        let shift: f64 = next
            .iter()
            .zip(centroids.iter())
            .map(|(a, b)| {
                a.iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
            })
            .sum::<f64>()
            .sqrt();
        centroids = Arc::new(next);
        println!("{it:4} | {:>8.3}s | {shift:.5}", metrics.job_time());
        if shift < 1e-4 {
            println!("converged after {} iterations", it + 1);
            break;
        }
    }
    println!("\nfinal centroids:");
    for (i, c) in centroids.iter().enumerate() {
        println!("  c{i}: [{:+.3}, {:+.3}]", c[0], c[1]);
    }
}
