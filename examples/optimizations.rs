//! The paper's two optimizations in action: the Enhanced Load Balancer
//! (§VI-A) and Congestion-Aware Dispatching (§VI-B), at example scale.
//!
//! Run with: `cargo run --release --example optimizations`

use memres::core::prelude::*;
use memres::workloads::GroupBy;
use memres_des::units::GB;

fn run_variant(name: &str, cfg: EngineConfig, job: &GroupBy) -> f64 {
    let cluster = memres::cluster::hyperion().scaled_workers(10);
    let mut driver = Driver::new(cluster, cfg);
    let m = driver.run_for_metrics(&job.build(), job.action());
    println!(
        "  {name:<14} job {:>7.2}s | compute {:>6.2}s store {:>6.2}s shuffle {:>6.2}s",
        m.job_time(),
        m.phase_time(Phase::Compute),
        m.phase_time(Phase::Storing),
        m.phase_time(Phase::Shuffling),
    );
    m.job_time()
}

fn main() {
    // Heterogeneous node speeds (workload skew over time) + SSD-backed
    // shuffle store: the conditions that expose both problems.
    let base = EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(StoreDevice::Ssd),
        speed_sigma: 0.35,
        ..EngineConfig::default()
    };
    let job = GroupBy::new(120.0 * GB);

    println!("== Enhanced Load Balancer (paper Fig 13) ==");
    let plain = run_variant("spark", base.clone(), &job);
    let elb = run_variant("spark + ELB", base.clone().with_elb(), &job);
    println!(
        "  -> ELB improvement: {:.1}% (balances intermediate data across nodes)\n",
        (plain - elb) / plain * 100.0
    );

    println!("== Congestion-Aware Dispatching (paper Fig 14) ==");
    let plain = run_variant("spark", base.clone(), &job);
    let cad = run_variant("spark + CAD", base.with_cad(), &job);
    println!(
        "  -> CAD improvement: {:.1}% (throttles ShuffleMapTasks so SSD GC keeps up)",
        (plain - cad) / plain * 100.0
    );
}
