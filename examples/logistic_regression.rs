//! Iterative machine learning on a memory-resident dataset — the paper's LR
//! benchmark (§III-B, Fig 4c), with real gradient descent that converges.
//!
//! Demonstrates the memory-resident RDD feature: iteration 1 parses and
//! caches the points; iterations 2+ read the cache at memory speed with
//! perfect locality, exactly like Spark.
//!
//! Run with: `cargo run --release --example logistic_regression`

use memres::core::prelude::*;
use memres::workloads::LogisticRegression;
use memres_des::units::MB;
use std::sync::Arc;

fn main() {
    let cluster = memres::cluster::tiny(4);
    let mut driver = Driver::new(cluster, EngineConfig::default().homogeneous());

    let dims = 6;
    let lr = LogisticRegression {
        dims,
        iterations: 5,
        ..LogisticRegression::new(2.0 * MB)
    };
    let (points, gradient_job, sum_action) = lr.build_real(4000, 42);

    let mut weights = Arc::new(vec![0.0_f64; dims]);
    let step = 1.0 / 4000.0;

    println!("iter |     job time | grad norm | weights (first 4)");
    for it in 0..lr.iterations {
        let job = gradient_job(&points, weights.clone());
        let (out, metrics) = driver.run(&job, sum_action.clone());
        let grad = out
            .reduced
            .expect("LR reduces to a gradient")
            .as_vec()
            .to_vec();
        let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        weights = Arc::new(
            weights
                .iter()
                .zip(grad.iter())
                .map(|(w, g)| w - step * g)
                .collect(),
        );
        println!(
            "{it:4} | {:>9.3}s   | {norm:>9.1} | {:?}",
            metrics.job_time(),
            &weights[..4.min(dims)]
        );
        if it == 0 {
            println!("     '- cold: parsed input + populated the block-manager cache");
        }
    }

    // The generator plants alternating-sign truth [+,-,+,-,...]: the learned
    // weights recover the signs.
    for (i, w) in weights.iter().enumerate() {
        let expected_positive = i % 2 == 0;
        assert_eq!(
            *w > 0.0,
            expected_positive,
            "weight {i} should be {}",
            if expected_positive {
                "positive"
            } else {
                "negative"
            }
        );
    }
    println!("\nconverged: learned weight signs match the planted model");
}
