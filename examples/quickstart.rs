//! Quickstart: build an RDD pipeline, run it on a simulated HPC cluster,
//! and read back both the (real) result and the performance metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use memres::core::prelude::*;

fn main() {
    // A 4-node test cluster (use `memres::cluster::hyperion()` for the
    // paper's 100-node LLNL testbed).
    let cluster = memres::cluster::tiny(4);

    // Engine configured like the paper's data-centric setup: HDFS on
    // RAMDisk, local shuffle store.
    let config = EngineConfig::default().homogeneous();
    let mut driver = Driver::new(cluster, config);

    // Real data: word-count over a tiny corpus.
    let words = "the quick brown fox jumps over the lazy dog the fox";
    let records: Vec<Record> = words
        .split_whitespace()
        .map(|w| (Value::Null, Value::str(w)))
        .collect();

    let counts = Rdd::source(Dataset::from_records(records, 4))
        .map("kv", SizeModel::scan(), |(_, word)| (word, Value::I64(1)))
        .reduce_by_key(Some(2), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });

    // Print the execution plan (paper Fig 3/4 style).
    println!("{}", driver.explain(&counts, Action::Collect));

    let (output, metrics) = driver.run(&counts, Action::Collect);
    let mut rows: Vec<(String, i64)> = output
        .records
        .expect("real data collects")
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("word counts:");
    for (word, n) in &rows {
        println!("  {word:>8} {n}");
    }
    assert_eq!(rows[0], ("the".to_string(), 3));

    println!("\nsimulated job time: {:.3}s", metrics.job_time());
    println!(
        "phases: compute {:.3}s | storing {:.3}s | shuffling {:.3}s",
        metrics.phase_time(Phase::Compute),
        metrics.phase_time(Phase::Storing),
        metrics.phase_time(Phase::Shuffling),
    );
}
