//! # memres
//!
//! Umbrella crate re-exporting the whole memory-resident MapReduce stack.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-reproduction results.

pub use memres_cluster as cluster;
pub use memres_core as core;
pub use memres_des as des;
pub use memres_hdfs as hdfs;
pub use memres_lustre as lustre;
pub use memres_net as net;
pub use memres_storage as storage;
pub use memres_workloads as workloads;
