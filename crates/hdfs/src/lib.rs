//! # memres-hdfs — HDFS model
//!
//! The data-centric storage of the paper's comparison (Fig 2b): a NameNode
//! mapping blocks to DataNode replica locations, with the standard placement
//! policy (writer-local, then off-rack, then on-that-rack). DataNodes sit on
//! the per-node `LocalFs` mounts (RAMDisk in the paper's data-centric
//! configuration); this crate owns only metadata — which node holds which
//! block — because that is what locality-aware scheduling consumes.
//!
//! Byte movement (short-circuit local reads, remote reads over the fabric,
//! the write pipeline) is orchestrated by the engine using the placement
//! answers returned here.

use memres_cluster::{split_bytes, ClusterSpec, NodeId};
use memres_des::{Bytes, DetMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HdfsFile(pub u64);

/// How close a reader is to a replica — the locality levels delay scheduling
/// bargains over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    NodeLocal,
    RackLocal,
    Remote,
}

#[derive(Clone, Debug)]
pub struct HdfsConfig {
    /// Block size (the paper sets 128 MB).
    pub block_size: f64,
    /// Replication factor. The paper's RAMDisk-backed HDFS can only afford 1
    /// for TB-scale intermediate data; inputs typically use 2–3.
    pub replication: u32,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: 128.0 * 1024.0 * 1024.0,
            replication: 2,
        }
    }
}

#[derive(Clone, Debug)]
struct BlockInfo {
    size: f64,
    locations: Vec<NodeId>,
}

/// NameNode state: files → blocks → replica locations.
pub struct Hdfs {
    cfg: HdfsConfig,
    cluster: ClusterSpec,
    blocks: DetMap<BlockId, BlockInfo>,
    files: DetMap<HdfsFile, Vec<BlockId>>,
    node_used: Vec<f64>,
    node_capacity: f64,
    next_block: u64,
    next_file: u64,
    rng: SmallRng,
}

impl Hdfs {
    pub fn new(cfg: HdfsConfig, cluster: ClusterSpec, node_capacity: f64, seed: u64) -> Self {
        let workers = cluster.workers as usize;
        Hdfs {
            cfg,
            cluster,
            blocks: DetMap::new(),
            files: DetMap::new(),
            node_used: vec![0.0; workers],
            node_capacity,
            next_block: 0,
            next_file: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x0d15_f00d),
        }
    }

    pub fn config(&self) -> &HdfsConfig {
        &self.cfg
    }

    fn fresh_file(&mut self) -> HdfsFile {
        let f = HdfsFile(self.next_file);
        self.next_file += 1;
        self.files.insert(f, Vec::new());
        f
    }

    fn fresh_block(&mut self, size: f64, locations: Vec<NodeId>) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        for &n in &locations {
            self.node_used[n.index()] += size;
        }
        self.blocks.insert(id, BlockInfo { size, locations });
        id
    }

    fn has_room(&self, node: NodeId, bytes: f64) -> bool {
        self.node_used[node.index()] + bytes <= self.node_capacity
    }

    /// Standard HDFS placement: first replica writer-local (or random),
    /// second on a different rack, third on the second's rack; all distinct
    /// nodes with room. Returns fewer than `replication` when space is tight.
    fn place(&mut self, writer: Option<NodeId>, bytes: f64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let workers = self.cluster.workers;
        let pick = |hdfs: &mut Self,
                    pred: &dyn Fn(&Self, NodeId) -> bool,
                    out: &Vec<NodeId>|
         -> Option<NodeId> {
            // Bounded random probing, then linear fallback: deterministic
            // given the seeded RNG.
            for _ in 0..16 {
                let n = NodeId(hdfs.rng.gen_range(0..workers));
                if !out.contains(&n) && hdfs.has_room(n, bytes) && pred(hdfs, n) {
                    return Some(n);
                }
            }
            (0..workers)
                .map(NodeId)
                .find(|&n| !out.contains(&n) && hdfs.has_room(n, bytes) && pred(hdfs, n))
        };
        // Replica 1: writer-local when possible.
        let first = match writer {
            Some(w) if self.has_room(w, bytes) => Some(w),
            _ => pick(self, &|_, _| true, &out),
        };
        let Some(first) = first else { return out };
        out.push(first);
        if self.cfg.replication >= 2 {
            // Replica 2: different rack from the first.
            if let Some(n) = pick(self, &|h, n| !h.cluster.same_rack(n, first), &out)
                .or_else(|| pick(self, &|_, _| true, &out))
            {
                out.push(n);
            }
        }
        if self.cfg.replication >= 3 && out.len() >= 2 {
            let second = out[1];
            if let Some(n) = pick(self, &|h, n| h.cluster.same_rack(n, second), &out)
                .or_else(|| pick(self, &|_, _| true, &out))
            {
                out.push(n);
            }
        }
        for _ in 3..self.cfg.replication {
            if let Some(n) = pick(self, &|_, _| true, &out) {
                out.push(n);
            }
        }
        out
    }

    /// Write a file of `total_bytes` from `writer` (None = loaded from
    /// outside). Returns the file and its block layout so the engine can
    /// charge the DataNode writes and pipeline transfers.
    pub fn create_file(
        &mut self,
        writer: Option<NodeId>,
        total_bytes: f64,
    ) -> (HdfsFile, Vec<(BlockId, f64, Vec<NodeId>)>) {
        let file = self.fresh_file();
        let nblocks = ((total_bytes / self.cfg.block_size).ceil() as u32).max(1);
        let sizes = split_bytes(total_bytes.round() as u64, nblocks);
        let mut layout = Vec::with_capacity(nblocks as usize);
        for sz in sizes {
            let bytes = sz as f64;
            let locs = self.place(writer, bytes);
            assert!(!locs.is_empty(), "HDFS cluster out of space");
            let b = self.fresh_block(bytes, locs.clone());
            self.files.get_mut(&file).expect("fresh file").push(b);
            layout.push((b, bytes, locs));
        }
        (file, layout)
    }

    /// Load a balanced input dataset: blocks spread round-robin so every
    /// DataNode holds an equal share (how a well-ingested corpus looks).
    pub fn load_balanced_dataset(&mut self, total_bytes: f64) -> HdfsFile {
        let file = self.fresh_file();
        let nblocks = ((total_bytes / self.cfg.block_size).ceil() as u32).max(1);
        let sizes = split_bytes(total_bytes.round() as u64, nblocks);
        let workers = self.cluster.workers;
        let start = self.rng.gen_range(0..workers);
        for (i, sz) in sizes.into_iter().enumerate() {
            let bytes = sz as f64;
            let mut locs = vec![NodeId((start + i as u32) % workers)];
            for r in 1..self.cfg.replication {
                locs.push(NodeId(
                    (start + i as u32 + r * (workers / 2).max(1)) % workers,
                ));
            }
            locs.dedup();
            let b = self.fresh_block(bytes, locs);
            self.files.get_mut(&file).expect("fresh file").push(b);
        }
        file
    }

    /// Register a block at explicit locations (input layout control for the
    /// experiment harness). Returns its id.
    pub fn place_block_at(
        &mut self,
        file: HdfsFile,
        bytes: Bytes,
        locations: Vec<NodeId>,
    ) -> BlockId {
        let bytes = bytes.get();
        assert!(!locations.is_empty());
        for &n in &locations {
            assert!(n.0 < self.cluster.workers, "unknown node {n:?}");
        }
        let b = self.fresh_block(bytes, locations);
        self.files.entry(file).or_default().push(b);
        b
    }

    /// Create an empty file handle for explicit block placement.
    pub fn new_file(&mut self) -> HdfsFile {
        self.fresh_file()
    }

    pub fn file_blocks(&self, file: HdfsFile) -> &[BlockId] {
        self.files.get(&file).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn block_size_of(&self, block: BlockId) -> f64 {
        self.blocks[&block].size
    }

    pub fn locations(&self, block: BlockId) -> &[NodeId] {
        &self.blocks[&block].locations
    }

    pub fn file_size(&self, file: HdfsFile) -> f64 {
        self.file_blocks(file)
            .iter()
            .map(|b| self.blocks[b].size)
            .sum()
    }

    /// Locality of `reader` with respect to `block`'s replicas.
    pub fn locality(&self, reader: NodeId, block: BlockId) -> Locality {
        let locs = self.locations(block);
        if locs.contains(&reader) {
            Locality::NodeLocal
        } else if locs.iter().any(|&n| self.cluster.same_rack(n, reader)) {
            Locality::RackLocal
        } else {
            Locality::Remote
        }
    }

    /// Best replica for `reader`: node-local if any, else rack-local, else
    /// the first replica.
    pub fn preferred_source(&self, reader: NodeId, block: BlockId) -> (NodeId, Locality) {
        let locs = self.locations(block);
        if locs.contains(&reader) {
            return (reader, Locality::NodeLocal);
        }
        if let Some(&n) = locs.iter().find(|&&n| self.cluster.same_rack(n, reader)) {
            return (n, Locality::RackLocal);
        }
        (locs[0], Locality::Remote)
    }

    pub fn node_used(&self, node: NodeId) -> f64 {
        self.node_used[node.index()]
    }

    pub fn delete_file(&mut self, file: HdfsFile) {
        if let Some(blocks) = self.files.remove(&file) {
            for b in blocks {
                if let Some(info) = self.blocks.remove(&b) {
                    for n in info.locations {
                        self.node_used[n.index()] -= info.size;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memres_cluster::tiny;

    fn hdfs(replication: u32) -> Hdfs {
        let cluster = tiny(8);
        Hdfs::new(
            HdfsConfig {
                block_size: 100.0,
                replication,
            },
            cluster,
            10_000.0,
            42,
        )
    }

    #[test]
    fn create_file_splits_into_blocks() {
        let mut h = hdfs(1);
        let (f, layout) = h.create_file(None, 350.0);
        assert_eq!(layout.len(), 4);
        assert_eq!(h.file_blocks(f).len(), 4);
        assert!((h.file_size(f) - 350.0).abs() < 1e-9);
    }

    #[test]
    fn first_replica_is_writer_local() {
        let mut h = hdfs(2);
        let (_, layout) = h.create_file(Some(NodeId(3)), 100.0);
        assert_eq!(layout[0].2[0], NodeId(3));
    }

    #[test]
    fn second_replica_prefers_other_rack() {
        let mut h = hdfs(2);
        let (_, layout) = h.create_file(Some(NodeId(0)), 100.0);
        let locs = &layout[0].2;
        assert_eq!(locs.len(), 2);
        // tiny() has 2 racks striped by parity; node 0 is rack 0.
        assert_eq!(locs[1].0 % 2, 1, "second replica should land on rack 1");
    }

    #[test]
    fn three_replicas_are_distinct() {
        let mut h = hdfs(3);
        let (_, layout) = h.create_file(Some(NodeId(1)), 100.0);
        let locs = &layout[0].2;
        assert_eq!(locs.len(), 3);
        let mut dedup = locs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn locality_classification() {
        let mut h = hdfs(1);
        let (f, _) = h.create_file(Some(NodeId(2)), 100.0);
        let b = h.file_blocks(f)[0];
        assert_eq!(h.locality(NodeId(2), b), Locality::NodeLocal);
        assert_eq!(h.locality(NodeId(4), b), Locality::RackLocal); // same parity rack
        assert_eq!(h.locality(NodeId(3), b), Locality::Remote);
        assert_eq!(
            h.preferred_source(NodeId(2), b),
            (NodeId(2), Locality::NodeLocal)
        );
        let (src, loc) = h.preferred_source(NodeId(4), b);
        assert_eq!(src, NodeId(2));
        assert_eq!(loc, Locality::RackLocal);
    }

    #[test]
    fn balanced_dataset_spreads_evenly() {
        let mut h = hdfs(1);
        let f = h.load_balanced_dataset(800.0);
        assert_eq!(h.file_blocks(f).len(), 8);
        // Every node holds exactly one 100-byte block.
        for n in 0..8 {
            assert!((h.node_used(NodeId(n)) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_limits_placement() {
        let cluster = tiny(2);
        let mut h = Hdfs::new(
            HdfsConfig {
                block_size: 100.0,
                replication: 1,
            },
            cluster,
            150.0,
            1,
        );
        // 2 nodes * 150 capacity: a third 100-byte block must still place
        // (50 left on each is too small), so expect panic on the 4th.
        h.create_file(None, 100.0);
        h.create_file(None, 100.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.create_file(None, 100.0);
        }));
        assert!(
            result.is_err(),
            "placement should fail when all nodes are full"
        );
    }

    #[test]
    fn delete_releases_space() {
        let mut h = hdfs(1);
        let (f, _) = h.create_file(Some(NodeId(0)), 100.0);
        assert!(h.node_used(NodeId(0)) > 0.0);
        h.delete_file(f);
        assert_eq!(h.node_used(NodeId(0)), 0.0);
        assert!(h.file_blocks(f).is_empty());
    }

    #[test]
    fn replication_deduped_on_tiny_clusters() {
        let cluster = tiny(2);
        let mut h = Hdfs::new(
            HdfsConfig {
                block_size: 100.0,
                replication: 3,
            },
            cluster,
            1e6,
            5,
        );
        let (_, layout) = h.create_file(Some(NodeId(0)), 100.0);
        // Only 2 nodes exist; replicas must be distinct nodes.
        assert!(layout[0].2.len() <= 2);
    }
}
