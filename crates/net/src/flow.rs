//! Max–min fair flow network.
//!
//! A [`FlowNet`] is a set of capacitated links and a set of flows, each flow
//! traversing a fixed list of links. Whenever the active-flow set or a link
//! capacity changes, rates are recomputed by progressive filling (water-
//! filling): repeatedly saturate the link with the smallest fair share and
//! freeze its flows at that rate. This is the standard fluid approximation
//! used by flow-level network simulators and reproduces both NIC contention
//! and shared-backbone (e.g. Lustre aggregate) bottlenecks.
//!
//! Flows carry FIFO *chunks*: independently tagged byte ranges whose
//! completions are reported individually. The shuffle layer aggregates the
//! per-(source,destination) traffic of many reduce tasks into one flow and
//! uses chunk tags to learn when each task's piece has been delivered,
//! keeping the event count linear in tasks rather than tasks × nodes.

use memres_des::sim::Gen;
use memres_des::time::{SimTime, NANOS_PER_SEC};
use memres_des::Bytes;
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

struct Chunk<T> {
    /// FIFO flows: undelivered bytes of this chunk. Shared (processor-
    /// sharing) flows: the absolute virtual-time target — the value of the
    /// flow's `ps_drained` accumulator at which this member completes.
    remaining: f64,
    tag: T,
}

struct Flow<T> {
    links: Vec<LinkId>,
    queue: VecDeque<Chunk<T>>,
    rate: f64,
    /// Remove the flow automatically when its queue drains.
    auto_close: bool,
    /// Processor-sharing semantics: the flow's allocated rate is divided
    /// evenly among its queued chunks ("members") instead of draining FIFO.
    /// Used for rack-level aggregate flows where each chunk stands for one
    /// collapsed per-pair transfer (DESIGN.md, rack aggregation).
    shared: bool,
    /// Shared flows: cumulative per-member virtual bytes drained this active
    /// period. A member inserted when the accumulator reads `v` completes
    /// when it reaches `v + bytes`; advancing by `dt` at aggregate rate `R`
    /// with `k` members adds `R*dt/k`. Exact-sum: the real bytes moved are
    /// `k * Δaccumulator` summed piecewise, which telescopes to the pushed
    /// byte total when the queue drains.
    ps_drained: f64,
    /// Trace bookkeeping: when the current active period began, and the
    /// bytes queued during it (== bytes delivered once the queue drains).
    active_since: SimTime,
    period_bytes: f64,
}

struct Link {
    capacity: f64,
}

/// A chunk delivery notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivered<T> {
    pub flow: FlowId,
    pub tag: T,
}

pub struct FlowNet<T> {
    links: Vec<Link>,
    flows: BTreeMap<u64, Flow<T>>,
    next_flow: u64,
    last: SimTime,
    gen: Gen,
    delivered: Vec<Delivered<T>>,
    /// Count of rate recomputations (exposed for perf assertions in tests).
    pub recomputes: u64,
    /// Batch mode marker: the engine brackets each event-dispatch round so a
    /// burst of flow operations settles in one recompute at `end_batch`.
    in_batch: bool,
    /// Rates are stale; the next rate-dependent query recomputes them. All
    /// mutations landing at the same `SimTime` therefore coalesce into a
    /// single water-filling pass, and mutations that leave the active-flow
    /// set unchanged (e.g. queueing behind an already-active flow) never
    /// trigger one.
    dirty: bool,
    /// Ids of flows with queued bytes, ascending (fixes the iteration order
    /// of `advance` and the freeze order of the water-filling pass).
    active: Vec<u64>,
    /// Per-link ascending ids of active flows crossing it — the water-
    /// filling pass freezes a bottleneck's flows without scanning the whole
    /// active set.
    flows_on_link: Vec<Vec<u64>>,
    /// Scratch buffers reused across recomputes (no per-call allocation).
    scratch_remaining: Vec<f64>,
    scratch_unfrozen: Vec<u32>,
    scratch_emptied: Vec<u64>,
    /// Optional trace sink: flow activations/drains become `flow_start` /
    /// `flow_end` events (DESIGN.md §4.11). `None` costs nothing.
    tracer: Option<memres_trace::SharedSink>,
}

impl<T> Default for FlowNet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowNet<T> {
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            last: SimTime::ZERO,
            gen: Gen::default(),
            delivered: Vec::new(),
            recomputes: 0,
            in_batch: false,
            dirty: false,
            active: Vec::new(),
            flows_on_link: Vec::new(),
            scratch_remaining: Vec::new(),
            scratch_unfrozen: Vec::new(),
            scratch_emptied: Vec::new(),
            tracer: None,
        }
    }

    /// Attach a trace sink; flow activations and drains are reported to it.
    pub fn set_tracer(&mut self, sink: memres_trace::SharedSink) {
        self.tracer = Some(sink);
    }

    /// Defer rate recomputation across a burst of flow operations (e.g. a
    /// fetch task opening chunks to a hundred sources, or the engine
    /// bracketing one event-dispatch round). Must be paired with
    /// [`FlowNet::end_batch`]. Recomputation is lazy regardless — the batch
    /// marker only makes the coalescing point explicit.
    pub fn start_batch(&mut self) {
        self.in_batch = true;
    }

    pub fn end_batch(&mut self) {
        self.in_batch = false;
        if self.dirty {
            self.settle();
            self.gen.bump();
        }
    }

    /// Recompute rates if any mutation since the last pass changed the
    /// active-flow set or a capacity.
    fn settle(&mut self) {
        if self.dirty {
            self.dirty = false;
            self.do_recompute();
        }
    }

    /// Mark flow `id` active: index it on its links and in the active list.
    fn activate(&mut self, id: u64) {
        let links = &self.flows[&id].links;
        for l in links {
            let list = &mut self.flows_on_link[l.0 as usize];
            let pos = list.partition_point(|&x| x < id);
            list.insert(pos, id);
        }
        let pos = self.active.partition_point(|&x| x < id);
        self.active.insert(pos, id);
        self.dirty = true;
    }

    /// Remove flow `id` (crossing `links`) from the active indexes.
    fn deactivate_indexed(
        active: &mut Vec<u64>,
        flows_on_link: &mut [Vec<u64>],
        id: u64,
        links: &[LinkId],
    ) {
        for l in links {
            let list = &mut flows_on_link[l.0 as usize];
            let pos = list.partition_point(|&x| x < id);
            debug_assert!(list.get(pos) == Some(&id), "flow missing from link index");
            list.remove(pos);
        }
        let pos = active.partition_point(|&x| x < id);
        debug_assert!(
            active.get(pos) == Some(&id),
            "flow missing from active list"
        );
        active.remove(pos);
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.links.push(Link { capacity });
        self.flows_on_link.push(Vec::new());
        LinkId(self.links.len() as u32 - 1)
    }

    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity
    }

    pub fn set_link_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.advance(now);
        if (self.links[link.0 as usize].capacity - capacity).abs() > f64::EPSILON {
            self.links[link.0 as usize].capacity = capacity;
            self.dirty = true;
            self.gen.bump();
        }
    }

    /// Open a flow along `links`. With `auto_close`, the flow disappears once
    /// its last chunk is delivered; otherwise it idles awaiting more chunks.
    pub fn open_flow(&mut self, now: SimTime, links: Vec<LinkId>, auto_close: bool) -> FlowId {
        self.open_flow_inner(now, links, auto_close, false)
    }

    /// Open a *shared* (processor-sharing) flow: its allocated rate is split
    /// evenly among queued chunks, each completing when its own bytes have
    /// moved. This is the aggregate-flow primitive for rack-level collapse:
    /// one flow per rack pair, one chunk per collapsed member transfer.
    pub fn open_shared_flow(
        &mut self,
        now: SimTime,
        links: Vec<LinkId>,
        auto_close: bool,
    ) -> FlowId {
        self.open_flow_inner(now, links, auto_close, true)
    }

    fn open_flow_inner(
        &mut self,
        now: SimTime,
        links: Vec<LinkId>,
        auto_close: bool,
        shared: bool,
    ) -> FlowId {
        for l in &links {
            assert!((l.0 as usize) < self.links.len(), "unknown link {l:?}");
        }
        self.advance(now);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id.0,
            Flow {
                links,
                queue: VecDeque::new(),
                rate: 0.0,
                auto_close,
                shared,
                ps_drained: 0.0,
                active_since: now,
                period_bytes: 0.0,
            },
        );
        // An empty flow does not consume bandwidth; no recompute needed yet.
        id
    }

    /// Enqueue `bytes` on a flow; the `tag` comes back via [`FlowNet::poll`] when the
    /// chunk has been fully delivered.
    pub fn push_chunk(&mut self, now: SimTime, flow: FlowId, bytes: Bytes, tag: T) {
        let bytes = bytes.get();
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.advance(now);
        let f = self
            .flows
            .get_mut(&flow.0)
            // Callers hold a FlowId from open_flow; close_flow invalidates
            // it. A miss is engine corruption, not recoverable state.
            // lint:allow(panic): FlowId handles come from open_flow
            .expect("push_chunk on unknown flow");
        if bytes == 0.0 {
            self.delivered.push(Delivered { flow, tag });
            self.gen.bump();
            return;
        }
        let was_idle = f.queue.is_empty();
        if f.shared {
            if was_idle {
                // Fresh active period: reset the virtual clock so targets
                // stay small and float precision stays uniform per period.
                f.ps_drained = 0.0;
            }
            // Member target in virtual time; sorted ascending, ties FIFO.
            let target = f.ps_drained + bytes;
            let at = f.queue.partition_point(|c| c.remaining <= target);
            f.queue.insert(
                at,
                Chunk {
                    remaining: target,
                    tag,
                },
            );
        } else {
            f.queue.push_back(Chunk {
                remaining: bytes,
                tag,
            });
        }
        if was_idle {
            f.active_since = now;
            f.period_bytes = bytes;
            self.activate(flow.0);
            if let Some(tr) = &self.tracer {
                tr.borrow_mut()
                    .emit(now, memres_trace::TraceEvent::FlowStart { flow: flow.0 });
            }
        } else {
            f.period_bytes += bytes;
        }
        self.gen.bump();
    }

    /// Drop a flow and any undelivered chunks (returns their tags).
    pub fn close_flow(&mut self, now: SimTime, flow: FlowId) -> Vec<T> {
        self.advance(now);
        let Some(f) = self.flows.remove(&flow.0) else {
            return Vec::new();
        };
        if !f.queue.is_empty() {
            Self::deactivate_indexed(&mut self.active, &mut self.flows_on_link, flow.0, &f.links);
            self.dirty = true;
        }
        self.gen.bump();
        f.queue.into_iter().map(|c| c.tag).collect()
    }

    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Advance fluid state to `now`, harvesting chunk completions along the
    /// way. Rates are constant between recomputes, so in-interval chunk
    /// completions are exact. Every mutating operation advances first, so
    /// `last` always equals the time of the most recent mutation and stale
    /// rates can only ever span a zero-length interval — `settle` here
    /// therefore recomputes before any time actually passes on them.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "FlowNet clock went backwards");
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        if dt <= 0.0 {
            return;
        }
        self.settle();
        let mut emptied = std::mem::take(&mut self.scratch_emptied);
        emptied.clear();
        for i in 0..self.active.len() {
            let id = self.active[i];
            // lint:allow(panic): `active` ids are inserted/removed in lockstep with `flows`
            let f = self.flows.get_mut(&id).expect("active flow exists");
            if f.rate <= 0.0 {
                continue;
            }
            let mut budget = f.rate * dt;
            if f.shared {
                // Processor sharing in virtual time: `k` members advance in
                // lockstep at rate/k each, so moving the front member to its
                // target costs `k * (target - ps_drained)` real bytes. Members
                // tied at the same target all complete on the same budget, so
                // keep draining zero-need heads even once the budget is spent.
                while let Some(head) = f.queue.front() {
                    let k = f.queue.len() as f64;
                    let need = (head.remaining - f.ps_drained).max(0.0) * k;
                    // Tolerance: a member whose remainder is within rounding
                    // noise of the budget counts as delivered.
                    if need <= budget + 1e-6 {
                        budget = (budget - need).max(0.0);
                        f.ps_drained = f.ps_drained.max(head.remaining);
                        // lint:allow(panic): front_mut() matched just above.
                        let c = f.queue.pop_front().expect("front() was Some");
                        self.delivered.push(Delivered {
                            flow: FlowId(id),
                            tag: c.tag,
                        });
                    } else {
                        f.ps_drained += budget / k;
                        break;
                    }
                }
            } else {
                while budget > 0.0 {
                    let Some(head) = f.queue.front_mut() else {
                        break;
                    };
                    // Tolerance: a chunk whose remainder is within rounding noise
                    // of the budget counts as delivered.
                    if head.remaining <= budget + 1e-6 {
                        budget -= head.remaining;
                        // lint:allow(panic): front_mut() matched just above.
                        let c = f.queue.pop_front().unwrap();
                        self.delivered.push(Delivered {
                            flow: FlowId(id),
                            tag: c.tag,
                        });
                    } else {
                        head.remaining -= budget;
                        budget = 0.0;
                    }
                }
            }
            if f.queue.is_empty() {
                emptied.push(id);
            }
        }
        for &id in &emptied {
            // lint:allow(panic): `emptied` collected from `flows` this call.
            let f = self.flows.get_mut(&id).expect("emptied flow exists");
            f.rate = 0.0;
            if let Some(tr) = &self.tracer {
                tr.borrow_mut().emit(
                    self.last,
                    memres_trace::TraceEvent::FlowEnd {
                        flow: id,
                        bytes: Bytes(f.period_bytes),
                        dur: self.last.since(f.active_since),
                    },
                );
            }
            let auto_close = f.auto_close;
            let links = std::mem::take(&mut f.links);
            Self::deactivate_indexed(&mut self.active, &mut self.flows_on_link, id, &links);
            if auto_close {
                self.flows.remove(&id);
            } else {
                // lint:allow(panic): same entry the take() above came from.
                self.flows.get_mut(&id).unwrap().links = links;
            }
        }
        if !emptied.is_empty() {
            self.dirty = true;
        }
        self.scratch_emptied = emptied;
    }

    /// Progressive-filling (max–min fair) rate allocation over the active
    /// set, driven by the per-link index and reusing scratch buffers.
    fn do_recompute(&mut self) {
        self.recomputes += 1;
        let nl = self.links.len();
        self.scratch_remaining.clear();
        self.scratch_remaining
            .extend(self.links.iter().map(|l| l.capacity));
        self.scratch_unfrozen.clear();
        self.scratch_unfrozen
            .extend(self.flows_on_link.iter().map(|v| v.len() as u32));
        // Sentinel: unfrozen active flows carry a negative rate until the
        // water-filling pass freezes them.
        for i in 0..self.active.len() {
            let id = self.active[i];
            // lint:allow(panic): `active` ids mirror `flows` membership.
            self.flows.get_mut(&id).expect("active flow exists").rate = -1.0;
        }
        // Each iteration saturates at least one link, so <= nl iterations;
        // each link's flow list is scanned at most once as a bottleneck.
        loop {
            // Find the bottleneck link: the smallest per-flow fair share.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..nl {
                let n = self.scratch_unfrozen[i];
                if n == 0 {
                    continue;
                }
                let share = self.scratch_remaining[i].max(0.0) / n as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((i, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze every unfrozen flow crossing the bottleneck at `share`
            // (ascending flow id, like the pre-index implementation).
            for idx in 0..self.flows_on_link[bottleneck].len() {
                let id = self.flows_on_link[bottleneck][idx];
                // lint:allow(panic): flows_on_link mirrors `flows` via activate/deactivate_indexed
                let f = self.flows.get_mut(&id).expect("indexed flow exists");
                if f.rate >= 0.0 {
                    continue;
                }
                f.rate = share;
                for l in &f.links {
                    let li = l.0 as usize;
                    self.scratch_remaining[li] -= share;
                    self.scratch_unfrozen[li] -= 1;
                }
            }
        }
    }

    /// Instant of the next chunk completion, or `None` when idle. Scans only
    /// active flows (idle persistent flows cost nothing).
    pub fn next_event(&mut self) -> Option<SimTime> {
        self.settle();
        let mut best: Option<f64> = None;
        for &id in &self.active {
            let f = &self.flows[&id];
            if f.rate <= 0.0 {
                continue;
            }
            if let Some(head) = f.queue.front() {
                let dt = if f.shared {
                    (head.remaining - f.ps_drained).max(0.0) * f.queue.len() as f64 / f.rate
                } else {
                    head.remaining / f.rate
                };
                if best.is_none_or(|b| dt < b) {
                    best = Some(dt);
                }
            }
        }
        best.map(|dt| {
            let ns = dt * NANOS_PER_SEC as f64;
            if ns >= (u64::MAX - self.last.as_nanos()) as f64 {
                SimTime::FAR_FUTURE
            } else {
                SimTime::from_nanos(self.last.as_nanos() + ns.ceil() as u64)
            }
        })
    }

    /// Advance to `now` and take the deliveries that are due.
    pub fn poll(&mut self, now: SimTime) -> Vec<Delivered<T>> {
        self.advance(now);
        if !self.delivered.is_empty() {
            self.gen.bump();
        }
        std::mem::take(&mut self.delivered)
    }

    /// Current rate of a flow in bytes/sec (0 while idle). Test hook.
    pub fn flow_rate(&mut self, flow: FlowId) -> Option<f64> {
        self.settle();
        self.flows.get(&flow.0).map(|f| f.rate)
    }

    /// Aggregate allocated rate crossing `link` right now, bytes/sec — the
    /// sum of the active flows' fair-share rates on it (settles first). The
    /// metrics sampler divides this by [`FlowNet::link_capacity`] to report
    /// per-link utilization (DESIGN.md §4.16); O(active flows on the link).
    pub fn link_rate(&mut self, link: LinkId) -> f64 {
        self.settle();
        self.flows_on_link
            .get(link.0 as usize)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| self.flows.get(id))
                    .map(|f| f.rate)
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Differential audit: recompute the whole allocation by textbook
    /// progressive filling — no per-link index, no scratch reuse, no
    /// incremental state — and compare against the incremental solver's
    /// current rates. Max–min fair rates are unique, so any disagreement
    /// beyond float noise is an engine bug. Returns a description of the
    /// first mismatch (fuzz oracle 1; see DESIGN.md §4.13).
    pub fn audit_waterfill(&mut self) -> Result<(), String> {
        self.settle();
        let caps: Vec<f64> = self.links.iter().map(|l| l.capacity).collect();
        let mut remaining = caps.clone();
        let mut count = vec![0u32; caps.len()];
        for &id in &self.active {
            for l in &self.flows[&id].links {
                count[l.0 as usize] += 1;
            }
        }
        let mut want: BTreeMap<u64, f64> = self.active.iter().map(|&id| (id, -1.0)).collect();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..caps.len() {
                if count[i] == 0 {
                    continue;
                }
                let share = remaining[i].max(0.0) / count[i] as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((i, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            for (&id, rate) in want.iter_mut() {
                let path = &self.flows[&id].links;
                if *rate >= 0.0 || !path.iter().any(|l| l.0 as usize == bottleneck) {
                    continue;
                }
                *rate = share;
                for l in path {
                    remaining[l.0 as usize] -= share;
                    count[l.0 as usize] -= 1;
                }
            }
        }
        for (&id, &w) in &want {
            let got = self.flows[&id].rate;
            if (got - w).abs() > 1e-9 * w.max(1.0) {
                return Err(format!(
                    "waterfill mismatch: flow {id} incremental rate {got} \
                     vs from-scratch {w} ({} active flows, {} links)",
                    self.active.len(),
                    caps.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memres_des::time::SimDuration;

    fn drain(net: &mut FlowNet<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event() {
            for d in net.poll(t) {
                out.push((t, d.tag));
            }
        }
        out
    }

    #[test]
    fn single_flow_single_link() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, Bytes(50.0), 1u32);
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, Bytes(50.0), 1u32);
        net.push_chunk(SimTime::ZERO, f2, Bytes(50.0), 2u32);
        assert!((net.flow_rate(f1).unwrap() - 50.0).abs() < 1e-9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bottleneck_elsewhere_frees_capacity() {
        // f1: A(100) only. f2: A + B(10). Max-min: f2 limited to 10 by B,
        // f1 then gets 90 on A.
        let mut net = FlowNet::new();
        let a = net.add_link(100.0);
        let b = net.add_link(10.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![a], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![a, b], true);
        net.push_chunk(SimTime::ZERO, f1, Bytes(90.0), 1u32);
        net.push_chunk(SimTime::ZERO, f2, Bytes(10.0), 2u32);
        assert!((net.flow_rate(f2).unwrap() - 10.0).abs() < 1e-9);
        assert!((net.flow_rate(f1).unwrap() - 90.0).abs() < 1e-9);
        let done = drain(&mut net);
        // Both complete at t=1.0.
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn departures_speed_up_survivors() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, Bytes(25.0), 1u32); // done at t=0.5 at rate 50
        net.push_chunk(SimTime::ZERO, f2, Bytes(75.0), 2u32); // 25 by 0.5, then 50 @ 100/s -> t=1.0
        let done = drain(&mut net);
        assert_eq!(done[0].1, 1);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
        assert_eq!(done[1].1, 2);
        assert!((done[1].0.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chunks_deliver_fifo_with_individual_tags() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(10.0), 1u32);
        net.push_chunk(SimTime::ZERO, f, Bytes(10.0), 2u32);
        net.push_chunk(SimTime::ZERO, f, Bytes(10.0), 3u32);
        let done = drain(&mut net);
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!((done[2].0.as_secs_f64() - 3.0).abs() < 1e-6);
        // Flow persists (not auto-close), idle at rate 0.
        assert_eq!(net.flow_rate(f), Some(0.0));
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn idle_flow_consumes_no_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let _idle = net.open_flow(SimTime::ZERO, vec![l], false);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, Bytes(100.0), 1u32);
        assert!((net.flow_rate(f).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_flight() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, Bytes(100.0), 1u32);
        net.set_link_capacity(SimTime::from_secs_f64(0.5), l, 25.0);
        let done = drain(&mut net);
        // 50 left at t=0.5, rate 25 -> +2.0s.
        assert!((done[0].0.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn close_flow_returns_pending_tags() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(100.0), 1u32);
        net.push_chunk(SimTime::ZERO, f, Bytes(100.0), 2u32);
        let pending = net.close_flow(SimTime::from_secs_f64(0.1), f);
        assert_eq!(pending, vec![1, 2]);
    }

    #[test]
    fn zero_byte_chunk_completes_immediately() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(0.0), 9u32);
        let got = net.poll(SimTime::ZERO);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 9);
    }

    #[test]
    fn push_behind_active_flow_skips_recompute() {
        // Queueing a chunk behind an already-active flow leaves the active
        // set unchanged: no water-filling pass may be spent on it.
        let mut net: FlowNet<u32> = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(50.0), 1);
        assert_eq!(net.flow_rate(f), Some(100.0)); // settles
        let before = net.recomputes;
        net.push_chunk(SimTime::ZERO, f, Bytes(50.0), 2);
        assert_eq!(net.flow_rate(f), Some(100.0));
        assert_eq!(net.recomputes, before, "no-op mutation must not recompute");
    }

    #[test]
    fn same_time_arrivals_coalesce_into_one_recompute() {
        let mut net: FlowNet<u32> = FlowNet::new();
        let l = net.add_link(100.0);
        let base = net.recomputes;
        for i in 0..10u32 {
            let f = net.open_flow(SimTime::ZERO, vec![l], true);
            net.push_chunk(SimTime::ZERO, f, Bytes(10.0), i);
        }
        let _ = net.next_event(); // settles once for the whole burst
        assert_eq!(
            net.recomputes,
            base + 1,
            "same-instant arrivals must coalesce"
        );
    }

    #[test]
    fn shared_flow_processor_shares_among_members() {
        // 90 B/s link, members of 10/20/30 bytes: PS completes them at
        // t = 1/3 (10B at 30 each), 5/9 (+10B at 45 each), 2/3 (+10B at 90).
        let mut net = FlowNet::new();
        let l = net.add_link(90.0);
        let f = net.open_shared_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(10.0), 1u32);
        net.push_chunk(SimTime::ZERO, f, Bytes(20.0), 2u32);
        net.push_chunk(SimTime::ZERO, f, Bytes(30.0), 3u32);
        let done = drain(&mut net);
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!((done[0].0.as_secs_f64() - 1.0 / 3.0).abs() < 1e-6);
        assert!((done[1].0.as_secs_f64() - 5.0 / 9.0).abs() < 1e-6);
        // Work conservation: 60 bytes through 90 B/s.
        assert!((done[2].0.as_secs_f64() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn shared_flow_small_late_member_overtakes() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_shared_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, Bytes(1000.0), 1u32);
        // Joins at t=0.5 with 1 byte: at 50 B/s each it finishes long before
        // the big member despite arriving later.
        net.push_chunk(SimTime::from_secs_f64(0.5), f, Bytes(1.0), 2u32);
        let done = drain(&mut net);
        assert_eq!(done[0].1, 2);
        assert!(done[0].0 < done[1].0);
        // Total work conserved: 1001 bytes at 100 B/s.
        assert!((done[1].0.as_secs_f64() - 10.01).abs() < 1e-4);
    }

    #[test]
    fn shared_flow_is_one_flow_to_the_waterfill() {
        // Aggregate flow with 10 members + one plain flow on the same link:
        // the aggregate gets half the capacity, not 10/11ths.
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let agg = net.open_shared_flow(SimTime::ZERO, vec![l], false);
        for i in 0..10u32 {
            net.push_chunk(SimTime::ZERO, agg, Bytes(50.0), i);
        }
        let plain = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, plain, Bytes(50.0), 99u32);
        assert!((net.flow_rate(agg).unwrap() - 50.0).abs() < 1e-9);
        assert!((net.flow_rate(plain).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shared_flow_equal_members_finish_together_fifo_tagged() {
        let mut net = FlowNet::new();
        let l = net.add_link(30.0);
        let f = net.open_shared_flow(SimTime::ZERO, vec![l], false);
        for i in 0..3u32 {
            net.push_chunk(SimTime::ZERO, f, Bytes(10.0), i);
        }
        let done = drain(&mut net);
        // Same byte count -> same completion instant, insertion order kept.
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![0, 1, 2]);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
        // Idle afterwards; a new active period restarts the virtual clock.
        net.push_chunk(SimTime::from_secs_f64(2.0), f, Bytes(30.0), 7u32);
        let done = drain(&mut net);
        assert!((done[0].0.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_shares_from_then_on() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, Bytes(100.0), 1u32);
        let f2 = net.open_flow(SimTime::from_secs_f64(0.5), vec![l], true);
        net.push_chunk(SimTime::from_secs_f64(0.5), f2, Bytes(50.0), 2u32);
        let done = drain(&mut net);
        // Both have 50 at t=0.5 sharing 100 -> both done at 1.5.
        assert_eq!(done.len(), 2);
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
        }
        let _ = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Textbook progressive filling, written independently of the engine's
    /// incremental implementation: rebuilds the allocation from scratch from
    /// (capacities, active flow paths). Max–min fair rates are unique, so the
    /// two must agree to float precision after any event sequence.
    fn scratch_waterfill(caps: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
        let nl = caps.len();
        let mut remaining: Vec<f64> = caps.to_vec();
        let mut count = vec![0u32; nl];
        for p in paths {
            for &l in p {
                count[l] += 1;
            }
        }
        let mut rates = vec![-1.0f64; paths.len()];
        loop {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..nl {
                if count[i] == 0 {
                    continue;
                }
                let share = remaining[i].max(0.0) / count[i] as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((i, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            for (fi, p) in paths.iter().enumerate() {
                if rates[fi] >= 0.0 || !p.contains(&bottleneck) {
                    continue;
                }
                rates[fi] = share;
                for &l in p {
                    remaining[l] -= share;
                    count[l] -= 1;
                }
            }
        }
        rates
    }

    /// One random arrival/departure/advance/capacity event. Returns the
    /// updated wall-clock.
    type Op = (
        u8,
        proptest::sample::Index,
        proptest::sample::Index,
        f64,
        f64,
    );

    /// Shadow bookkeeping the test keeps alongside the net: flow id, link
    /// path (as indices), undelivered chunk count.
    type Shadow = Vec<(FlowId, Vec<usize>, usize)>;

    fn apply_op(
        net: &mut FlowNet<u32>,
        caps: &mut [f64],
        shadow: &mut Shadow,
        links: &[LinkId],
        op: &Op,
        now_secs: &mut f64,
    ) {
        let (kind, a, b, bytes, dt) = op;
        let now = SimTime::from_secs_f64(*now_secs);
        match kind % 4 {
            // Arrival: open an auto-close flow over 1-2 links, queue a chunk.
            0 => {
                let mut path = vec![a.index(links.len()), b.index(links.len())];
                path.sort_unstable();
                path.dedup();
                let f = net.open_flow(now, path.iter().map(|&i| links[i]).collect(), true);
                net.push_chunk(now, f, Bytes(*bytes), f.0 as u32);
                shadow.push((f, path, 1));
            }
            // Extra chunk behind a random active flow (active set unchanged).
            1 => {
                if !shadow.is_empty() {
                    let i = a.index(shadow.len());
                    let e = &mut shadow[i];
                    net.push_chunk(now, e.0, Bytes(*bytes), e.0 .0 as u32);
                    e.2 += 1;
                }
            }
            // Departure: close a random active flow.
            2 => {
                if !shadow.is_empty() {
                    let (f, _, _) = shadow.swap_remove(a.index(shadow.len()));
                    net.close_flow(now, f);
                }
            }
            // Advance time, harvesting deliveries; or resize a link.
            _ => {
                if *bytes < 50.0 {
                    *now_secs += dt;
                    let t = SimTime::from_secs_f64(*now_secs);
                    for d in net.poll(t) {
                        let i = shadow
                            .iter()
                            .position(|(f, _, _)| *f == d.flow)
                            .expect("delivery for tracked flow");
                        shadow[i].2 -= 1;
                        if shadow[i].2 == 0 {
                            shadow.swap_remove(i);
                        }
                    }
                } else {
                    let li = a.index(caps.len());
                    caps[li] = 1.0 + *bytes;
                    net.set_link_capacity(now, links[li], caps[li]);
                }
            }
        }
    }

    proptest! {
        /// After EVERY event in a random arrival/departure/advance/capacity
        /// sequence, the incremental recompute's rates equal an independent
        /// from-scratch water-filling to within 1e-9.
        #[test]
        fn incremental_recompute_matches_scratch_waterfill(
            caps0 in proptest::collection::vec(1.0f64..100.0, 1..5),
            ops in proptest::collection::vec(
                (0u8..4, any::<proptest::sample::Index>(), any::<proptest::sample::Index>(),
                 1.0f64..100.0, 0.001f64..0.05),
                1..30,
            ),
        ) {
            let mut net: FlowNet<u32> = FlowNet::new();
            let mut caps = caps0.clone();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut shadow: Shadow = Vec::new();
            let mut now = 0.0f64;
            for op in &ops {
                apply_op(&mut net, &mut caps, &mut shadow, &links, op, &mut now);
                let paths: Vec<Vec<usize>> = shadow.iter().map(|(_, p, _)| p.clone()).collect();
                let want = scratch_waterfill(&caps, &paths);
                for ((f, _, _), w) in shadow.iter().zip(want.iter()) {
                    let got = net.flow_rate(*f).expect("tracked flow exists");
                    prop_assert!(
                        (got - w).abs() <= 1e-9 * w.max(1.0),
                        "rate mismatch after event: got {got}, scratch waterfill {w}"
                    );
                }
            }
        }

        /// Invariant: after every event, the allocated rates on each link sum
        /// to at most its capacity.
        #[test]
        fn link_rates_never_exceed_capacity(
            caps0 in proptest::collection::vec(1.0f64..100.0, 1..5),
            ops in proptest::collection::vec(
                (0u8..4, any::<proptest::sample::Index>(), any::<proptest::sample::Index>(),
                 1.0f64..100.0, 0.001f64..0.05),
                1..30,
            ),
        ) {
            let mut net: FlowNet<u32> = FlowNet::new();
            let mut caps = caps0.clone();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut shadow: Shadow = Vec::new();
            let mut now = 0.0f64;
            for op in &ops {
                apply_op(&mut net, &mut caps, &mut shadow, &links, op, &mut now);
                let mut used = vec![0.0f64; caps.len()];
                for (f, path, _) in &shadow {
                    let rate = net.flow_rate(*f).expect("tracked flow exists");
                    prop_assert!(rate > 0.0, "active flow starved");
                    for &li in path {
                        used[li] += rate;
                    }
                }
                for (u, c) in used.iter().zip(caps.iter()) {
                    prop_assert!(
                        *u <= c * (1.0 + 1e-9) + 1e-9,
                        "link oversubscribed after event: {u} > {c}"
                    );
                }
            }
        }

        /// Shared (processor-sharing) flows conserve work exactly: pushing
        /// any member mix at t=0 over a dedicated link drains in exactly
        /// sum(bytes)/capacity seconds, every member delivered once, and
        /// completions are nondecreasing in time.
        #[test]
        fn shared_flow_conserves_work(
            bytes in proptest::collection::vec(1.0f64..100.0, 1..40)
        ) {
            let mut net: FlowNet<u32> = FlowNet::new();
            let l = net.add_link(100.0);
            let f = net.open_shared_flow(SimTime::ZERO, vec![l], false);
            for (i, &b) in bytes.iter().enumerate() {
                net.push_chunk(SimTime::ZERO, f, Bytes(b), i as u32);
            }
            let mut seen = vec![false; bytes.len()];
            let mut last = SimTime::ZERO;
            let mut end = SimTime::ZERO;
            while let Some(t) = net.next_event() {
                prop_assert!(t >= last);
                last = t;
                for d in net.poll(t) {
                    prop_assert!(!seen[d.tag as usize]);
                    seen[d.tag as usize] = true;
                    end = t;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
            let want = bytes.iter().sum::<f64>() / 100.0;
            prop_assert!(
                (end.as_secs_f64() - want).abs() < 1e-4,
                "drain time {} != total/capacity {}",
                end.as_secs_f64(),
                want
            );
        }

        /// No link is ever oversubscribed, and every flow with queued bytes
        /// gets a strictly positive rate (work conservation at the flow level).
        #[test]
        fn rates_feasible_and_positive(
            caps in proptest::collection::vec(1.0f64..100.0, 1..6),
            flows in proptest::collection::vec(
                (proptest::collection::vec(any::<proptest::sample::Index>(), 1..4), 1.0f64..50.0),
                1..20,
            ),
        ) {
            let mut net: FlowNet<u32> = FlowNet::new();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut ids = Vec::new();
            for (i, (link_sel, bytes)) in flows.iter().enumerate() {
                let mut path: Vec<LinkId> =
                    link_sel.iter().map(|ix| links[ix.index(links.len())]).collect();
                path.sort();
                path.dedup();
                let f = net.open_flow(SimTime::ZERO, path, true);
                net.push_chunk(SimTime::ZERO, f, Bytes(*bytes), i as u32);
                ids.push(f);
            }
            // Feasibility: sum of rates on each link <= capacity (+eps).
            let mut used = vec![0.0f64; caps.len()];
            for (&fid, _) in ids.iter().zip(flows.iter()) {
                let rate = net.flow_rate(fid).unwrap();
                prop_assert!(rate > 0.0, "active flow starved");
                // Recover the path by re-deriving: rates are per flow; we
                // can't read paths back, so recompute usage via flows input.
            }
            for ((link_sel, _), &fid) in flows.iter().zip(ids.iter()) {
                let rate = net.flow_rate(fid).unwrap();
                let mut path: Vec<usize> =
                    link_sel.iter().map(|ix| ix.index(caps.len())).collect();
                path.sort();
                path.dedup();
                for li in path {
                    used[li] += rate;
                }
            }
            for (u, c) in used.iter().zip(caps.iter()) {
                prop_assert!(*u <= c * (1.0 + 1e-9) + 1e-9, "link oversubscribed: {u} > {c}");
            }
            // All chunks eventually deliver.
            let mut count = 0;
            while let Some(t) = net.next_event() {
                count += net.poll(t).len();
            }
            prop_assert_eq!(count, flows.len());
        }
    }
}
