//! Max–min fair flow network.
//!
//! A [`FlowNet`] is a set of capacitated links and a set of flows, each flow
//! traversing a fixed list of links. Whenever the active-flow set or a link
//! capacity changes, rates are recomputed by progressive filling (water-
//! filling): repeatedly saturate the link with the smallest fair share and
//! freeze its flows at that rate. This is the standard fluid approximation
//! used by flow-level network simulators and reproduces both NIC contention
//! and shared-backbone (e.g. Lustre aggregate) bottlenecks.
//!
//! Flows carry FIFO *chunks*: independently tagged byte ranges whose
//! completions are reported individually. The shuffle layer aggregates the
//! per-(source,destination) traffic of many reduce tasks into one flow and
//! uses chunk tags to learn when each task's piece has been delivered,
//! keeping the event count linear in tasks rather than tasks × nodes.

use memres_des::sim::Gen;
use memres_des::time::{SimTime, NANOS_PER_SEC};
use std::collections::{BTreeMap, VecDeque};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

struct Chunk<T> {
    remaining: f64,
    tag: T,
}

struct Flow<T> {
    links: Vec<LinkId>,
    queue: VecDeque<Chunk<T>>,
    rate: f64,
    /// Remove the flow automatically when its queue drains.
    auto_close: bool,
}

struct Link {
    capacity: f64,
}

/// A chunk delivery notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivered<T> {
    pub flow: FlowId,
    pub tag: T,
}

pub struct FlowNet<T> {
    links: Vec<Link>,
    flows: BTreeMap<u64, Flow<T>>,
    next_flow: u64,
    last: SimTime,
    gen: Gen,
    delivered: Vec<Delivered<T>>,
    /// Count of rate recomputations (exposed for perf assertions in tests).
    pub recomputes: u64,
    /// Batch mode: defer recomputation until `end_batch`.
    in_batch: bool,
    batch_dirty: bool,
}

impl<T> Default for FlowNet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowNet<T> {
    pub fn new() -> Self {
        FlowNet {
            links: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            last: SimTime::ZERO,
            gen: Gen::default(),
            delivered: Vec::new(),
            recomputes: 0,
            in_batch: false,
            batch_dirty: false,
        }
    }

    /// Defer rate recomputation across a burst of flow operations (e.g. a
    /// fetch task opening chunks to a hundred sources). Must be paired with
    /// [`FlowNet::end_batch`].
    pub fn start_batch(&mut self) {
        self.in_batch = true;
    }

    pub fn end_batch(&mut self) {
        self.in_batch = false;
        if self.batch_dirty {
            self.batch_dirty = false;
            self.do_recompute();
            self.gen.bump();
        }
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.links.push(Link { capacity });
        LinkId(self.links.len() as u32 - 1)
    }

    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity
    }

    pub fn set_link_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.advance(now);
        if (self.links[link.0 as usize].capacity - capacity).abs() > f64::EPSILON {
            self.links[link.0 as usize].capacity = capacity;
            self.recompute();
            self.gen.bump();
        }
    }

    /// Open a flow along `links`. With `auto_close`, the flow disappears once
    /// its last chunk is delivered; otherwise it idles awaiting more chunks.
    pub fn open_flow(&mut self, now: SimTime, links: Vec<LinkId>, auto_close: bool) -> FlowId {
        for l in &links {
            assert!((l.0 as usize) < self.links.len(), "unknown link {l:?}");
        }
        self.advance(now);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id.0,
            Flow { links, queue: VecDeque::new(), rate: 0.0, auto_close },
        );
        // An empty flow does not consume bandwidth; no recompute needed yet.
        id
    }

    /// Enqueue `bytes` on a flow; the `tag` comes back via [`FlowNet::poll`] when the
    /// chunk has been fully delivered.
    pub fn push_chunk(&mut self, now: SimTime, flow: FlowId, bytes: f64, tag: T) {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.advance(now);
        let f = self.flows.get_mut(&flow.0).expect("push_chunk on unknown flow");
        if bytes == 0.0 {
            self.delivered.push(Delivered { flow, tag });
            self.gen.bump();
            return;
        }
        let was_idle = f.queue.is_empty();
        f.queue.push_back(Chunk { remaining: bytes, tag });
        if was_idle {
            self.recompute();
        }
        self.gen.bump();
    }

    /// Drop a flow and any undelivered chunks (returns their tags).
    pub fn close_flow(&mut self, now: SimTime, flow: FlowId) -> Vec<T> {
        self.advance(now);
        let Some(f) = self.flows.remove(&flow.0) else {
            return Vec::new();
        };
        if !f.queue.is_empty() {
            self.recompute();
        }
        self.gen.bump();
        f.queue.into_iter().map(|c| c.tag).collect()
    }

    pub fn active_flows(&self) -> usize {
        self.flows.values().filter(|f| !f.queue.is_empty()).count()
    }

    /// Advance fluid state to `now`, harvesting chunk completions along the
    /// way. Rates are constant between recomputes, so in-interval chunk
    /// completions are exact.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "FlowNet clock went backwards");
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        if dt <= 0.0 {
            return;
        }
        let mut any_emptied = false;
        let mut closed: Vec<u64> = Vec::new();
        for (&id, f) in self.flows.iter_mut() {
            if f.queue.is_empty() || f.rate <= 0.0 {
                continue;
            }
            let mut budget = f.rate * dt;
            while budget > 0.0 {
                let Some(head) = f.queue.front_mut() else { break };
                // Tolerance: a chunk whose remainder is within rounding noise
                // of the budget counts as delivered.
                if head.remaining <= budget + 1e-6 {
                    budget -= head.remaining;
                    let c = f.queue.pop_front().unwrap();
                    self.delivered.push(Delivered { flow: FlowId(id), tag: c.tag });
                } else {
                    head.remaining -= budget;
                    budget = 0.0;
                }
            }
            if f.queue.is_empty() {
                any_emptied = true;
                if f.auto_close {
                    closed.push(id);
                }
            }
        }
        for id in closed {
            self.flows.remove(&id);
        }
        if any_emptied {
            self.recompute();
        }
    }

    fn recompute(&mut self) {
        if self.in_batch {
            self.batch_dirty = true;
            return;
        }
        self.do_recompute();
    }

    /// Progressive-filling (max–min fair) rate allocation.
    fn do_recompute(&mut self) {
        self.recomputes += 1;
        let nl = self.links.len();
        let mut remaining: Vec<f64> = self.links.iter().map(|l| l.capacity).collect();
        let mut unfrozen_on: Vec<u32> = vec![0; nl];
        // Active flows only.
        let active: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| !f.queue.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for &id in &active {
            for l in &self.flows[&id].links {
                unfrozen_on[l.0 as usize] += 1;
            }
        }
        // Sentinel: unfrozen active flows carry a negative rate until the
        // water-filling pass freezes them.
        for &id in &active {
            self.flows.get_mut(&id).unwrap().rate = -1.0;
        }
        // Each iteration saturates at least one link, so <= nl iterations.
        loop {
            // Find the bottleneck link: the smallest per-flow fair share.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..nl {
                if unfrozen_on[i] == 0 {
                    continue;
                }
                let share = remaining[i].max(0.0) / unfrozen_on[i] as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((i, share));
                }
            }
            let Some((bottleneck, share)) = best else { break };
            // Freeze every unfrozen flow crossing the bottleneck at `share`.
            for &id in &active {
                let f = &self.flows[&id];
                if f.rate >= 0.0 {
                    continue;
                }
                if !f.links.iter().any(|l| l.0 as usize == bottleneck) {
                    continue;
                }
                let links: Vec<LinkId> = f.links.clone();
                self.flows.get_mut(&id).unwrap().rate = share;
                for l in links {
                    let li = l.0 as usize;
                    remaining[li] -= share;
                    unfrozen_on[li] -= 1;
                }
            }
        }
        // Flows crossing no saturated link in a net with spare capacity can't
        // happen: every flow crosses >=1 link, and progressive filling always
        // terminates by freezing all flows. Idle flows get rate 0.
        for (_, f) in self.flows.iter_mut() {
            if f.queue.is_empty() {
                f.rate = 0.0;
            }
        }
    }

    /// Instant of the next chunk completion, or `None` when idle.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for f in self.flows.values() {
            if f.rate <= 0.0 {
                continue;
            }
            if let Some(head) = f.queue.front() {
                let dt = head.remaining / f.rate;
                if best.is_none_or(|b| dt < b) {
                    best = Some(dt);
                }
            }
        }
        best.map(|dt| {
            let ns = dt * NANOS_PER_SEC as f64;
            if ns >= (u64::MAX - self.last.0) as f64 {
                SimTime::FAR_FUTURE
            } else {
                SimTime(self.last.0 + ns.ceil() as u64)
            }
        })
    }

    /// Advance to `now` and take the deliveries that are due.
    pub fn poll(&mut self, now: SimTime) -> Vec<Delivered<T>> {
        self.advance(now);
        if !self.delivered.is_empty() {
            self.gen.bump();
        }
        std::mem::take(&mut self.delivered)
    }

    /// Current rate of a flow in bytes/sec (0 while idle). Test hook.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow.0).map(|f| f.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memres_des::time::SimDuration;

    fn drain(net: &mut FlowNet<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event() {
            for d in net.poll(t) {
                out.push((t, d.tag));
            }
        }
        out
    }

    #[test]
    fn single_flow_single_link() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, 50.0, 1u32);
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, 50.0, 1u32);
        net.push_chunk(SimTime::ZERO, f2, 50.0, 2u32);
        assert!((net.flow_rate(f1).unwrap() - 50.0).abs() < 1e-9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bottleneck_elsewhere_frees_capacity() {
        // f1: A(100) only. f2: A + B(10). Max-min: f2 limited to 10 by B,
        // f1 then gets 90 on A.
        let mut net = FlowNet::new();
        let a = net.add_link(100.0);
        let b = net.add_link(10.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![a], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![a, b], true);
        net.push_chunk(SimTime::ZERO, f1, 90.0, 1u32);
        net.push_chunk(SimTime::ZERO, f2, 10.0, 2u32);
        assert!((net.flow_rate(f2).unwrap() - 10.0).abs() < 1e-9);
        assert!((net.flow_rate(f1).unwrap() - 90.0).abs() < 1e-9);
        let done = drain(&mut net);
        // Both complete at t=1.0.
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn departures_speed_up_survivors() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        let f2 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, 25.0, 1u32); // done at t=0.5 at rate 50
        net.push_chunk(SimTime::ZERO, f2, 75.0, 2u32); // 25 by 0.5, then 50 @ 100/s -> t=1.0
        let done = drain(&mut net);
        assert_eq!(done[0].1, 1);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
        assert_eq!(done[1].1, 2);
        assert!((done[1].0.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chunks_deliver_fifo_with_individual_tags() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, 10.0, 1u32);
        net.push_chunk(SimTime::ZERO, f, 10.0, 2u32);
        net.push_chunk(SimTime::ZERO, f, 10.0, 3u32);
        let done = drain(&mut net);
        assert_eq!(done.iter().map(|d| d.1).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!((done[2].0.as_secs_f64() - 3.0).abs() < 1e-6);
        // Flow persists (not auto-close), idle at rate 0.
        assert_eq!(net.flow_rate(f), Some(0.0));
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn idle_flow_consumes_no_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let _idle = net.open_flow(SimTime::ZERO, vec![l], false);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, 100.0, 1u32);
        assert!((net.flow_rate(f).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_flight() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f, 100.0, 1u32);
        net.set_link_capacity(SimTime::from_secs_f64(0.5), l, 25.0);
        let done = drain(&mut net);
        // 50 left at t=0.5, rate 25 -> +2.0s.
        assert!((done[0].0.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn close_flow_returns_pending_tags() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, 100.0, 1u32);
        net.push_chunk(SimTime::ZERO, f, 100.0, 2u32);
        let pending = net.close_flow(SimTime::from_secs_f64(0.1), f);
        assert_eq!(pending, vec![1, 2]);
    }

    #[test]
    fn zero_byte_chunk_completes_immediately() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.open_flow(SimTime::ZERO, vec![l], false);
        net.push_chunk(SimTime::ZERO, f, 0.0, 9u32);
        let got = net.poll(SimTime::ZERO);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 9);
    }

    #[test]
    fn late_arrival_shares_from_then_on() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let f1 = net.open_flow(SimTime::ZERO, vec![l], true);
        net.push_chunk(SimTime::ZERO, f1, 100.0, 1u32);
        let f2 = net.open_flow(SimTime::from_secs_f64(0.5), vec![l], true);
        net.push_chunk(SimTime::from_secs_f64(0.5), f2, 50.0, 2u32);
        let done = drain(&mut net);
        // Both have 50 at t=0.5 sharing 100 -> both done at 1.5.
        assert_eq!(done.len(), 2);
        for (t, _) in done {
            assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
        }
        let _ = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// No link is ever oversubscribed, and every flow with queued bytes
        /// gets a strictly positive rate (work conservation at the flow level).
        #[test]
        fn rates_feasible_and_positive(
            caps in proptest::collection::vec(1.0f64..100.0, 1..6),
            flows in proptest::collection::vec(
                (proptest::collection::vec(any::<proptest::sample::Index>(), 1..4), 1.0f64..50.0),
                1..20,
            ),
        ) {
            let mut net: FlowNet<u32> = FlowNet::new();
            let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
            let mut ids = Vec::new();
            for (i, (link_sel, bytes)) in flows.iter().enumerate() {
                let mut path: Vec<LinkId> =
                    link_sel.iter().map(|ix| links[ix.index(links.len())]).collect();
                path.sort();
                path.dedup();
                let f = net.open_flow(SimTime::ZERO, path, true);
                net.push_chunk(SimTime::ZERO, f, *bytes, i as u32);
                ids.push(f);
            }
            // Feasibility: sum of rates on each link <= capacity (+eps).
            let mut used = vec![0.0f64; caps.len()];
            for (&fid, _) in ids.iter().zip(flows.iter()) {
                let rate = net.flow_rate(fid).unwrap();
                prop_assert!(rate > 0.0, "active flow starved");
                // Recover the path by re-deriving: rates are per flow; we
                // can't read paths back, so recompute usage via flows input.
            }
            for ((link_sel, _), &fid) in flows.iter().zip(ids.iter()) {
                let rate = net.flow_rate(fid).unwrap();
                let mut path: Vec<usize> =
                    link_sel.iter().map(|ix| ix.index(caps.len())).collect();
                path.sort();
                path.dedup();
                for li in path {
                    used[li] += rate;
                }
            }
            for (u, c) in used.iter().zip(caps.iter()) {
                prop_assert!(*u <= c * (1.0 + 1e-9) + 1e-9, "link oversubscribed: {u} > {c}");
            }
            // All chunks eventually deliver.
            let mut count = 0;
            while let Some(t) = net.next_event() {
                count += net.poll(t).len();
            }
            prop_assert_eq!(count, flows.len());
        }
    }
}
