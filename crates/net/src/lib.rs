//! # memres-net — flow-level network model
//!
//! A max–min fair, fluid ("flow-level") network simulator: links with fixed
//! capacities, flows that traverse link paths, progressive-filling rate
//! allocation, and FIFO chunked delivery so one flow can report many
//! independently tagged completions. [`Fabric`] lays the cluster of
//! `memres-cluster` out onto links (per-node NICs, rack uplinks, core, and
//! the Lustre aggregate pipe).

pub mod fabric;
pub mod flow;

pub use fabric::{inflate_for_requests, Endpoint, Fabric};
pub use flow::{Delivered, FlowId, FlowNet, LinkId};
