//! Cluster fabric: maps (endpoint, endpoint) pairs onto link paths.
//!
//! Compute-centric HPC layout (paper Fig 2a): every node has a full-duplex
//! NIC; racks have uplinks into a core; the Lustre storage backend hangs off
//! the core behind its aggregate-bandwidth pipe. Data-centric traffic
//! (shuffle, remote HDFS reads) flows node↔node; Lustre traffic flows
//! node↔backend.

use crate::flow::{FlowNet, LinkId};
use memres_cluster::{ClusterSpec, NodeId};
use memres_des::Bytes;

/// A communication endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    Node(NodeId),
    /// The Lustre backend (OSS pool behind its aggregate pipe).
    Lustre,
}

/// Link layout for a cluster; build once, then ask for paths.
pub struct Fabric {
    egress: Vec<LinkId>,
    ingress: Vec<LinkId>,
    rack_up: Vec<LinkId>,
    rack_down: Vec<LinkId>,
    core: LinkId,
    lustre_pipe: LinkId,
    racks: u16,
    workers: u32,
}

impl Fabric {
    pub fn build<T>(net: &mut FlowNet<T>, spec: &ClusterSpec) -> Fabric {
        let egress = (0..spec.workers)
            .map(|_| net.add_link(spec.nic_bandwidth))
            .collect();
        let ingress = (0..spec.workers)
            .map(|_| net.add_link(spec.nic_bandwidth))
            .collect();
        let rack_up = (0..spec.racks)
            .map(|_| net.add_link(spec.rack_uplink))
            .collect();
        let rack_down = (0..spec.racks)
            .map(|_| net.add_link(spec.rack_uplink))
            .collect();
        // Core fabric: non-blocking relative to rack uplinks.
        let core = net.add_link(spec.rack_uplink * spec.racks as f64);
        let lustre_pipe = net.add_link(spec.lustre_bandwidth);
        Fabric {
            egress,
            ingress,
            rack_up,
            rack_down,
            core,
            lustre_pipe,
            racks: spec.racks,
            workers: spec.workers,
        }
    }

    fn rack_of(&self, n: NodeId) -> usize {
        (n.0 % self.racks as u32) as usize
    }

    pub fn racks(&self) -> u16 {
        self.racks
    }

    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Rack index of a node (round-robin striping, same as `ClusterSpec`).
    pub fn rack_index(&self, n: NodeId) -> usize {
        self.rack_of(n)
    }

    /// Links shared by *all* traffic from rack `src` into rack `dst`: the
    /// path of a rack-level aggregate flow. Per-node NICs are deliberately
    /// absent — above the aggregation threshold the collapsed transfer is
    /// modeled as bottlenecked by the rack fabric, not by any single
    /// endpoint (DESIGN.md, rack aggregation). Intra-rack aggregates share
    /// the rack's switch capacity (modeled as its downlink).
    pub fn rack_aggregate_path(&self, src: usize, dst: usize) -> Vec<LinkId> {
        assert!(src < self.racks as usize && dst < self.racks as usize);
        if src == dst {
            vec![self.rack_down[dst]]
        } else {
            vec![self.rack_up[src], self.rack_down[dst], self.core]
        }
    }

    pub fn node_egress(&self, n: NodeId) -> LinkId {
        self.egress[n.index()]
    }

    pub fn node_ingress(&self, n: NodeId) -> LinkId {
        self.ingress[n.index()]
    }

    pub fn lustre_pipe(&self) -> LinkId {
        self.lustre_pipe
    }

    /// Rack `r`'s uplink into the core (metrics sampling).
    pub fn rack_uplink(&self, r: usize) -> LinkId {
        self.rack_up[r]
    }

    /// Rack `r`'s downlink from the core (metrics sampling).
    pub fn rack_downlink(&self, r: usize) -> LinkId {
        self.rack_down[r]
    }

    /// The core fabric link (metrics sampling).
    pub fn core_link(&self) -> LinkId {
        self.core
    }

    /// Links traversed by a transfer from `src` to `dst`.
    ///
    /// * node → node, same rack: src egress + dst ingress
    /// * node → node, cross rack: + rack uplink/downlink + core
    /// * node ↔ Lustre: node NIC + core + the Lustre aggregate pipe
    /// * Lustre ↔ Lustre: degenerate (just the pipe)
    pub fn path(&self, src: Endpoint, dst: Endpoint) -> Vec<LinkId> {
        match (src, dst) {
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert!(a.0 < self.workers && b.0 < self.workers);
                if a == b {
                    // Loopback: modeled as free (no links) — caller should
                    // usually special-case local transfers instead.
                    return Vec::new();
                }
                let mut p = vec![self.egress[a.index()], self.ingress[b.index()]];
                let (ra, rb) = (self.rack_of(a), self.rack_of(b));
                if ra != rb {
                    p.push(self.rack_up[ra]);
                    p.push(self.rack_down[rb]);
                    p.push(self.core);
                }
                p
            }
            (Endpoint::Node(a), Endpoint::Lustre) => {
                vec![self.egress[a.index()], self.core, self.lustre_pipe]
            }
            (Endpoint::Lustre, Endpoint::Node(b)) => {
                vec![self.lustre_pipe, self.core, self.ingress[b.index()]]
            }
            (Endpoint::Lustre, Endpoint::Lustre) => vec![self.lustre_pipe],
        }
    }
}

/// Per-request overhead model (paper §VI-A, network-bottleneck setup):
/// shrinking `FetchRequest` from 1 GB to 128 KB multiplies request count and
/// "the network bandwidth is consequently narrowed". We model a fixed
/// per-request byte-equivalent cost; a transfer of `bytes` split into
/// `ceil(bytes/request_size)` requests is inflated accordingly.
pub fn inflate_for_requests(bytes: Bytes, request_size: f64, per_request_overhead: f64) -> Bytes {
    assert!(request_size > 0.0);
    let bytes = bytes.get();
    if bytes <= 0.0 {
        return Bytes::ZERO;
    }
    let requests = (bytes / request_size).ceil();
    Bytes(bytes + requests * per_request_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memres_cluster::tiny;
    use memres_des::time::SimTime;
    use memres_des::units::MB;

    #[test]
    fn same_rack_path_is_two_links() {
        let mut net: FlowNet<u32> = FlowNet::new();
        let spec = tiny(4);
        let f = Fabric::build(&mut net, &spec);
        // tiny stripes racks round-robin: nodes 0,2 in rack 0.
        let p = f.path(Endpoint::Node(NodeId(0)), Endpoint::Node(NodeId(2)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn cross_rack_path_adds_uplinks_and_core() {
        let mut net: FlowNet<u32> = FlowNet::new();
        let spec = tiny(4);
        let f = Fabric::build(&mut net, &spec);
        let p = f.path(Endpoint::Node(NodeId(0)), Endpoint::Node(NodeId(1)));
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn loopback_is_free() {
        let mut net: FlowNet<u32> = FlowNet::new();
        let spec = tiny(4);
        let f = Fabric::build(&mut net, &spec);
        assert!(f
            .path(Endpoint::Node(NodeId(3)), Endpoint::Node(NodeId(3)))
            .is_empty());
    }

    #[test]
    fn lustre_paths_share_the_aggregate_pipe() {
        let mut net: FlowNet<u32> = FlowNet::new();
        let spec = tiny(4);
        let f = Fabric::build(&mut net, &spec);
        let p0 = f.path(Endpoint::Lustre, Endpoint::Node(NodeId(0)));
        let p1 = f.path(Endpoint::Lustre, Endpoint::Node(NodeId(1)));
        assert_eq!(p0[0], p1[0], "both reads go through the shared Lustre pipe");
        assert_eq!(p0[0], f.lustre_pipe());
    }

    #[test]
    fn lustre_reads_contend_on_the_pipe() {
        // Two nodes reading from Lustre: each limited by the 2 GB/s pipe of
        // the tiny cluster (1 GB/s each), NOT by their 1 GB/s NICs... those
        // tie exactly; use 3 readers to see the pipe bind: 2/3 GB/s each.
        let mut net: FlowNet<u32> = FlowNet::new();
        let spec = tiny(6);
        let fab = Fabric::build(&mut net, &spec);
        let mut flows = Vec::new();
        for n in 0..3u32 {
            let f = net.open_flow(
                SimTime::ZERO,
                fab.path(Endpoint::Lustre, Endpoint::Node(NodeId(n))),
                true,
            );
            net.push_chunk(SimTime::ZERO, f, Bytes(1e9), n);
            flows.push(f);
        }
        let pipe = spec.lustre_bandwidth; // 2 GB/s in tiny
        for &f in &flows {
            let r = net.flow_rate(f).unwrap();
            assert!((r - pipe / 3.0).abs() / r < 1e-9, "rate {r} != pipe/3");
        }
    }

    #[test]
    fn request_inflation() {
        // 1 GB in 128 KB requests with 4 KB overhead each: 8192 requests.
        let bytes = 1024.0 * MB;
        let inflated = inflate_for_requests(Bytes(bytes), 0.125 * MB, 4096.0);
        let requests = 8192.0;
        assert!((inflated.get() - (bytes + requests * 4096.0)).abs() < 1.0);
        // Large requests: negligible overhead.
        let big = inflate_for_requests(Bytes(bytes), 1024.0 * MB, 4096.0);
        assert!((big.get() - bytes - 4096.0).abs() < 1.0);
        assert_eq!(inflate_for_requests(Bytes::ZERO, 1.0, 1.0), Bytes::ZERO);
    }
}
