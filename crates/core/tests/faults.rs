//! Fault-injection integration tests (DESIGN.md §4.9).
//!
//! The contract under test: any single injected fault leaves the job's
//! output identical to a fault-free run (lineage recovery is exact), the
//! simulation still terminates, and a faulted run replays byte-identically
//! across executor-thread counts.
//!
//! Output equality is asserted through `Action::Count`: recovery re-hosts
//! shuffle rows at a replacement node, which preserves the multiset of
//! records but may permute the order of values inside a group.

#![allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests

use memres_cluster::tiny;
use memres_core::export;
use memres_core::prelude::*;
use memres_des::time::SimDuration;

const KEYS: i64 = 97;
const RECORDS: i64 = 4000;

fn records() -> Vec<Record> {
    (0..RECORDS)
        .map(|i| (Value::I64((i * 31 + 7) % KEYS), Value::I64(i)))
        .collect()
}

/// A two-stage job over real records: map → groupByKey → Count. The slow
/// size model stretches every phase so mid-phase fault times are easy to
/// hit from measured clean-run timings.
fn groupby_job() -> Rdd {
    Rdd::source(Dataset::from_records(records(), 8))
        .map("work", SizeModel::new(1.0, 1.0, 2e6), |r| r)
        .group_by_key(Some(4), 1e9)
}

fn base_cfg() -> EngineConfig {
    EngineConfig::default().homogeneous()
}

fn run_with(cfg: EngineConfig) -> (JobOutput, JobMetrics) {
    let mut d = Driver::new(tiny(4), cfg);
    d.run(&groupby_job(), Action::Count)
}

/// Midpoint of the shuffle phase as a fraction of the clean job time.
fn shuffle_mid_frac(m: &JobMetrics) -> f64 {
    let start = m
        .tasks_in(Phase::Shuffling)
        .map(|t| t.launched_at)
        .fold(f64::INFINITY, f64::min);
    let end = m
        .tasks_in(Phase::Shuffling)
        .map(|t| t.finished_at)
        .fold(0.0, f64::max);
    ((start + end) * 0.5 - m.started_at) / m.job_time()
}

#[test]
fn any_single_fault_preserves_output() {
    let (clean, cm) = run_with(base_cfg());
    assert!(!clean.aborted);
    assert_eq!(clean.count, KEYS as u64);
    assert!(!cm.recovery.any(), "clean run must not report recovery");
    let horizon = cm.job_time();
    assert!(horizon > 0.0);

    let cases: Vec<(FaultKind, f64)> = vec![
        (FaultKind::TaskFail { nth_launch: 3 }, 0.0),
        (FaultKind::TaskFail { nth_launch: 9 }, 0.0),
        (
            FaultKind::NodeCrash {
                node: 1,
                restart: None,
            },
            0.25,
        ),
        (
            FaultKind::NodeCrash {
                node: 2,
                restart: Some(SimDuration::from_secs_f64(horizon * 0.2)),
            },
            0.5,
        ),
        (
            FaultKind::NodeCrash {
                node: 3,
                restart: None,
            },
            0.75,
        ),
        (FaultKind::BlockLoss { node: 0 }, 0.4),
        (
            FaultKind::SsdDegrade {
                node: 1,
                factor: 0.5,
            },
            0.3,
        ),
        (FaultKind::FetchFail { src: 0 }, shuffle_mid_frac(&cm)),
    ];

    for (kind, frac) in cases {
        let plan = FaultPlan::new().after(SimDuration::from_secs_f64(horizon * frac), kind);
        let (out, m) = run_with(base_cfg().with_faults(plan));
        assert!(!out.aborted, "{kind:?} at {frac}: job aborted");
        assert_eq!(
            out.count, clean.count,
            "{kind:?} at {frac}: output diverged from fault-free run"
        );
        let r = &m.recovery;
        match kind {
            FaultKind::TaskFail { .. } => {
                assert!(r.tasks_retried >= 1, "{kind:?}: no retry recorded: {r:?}");
                assert!(r.wasted_secs > 0.0, "{kind:?}: no wasted work: {r:?}");
            }
            FaultKind::NodeCrash { .. } => {
                assert_eq!(r.node_crashes, 1, "{kind:?}: {r:?}");
            }
            FaultKind::SsdDegrade { .. } => {
                assert_eq!(r.ssd_degradations, 1, "{kind:?}: {r:?}");
            }
            FaultKind::FetchFail { .. } => {
                assert!(r.failed_fetches >= 1, "{kind:?}: no failed fetch: {r:?}");
                assert_eq!(r.failed_fetches, r.fetch_retries, "{kind:?}: {r:?}");
            }
            FaultKind::BlockLoss { .. } => {
                // Nothing is cached in this job: the loss is a no-op, the
                // run must simply complete unharmed (asserted above).
            }
        }
    }
}

#[test]
fn faulted_runs_are_byte_identical_across_executor_threads() {
    let (_, cm) = run_with(base_cfg());
    let horizon = cm.job_time();
    let plan = FaultPlan::new()
        .after(SimDuration::ZERO, FaultKind::TaskFail { nth_launch: 5 })
        .after(
            SimDuration::from_secs_f64(horizon * 0.3),
            FaultKind::NodeCrash {
                node: 1,
                restart: None,
            },
        );
    let mut jsons = Vec::new();
    for threads in [1, 4] {
        let cfg = base_cfg()
            .with_faults(plan.clone())
            .with_executor_threads(threads);
        let (out, m) = run_with(cfg);
        assert!(!out.aborted);
        assert!(m.recovery.any(), "faults must have fired: {:?}", m.recovery);
        jsons.push(export::job_json(&m));
    }
    assert_eq!(
        jsons[0], jsons[1],
        "same seed + same fault plan must replay byte-identically"
    );
}

#[test]
fn crash_recomputes_lost_cached_partitions_from_lineage() {
    let cached = Rdd::source(Dataset::from_records(records(), 8))
        .map("parse", SizeModel::new(1.0, 1.0, 2e6), |r| r)
        .cache();
    let job = cached.map("use", SizeModel::new(1.0, 1.0, 2e6), |r| r);

    // Clean pass to learn when the cached (second) job's computes run.
    let mut d = Driver::new(tiny(4), base_cfg());
    d.run(&job, Action::Count);
    let t1 = d.now().as_secs_f64();
    let (c2, m2) = d.run(&job, Action::Count);
    assert_eq!(c2.count, RECORDS as u64);
    let start = m2
        .tasks_in(Phase::Compute)
        .map(|t| t.launched_at)
        .fold(f64::INFINITY, f64::min);
    let end = m2
        .tasks_in(Phase::Compute)
        .map(|t| t.finished_at)
        .fold(0.0, f64::max);
    let mid = (start + end) * 0.5;
    assert!(mid > t1, "cached job must run after the cold one");

    // Faulted pass: crash a cache-holding node midway through job 2. Its
    // pinned tasks re-home and find their partition gone, forcing a lineage
    // recompute from the dataset.
    let plan = FaultPlan::new().after(
        SimDuration::from_secs_f64(mid),
        FaultKind::NodeCrash {
            node: 1,
            restart: None,
        },
    );
    let mut d = Driver::new(tiny(4), base_cfg().with_faults(plan));
    d.run(&job, Action::Count);
    let (out, m) = d.run(&job, Action::Count);
    assert!(!out.aborted);
    assert_eq!(out.count, RECORDS as u64);
    assert_eq!(m.recovery.node_crashes, 1);
    assert!(
        m.recovery.blocks_lost > 0,
        "the crashed node held cached partitions: {:?}",
        m.recovery
    );
    assert!(
        m.recovery.recomputed_partitions > 0,
        "lost cached partitions must be rebuilt from lineage: {:?}",
        m.recovery
    );
}

#[test]
fn attempt_limit_exhaustion_aborts_the_job() {
    let plan = FaultPlan::new().after(SimDuration::ZERO, FaultKind::TaskFail { nth_launch: 1 });
    let cfg = base_cfg().with_faults(plan).with_recovery(RecoveryConfig {
        max_task_attempts: 1,
        ..RecoveryConfig::default()
    });
    let (out, m) = run_with(cfg);
    assert!(out.aborted, "one allowed attempt + one failure must abort");
    assert_eq!(out.count, 0);
    assert_eq!(m.recovery.aborted_jobs, 1);
    assert_eq!(m.recovery.tasks_retried, 1);
}

#[test]
fn try_new_rejects_invalid_configs() {
    let bad_plan = FaultPlan::new().after(
        SimDuration::ZERO,
        FaultKind::NodeCrash {
            node: 99,
            restart: None,
        },
    );
    let err = Driver::try_new(tiny(4), EngineConfig::default().with_faults(bad_plan))
        .err()
        .expect("out-of-range fault node must be rejected");
    assert!(err.contains("out of range"), "{err}");

    let err = Driver::try_new(
        tiny(4),
        EngineConfig::default().with_recovery(RecoveryConfig {
            max_task_attempts: 0,
            ..RecoveryConfig::default()
        }),
    )
    .err()
    .expect("zero attempt budget must be rejected");
    assert!(err.contains("max_task_attempts"), "{err}");

    assert!(Driver::try_new(tiny(4), EngineConfig::default()).is_ok());
}
