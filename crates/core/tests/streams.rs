//! Multi-tenant job streams (DESIGN.md §4.14): isolation and determinism.
//!
//! The two contracts the tenancy layer must hold:
//!
//! 1. **Output isolation** — every job of an interleaved stream produces
//!    output byte-identical to the same job run alone on a fresh cluster.
//!    Concurrent residency shares slots and wall-clock, never data.
//! 2. **Replay determinism** — a whole stream (arrivals, admissions,
//!    per-job metrics, SLO rollups) serializes to identical bytes across
//!    executor-thread counts and event-queue implementations, extending the
//!    single-job determinism suite to concurrent DAGs.

use memres_core::export;
use memres_core::prelude::*;
use memres_core::{
    ArrivalProcess, FinishedJob, InterJobPolicy, JobFactory, StreamSpec, TenantSlo, TenantSpec,
};
use std::sync::Arc;

/// Tenant A: a shuffle-heavy wordcount, parameterized by `k` so each job in
/// the stream has distinct data (and therefore a distinct correct answer).
fn wordcount(k: u32) -> (Rdd, Action) {
    let recs: Vec<Record> = (0..400)
        .map(|i| {
            (
                Value::Null,
                Value::str(format!("w{}", (i + k as u64) % (17 + k as u64))),
            )
        })
        .collect();
    let rdd = Rdd::source(Dataset::from_records(recs, 8))
        .map("kv", SizeModel::scan(), |(_, v)| (v, Value::I64(1)))
        .reduce_by_key(Some(4), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    (rdd, Action::Collect)
}

/// Tenant B: a narrow scan-and-reduce (no shuffle) — a different DAG shape
/// so the resident set mixes phases.
fn scan_reduce(k: u32) -> (Rdd, Action) {
    let recs: Vec<Record> = (0..300)
        .map(|i| (Value::I64(i), Value::I64(i + k as i64)))
        .collect();
    let rdd =
        Rdd::source(Dataset::from_records(recs, 6)).map("double", SizeModel::scan(), |(key, v)| {
            (key, Value::I64(v.as_i64() * 2))
        });
    (
        rdd,
        Action::Reduce(Arc::new(|a, b| Value::I64(a.as_i64() + b.as_i64()))),
    )
}

fn stream_spec(policy: InterJobPolicy, seed: u64) -> StreamSpec {
    StreamSpec::new(
        vec![
            TenantSpec::new(
                "wordcount",
                3,
                // Tight period: arrivals outpace job latency, forcing
                // overlap and admission queueing.
                ArrivalProcess::Periodic { period_secs: 0.01 },
                Arc::new(wordcount),
            ),
            TenantSpec::new(
                "scan",
                3,
                ArrivalProcess::OpenExp { mean_secs: 0.02 },
                Arc::new(scan_reduce),
            ),
        ],
        policy,
        seed,
    )
}

fn base_cfg() -> EngineConfig {
    EngineConfig::default().homogeneous()
}

/// Render a finished stream to bytes: lifecycle CSV + per-job metric JSON +
/// SLO rollup. Any nondeterminism in arrivals, admission order, dispatch
/// interleaving or metrics shows up as a byte diff.
fn render(jobs: &[FinishedJob], tenants: usize) -> String {
    let mut s = export::stream_jobs_csv(jobs);
    let names = vec!["wordcount".to_string(), "scan".to_string()];
    s += &export::tenant_slo_json(&TenantSlo::compute(jobs, tenants), &names, &[]);
    for j in jobs {
        s += &format!("\njob {} output {:?}\n", j.id, j.output);
        s += &export::job_json(&j.metrics);
    }
    s
}

#[test]
fn stream_jobs_match_isolated_runs_byte_for_byte() {
    let mut d = Driver::new(memres_cluster::tiny(6), base_cfg());
    let finished = d.run_stream(stream_spec(InterJobPolicy::FairShare, 11));
    assert_eq!(finished.len(), 6, "all six jobs retire");

    // The stream genuinely interleaved: some job was admitted before an
    // earlier-admitted one finished.
    let overlap = finished.iter().any(|a| {
        finished
            .iter()
            .any(|b| b.id != a.id && b.admitted < a.finished && a.admitted < b.finished)
    });
    assert!(overlap, "arrival process must yield concurrent residency");

    // Output isolation: each job's result equals its isolated run.
    let factories: [JobFactory; 2] = [Arc::new(wordcount), Arc::new(scan_reduce)];
    let mut seen = [0u32; 2];
    // Finished jobs come back in completion order; per tenant, job k is the
    // k-th ADMISSION. Admission is FIFO per tenant, so sort by admission.
    let mut by_admission: Vec<&FinishedJob> = finished.iter().collect();
    by_admission.sort_by(|a, b| a.admitted.cmp(&b.admitted).then(a.id.cmp(&b.id)));
    for j in by_admission {
        let t = j.tenant as usize;
        let slot = seen.get_mut(t).expect("tenant id in range");
        let k = *slot;
        *slot += 1;
        let (rdd, action) = factories.get(t).expect("tenant id in range")(k);
        let mut iso = Driver::new(memres_cluster::tiny(6), base_cfg());
        let (iso_out, _) = iso.run(&rdd, action);
        assert_eq!(
            format!("{:?}", j.output),
            format!("{iso_out:?}"),
            "tenant {t} job {k}: stream output must equal isolated run"
        );
        assert!(!j.output.aborted);
    }

    // SLO rollup sanity: both tenants ran 3 jobs; latencies are positive
    // and ordered (p50 <= p99); queueing delay is finite.
    let slo = TenantSlo::compute(&finished, 2);
    for s in &slo {
        assert_eq!(s.jobs, 3);
        assert_eq!(s.aborted, 0);
        assert!(s.mean_latency > 0.0);
        assert!(s.p50_latency <= s.p99_latency);
        assert!(s.mean_queue_delay >= 0.0);
    }
}

#[test]
fn stream_replay_is_byte_identical_across_threads_and_queues() {
    // Satellite of the determinism suite (PR-3/PR-6): the interleaved
    // multi-job run must serialize identically across executor_threads
    // 1 vs 4 and the calendar vs legacy event queue.
    let run = |threads: usize, legacy: bool| {
        let mut cfg = base_cfg().with_executor_threads(threads);
        if legacy {
            cfg = cfg.with_legacy_event_queue();
        }
        let mut d = Driver::new(memres_cluster::tiny(6), cfg);
        let finished = d.run_stream(stream_spec(InterJobPolicy::FairShare, 42));
        render(&finished, 2)
    };
    let baseline = run(1, false);
    assert!(!baseline.is_empty());
    for (threads, legacy) in [(4, false), (1, true), (4, true)] {
        assert_eq!(
            baseline,
            run(threads, legacy),
            "stream bytes diverged at threads={threads} legacy={legacy}"
        );
    }
}

#[test]
fn capacity_policy_and_admission_cap_honour_guarantees() {
    // A max_concurrent cap forces queueing (visible queue delay) and the
    // capacity policy keeps serving both tenants; closed-loop arrivals
    // chain off completions so the stream still drains fully.
    let spec = StreamSpec::new(
        vec![
            TenantSpec::new(
                "wordcount",
                2,
                ArrivalProcess::Periodic { period_secs: 0.5 },
                Arc::new(wordcount),
            ),
            TenantSpec::new(
                "scan",
                2,
                ArrivalProcess::Closed { think_secs: 0.5 },
                Arc::new(scan_reduce),
            ),
        ],
        InterJobPolicy::Capacity {
            guarantees: vec![2, 2],
        },
        7,
    )
    .with_max_concurrent(1);
    let mut d = Driver::new(memres_cluster::tiny(4), base_cfg());
    let finished = d.run_stream(spec);
    assert_eq!(finished.len(), 4);
    assert!(
        finished.iter().any(|j| j.queue_delay() > 0.0),
        "cap of one resident job must force admission queueing"
    );
    // With the cap, at most one job is ever resident: windows cannot
    // overlap between admission and completion.
    for a in &finished {
        for b in &finished {
            if a.id != b.id {
                assert!(
                    a.finished <= b.admitted || b.finished <= a.admitted,
                    "max_concurrent=1 must serialize execution"
                );
            }
        }
    }
    // Trace-driven arrivals also drain (truncated to the trace length).
    let spec = StreamSpec::new(
        vec![TenantSpec::new(
            "scan",
            5,
            ArrivalProcess::Trace(vec![0.0, 0.25]),
            Arc::new(scan_reduce),
        )],
        InterJobPolicy::Fifo,
        1,
    );
    let mut d = Driver::new(memres_cluster::tiny(4), base_cfg());
    let finished = d.run_stream(spec);
    assert_eq!(finished.len(), 2, "trace shorter than `jobs` truncates");
}
