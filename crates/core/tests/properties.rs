//! Property-based engine invariants (proptest).
//!
//! These run small randomized jobs through the full simulation stack and
//! assert conservation and determinism properties that must hold for every
//! configuration, not just the calibrated ones.

#![allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests

use memres_cluster::tiny;
use memres_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

fn cfg_for(shuffle_idx: u8, sigma: f64, seed: u64) -> EngineConfig {
    let shuffle = match shuffle_idx % 4 {
        0 => ShuffleStore::Local(StoreDevice::RamDisk),
        1 => ShuffleStore::Local(StoreDevice::Ssd),
        2 => ShuffleStore::LustreLocal,
        _ => ShuffleStore::LustreShared,
    };
    EngineConfig {
        shuffle,
        speed_sigma: sigma,
        seed,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Shuffle conservation: with identity size models, the bytes fetched by
    /// the reduce side equal the bytes produced by the map side, for every
    /// storage strategy, node count, and partitioning.
    #[test]
    fn shuffle_conserves_bytes(
        workers in 2u32..8,
        parts in 1u32..24,
        reducers in 1u32..12,
        shuffle_idx in 0u8..4,
        seed in 0u64..1000,
    ) {
        let total = 64.0 * 1024.0 * 1024.0;
        let rdd = Rdd::source(Dataset::generated(total, total / parts as f64, 100.0))
            .map("id", SizeModel::new(1.0, 1.0, 1e9), |r| r)
            .group_by_key(Some(reducers), 1e9);
        let mut d = Driver::new(tiny(workers), cfg_for(shuffle_idx, 0.0, seed));
        let m = d.run_for_metrics(&rdd, Action::Count);
        let produced: f64 = m.tasks_in(Phase::Compute).map(|t| t.output_bytes).sum();
        let fetched: f64 = m.tasks_in(Phase::Shuffling).map(|t| t.input_bytes).sum();
        prop_assert!((produced - total).abs() / total < 1e-6);
        prop_assert!((fetched - total).abs() / total < 1e-6,
            "fetched {fetched} != produced {produced}");
        // Every reduce task exists and the job has positive duration.
        prop_assert_eq!(m.tasks_in(Phase::Shuffling).count() as u32, reducers);
        prop_assert!(m.job_time() > 0.0);
    }

    /// Real-data results are invariant under partitioning, reducer count,
    /// storage strategy, and node heterogeneity.
    #[test]
    fn wordcount_invariant(
        parts in 1usize..8,
        reducers in 1u32..6,
        shuffle_idx in 0u8..4,
        sigma in 0.0f64..0.5,
    ) {
        let words = ["a", "b", "a", "c", "a", "b", "d", "e", "a", "b"];
        let recs: Vec<Record> =
            words.iter().map(|w| (Value::str(*w), Value::I64(1))).collect();
        let rdd = Rdd::source(Dataset::from_records(recs, parts))
            .reduce_by_key(Some(reducers), 1e9, 1.0, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            });
        let mut d = Driver::new(tiny(4), cfg_for(shuffle_idx, sigma, 3));
        let (out, _) = d.run(&rdd, Action::Collect);
        let counts: HashMap<String, i64> = out
            .records
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
            .collect();
        prop_assert_eq!(counts.len(), 5);
        prop_assert_eq!(counts["a"], 4);
        prop_assert_eq!(counts["b"], 3);
        prop_assert_eq!(counts["e"], 1);
    }

    /// Determinism: the same seed gives bit-identical job times; different
    /// seeds (with heterogeneity) usually differ.
    #[test]
    fn deterministic_per_seed(seed in 0u64..100, shuffle_idx in 0u8..4) {
        let job = || {
            Rdd::source(Dataset::generated(32.0 * 1024.0 * 1024.0, 4.0 * 1024.0 * 1024.0, 100.0))
                .group_by_key(Some(4), 1e9)
        };
        let run = |s| {
            let mut d = Driver::new(tiny(4), cfg_for(shuffle_idx, 0.3, s));
            d.run_for_metrics(&job(), Action::Count).job_time()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Every task's finish time is at least its launch time, launches never
    /// precede queueing, and slots are respected (no more concurrent tasks
    /// on a node than cores).
    #[test]
    fn task_timeline_sane(
        parts in 1u32..32,
        sigma in 0.0f64..0.5,
        shuffle_idx in 0u8..4,
    ) {
        let total = 128.0 * 1024.0 * 1024.0;
        let rdd = Rdd::source(Dataset::generated(total, total / parts as f64, 100.0))
            .group_by_key(None, 1e9);
        let spec = tiny(4);
        let cores = spec.cores_per_node as usize;
        let mut d = Driver::new(spec, cfg_for(shuffle_idx, sigma, 5));
        let m = d.run_for_metrics(&rdd, Action::Count);
        for t in &m.tasks {
            prop_assert!(t.finished_at >= t.launched_at);
            prop_assert!(t.launched_at >= t.queued_at);
        }
        // Slot check: sweep events per node.
        for node in 0..4u32 {
            let mut events: Vec<(f64, i32)> = Vec::new();
            for t in m.tasks.iter().filter(|t| t.node == node) {
                events.push((t.launched_at, 1));
                events.push((t.finished_at, -1));
            }
            events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1).reverse()));
            let mut running = 0;
            for (_, delta) in events {
                running += delta;
                prop_assert!(running <= cores as i32, "node {node} oversubscribed");
            }
        }
    }
}
