//! Golden tests for the export seams: the exact field order and formatting
//! of tasks.csv / job.json, and of the trace exports (events.jsonl, Chrome
//! trace-event JSON). Downstream tooling parses these files positionally,
//! so a column reorder or a float-format change is a breaking interface
//! change — it must show up here as a failing diff, not in a user's plot
//! script.

use memres_core::export;
use memres_core::metrics::{JobMetrics, RecoveryCounters, TaskLocality, TaskMetric};
use memres_core::prelude::*;
use memres_des::time::{SimDuration, SimTime};
use memres_trace::analyze::attribute;
use memres_trace::{export as texport, TimedEvent, TraceEvent};

fn sample_metrics() -> JobMetrics {
    JobMetrics {
        job: 3,
        started_at: 0.0,
        finished_at: 4.0,
        tasks: vec![TaskMetric {
            job: 3,
            stage: 0,
            phase: Phase::Compute,
            index: 1,
            node: 2,
            queued_at: 0.25,
            launched_at: 0.5,
            finished_at: 2.0,
            input_bytes: 1024.0,
            output_bytes: 512.0,
            locality: TaskLocality::NodeLocal,
        }],
        recovery: RecoveryCounters::default(),
    }
}

#[test]
fn tasks_csv_golden() {
    let csv = export::tasks_csv(&sample_metrics());
    let expected = "\
job,stage,phase,index,node,queued_at,launched_at,finished_at,duration,\
input_bytes,output_bytes,locality,queue_delay\n\
3,0,compute,1,2,0.250000,0.500000,2.000000,1.500000,1024,512,NodeLocal,0.250000\n";
    assert_eq!(csv, expected, "tasks.csv field order/format changed");
}

#[test]
fn job_json_golden() {
    let json = export::job_json(&sample_metrics());
    let expected = r#"{
  "job": 3,
  "started_at": 0.0,
  "finished_at": 4.0,
  "queue_delay_mean": 0.25,
  "tasks": [
    {
      "job": 3,
      "stage": 0,
      "phase": "Compute",
      "index": 1,
      "node": 2,
      "queued_at": 0.25,
      "launched_at": 0.5,
      "finished_at": 2.0,
      "duration": 1.5,
      "input_bytes": 1024.0,
      "output_bytes": 512.0,
      "locality": "NodeLocal",
      "queue_delay": 0.25
    }
  ],
  "recovery": {
    "node_crashes": 0,
    "node_restarts": 0,
    "tasks_retried": 0,
    "failed_fetches": 0,
    "fetch_retries": 0,
    "recomputed_partitions": 0,
    "blocks_lost": 0,
    "blacklisted_nodes": 0,
    "ssd_degradations": 0,
    "wasted_secs": 0.0,
    "aborted_jobs": 0
  }
}"#;
    assert_eq!(json, expected, "job.json field order/format changed");
}

fn sample_trace() -> Vec<TimedEvent> {
    use memres_trace::TaskClass;
    vec![
        TimedEvent {
            at: SimTime(0),
            seq: 0,
            ev: TraceEvent::JobStart { job: 3 },
        },
        TimedEvent {
            at: SimTime(250),
            seq: 1,
            ev: TraceEvent::TaskLaunched {
                task: 1,
                node: 2,
                class: TaskClass::Compute,
                attempt: 0,
                queue_delay: SimDuration::from_nanos(250),
                speculative: false,
            },
        },
        TimedEvent {
            at: SimTime(2_000),
            seq: 2,
            ev: TraceEvent::TaskFinished {
                task: 1,
                node: 2,
                class: TaskClass::Compute,
                attempt: 0,
                ghost: false,
            },
        },
        TimedEvent {
            at: SimTime(4_000),
            seq: 3,
            ev: TraceEvent::JobEnd {
                job: 3,
                aborted: false,
            },
        },
    ]
}

#[test]
fn events_jsonl_golden() {
    let s = texport::events_jsonl(&sample_trace());
    let expected = "\
{\"at_ns\":0,\"seq\":0,\"type\":\"job_start\",\"job\":3}\n\
{\"at_ns\":250,\"seq\":1,\"type\":\"task_launched\",\"task\":1,\"node\":2,\"class\":\"compute\",\"attempt\":0,\"queue_delay_ns\":250,\"speculative\":false}\n\
{\"at_ns\":2000,\"seq\":2,\"type\":\"task_finished\",\"task\":1,\"node\":2,\"class\":\"compute\",\"attempt\":0,\"ghost\":false}\n\
{\"at_ns\":4000,\"seq\":3,\"type\":\"job_end\",\"job\":3,\"aborted\":false}\n";
    assert_eq!(s, expected, "events.jsonl field order/format changed");
}

#[test]
fn chrome_trace_golden() {
    let s = texport::chrome_trace_json(&sample_trace());
    let expected = "{\"traceEvents\":[\n\
{\"name\":\"compute\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":0.250,\"dur\":1.750,\"pid\":0,\"tid\":2,\"args\":{\"task\":1,\"attempt\":0}},\n\
{\"name\":\"job_start\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"job\":3}},\n\
{\"name\":\"job_end\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":4.000,\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"job\":3,\"aborted\":false}}\n\
],\"displayTimeUnit\":\"ms\"}\n";
    assert_eq!(s, expected, "Chrome trace-event format changed");
}

/// End-to-end: a real traced engine run exports parseable, consistent trace
/// forms, and the critical-path attribution partitions the job exactly.
#[test]
fn real_run_trace_exports_and_attribution() {
    let recs: Vec<Record> = (0..200)
        .map(|i| (Value::Null, Value::str(format!("k{}", i % 11))))
        .collect();
    let rdd = Rdd::source(Dataset::from_records(recs, 8))
        .map("kv", SizeModel::scan(), |(_, v)| (v, Value::I64(1)))
        .reduce_by_key(Some(4), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    let cfg = EngineConfig::default().homogeneous().with_trace();
    let mut d = Driver::new(memres_cluster::tiny(4), cfg);
    let (out, metrics) = d.run(&rdd, Action::Count);
    assert_eq!(out.count, 11);
    let events = d.take_trace();
    assert!(!events.is_empty());

    // jsonl: one object per line, each with balanced braces, in seq order.
    let jsonl = texport::events_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    // Chrome form: balanced structure, starts/ends as a JSON object.
    let chrome = texport::chrome_trace_json(&events);
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());

    // Attribution: exact partition of the job window, and the window agrees
    // with the metrics' job time.
    let att = attribute(&events);
    assert_eq!(att.sum(), att.job, "buckets must partition job time");
    assert!((att.job.as_secs_f64() - metrics.job_time()).abs() < 1e-6);
    assert!(
        att.compute > SimDuration::ZERO,
        "a compute-heavy job must show compute time"
    );
}
