//! In-process double-run determinism (DESIGN.md §4.10).
//!
//! Two engines built from scratch in the same process get differently-salted
//! `RandomState`s for every `std::collections` hash table they (or their
//! dependencies) hold. If any simulation-visible code iterated one, event
//! order — and with it float accumulation, task placement, and the exported
//! metrics — would differ between the two instances. Serializing both runs
//! through `export::job_json` / `export::tasks_csv` and comparing *bytes*
//! therefore catches exactly the class of bug `memres-lint` rule R1 exists
//! to prevent, from the behavioral side.

use memres_core::export;
use memres_core::prelude::*;
use memres_des::time::SimDuration;

/// A shuffle-heavy wordcount over enough partitions that placement, fetch
/// scheduling, and aggregation order all get exercised.
fn workload() -> (Rdd, Action) {
    let recs: Vec<Record> = (0..600)
        .map(|i| (Value::Null, Value::str(format!("w{}", i % 37))))
        .collect();
    let rdd = Rdd::source(Dataset::from_records(recs, 12))
        .map("kv", SizeModel::scan(), |(_, v)| (v, Value::I64(1)))
        .reduce_by_key(Some(5), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    (rdd, Action::Count)
}

/// One fresh engine, end to end, rendered to export bytes. The lineage graph
/// is rebuilt per run on purpose: shared `Rdd` handles would hide any
/// instance-keyed nondeterminism.
fn run_once(cfg: EngineConfig) -> (u64, String, String) {
    let (rdd, action) = workload();
    let mut d = Driver::new(memres_cluster::tiny(6), cfg);
    let (out, metrics) = d.run(&rdd, action);
    (
        out.count,
        export::job_json(&metrics),
        export::tasks_csv(&metrics),
    )
}

#[test]
fn double_run_exports_are_byte_identical() {
    let cfg = || EngineConfig::default().homogeneous();
    let (count_a, json_a, csv_a) = run_once(cfg());
    let (count_b, json_b, csv_b) = run_once(cfg());
    assert_eq!(count_a, count_b);
    assert_eq!(count_a, 37, "one output group per distinct word");
    assert_eq!(
        json_a, json_b,
        "job.json must be byte-identical across runs"
    );
    assert_eq!(csv_a, csv_b, "tasks.csv must be byte-identical across runs");
}

/// One fresh *traced* engine run, rendered to the two trace export forms.
fn run_traced(cfg: EngineConfig) -> (u64, String, String) {
    let (rdd, action) = workload();
    let mut d = Driver::new(memres_cluster::tiny(6), cfg);
    let (out, _) = d.run(&rdd, action);
    let events = d.take_trace();
    assert!(!events.is_empty(), "traced run must record events");
    (
        out.count,
        memres_trace::export::events_jsonl(&events),
        memres_trace::export::chrome_trace_json(&events),
    )
}

#[test]
fn trace_bytes_identical_across_executor_threads_and_runs() {
    // The trace log is simulation-visible state: a single event out of
    // order — from hash iteration, host-thread races, or wall-clock leakage
    // — changes the exported bytes. Faults are on so retry/recovery events
    // are exercised too.
    let cfg = |threads| {
        EngineConfig::default()
            .homogeneous()
            .with_executor_threads(threads)
            .with_faults(FaultPlan::seeded(7, 6, 3, SimDuration::from_secs(60)))
            .with_trace()
    };
    let (count_1, jsonl_1, chrome_1) = run_traced(cfg(1));
    let (count_4, jsonl_4, chrome_4) = run_traced(cfg(4));
    let (count_r, jsonl_r, chrome_r) = run_traced(cfg(1));
    assert_eq!(count_1, count_4);
    assert_eq!(count_1, count_r);
    assert_eq!(
        jsonl_1, jsonl_4,
        "events.jsonl must not depend on executor thread count"
    );
    assert_eq!(
        chrome_1, chrome_4,
        "trace.json must not depend on executor thread count"
    );
    assert_eq!(
        jsonl_1, jsonl_r,
        "double-run events.jsonl must be identical"
    );
    assert_eq!(
        chrome_1, chrome_r,
        "double-run trace.json must be identical"
    );
}

#[test]
fn tracing_does_not_change_simulated_outcomes() {
    // Turning the tracer on must be pure observation: the exported metrics
    // (job.json / tasks.csv) are byte-identical with tracing off and on.
    let base = || EngineConfig::default().homogeneous();
    let (count_off, json_off, csv_off) = run_once(base());
    let (count_on, json_on, csv_on) = run_once(base().with_trace());
    assert_eq!(count_off, count_on);
    assert_eq!(json_off, json_on, "tracing must not perturb job.json");
    assert_eq!(csv_off, csv_on, "tracing must not perturb tasks.csv");
}

#[test]
fn double_run_is_deterministic_under_faults_and_threads() {
    // Recovery paths reshuffle task placement and re-host lost partitions;
    // executor threads race UDF completion on the host. Neither is allowed
    // to leak into simulated outcomes.
    let cfg = || {
        EngineConfig::default()
            .homogeneous()
            .with_executor_threads(4)
            .with_faults(FaultPlan::seeded(7, 6, 3, SimDuration::from_secs(60)))
    };
    let (count_a, json_a, csv_a) = run_once(cfg());
    let (count_b, json_b, csv_b) = run_once(cfg());
    assert_eq!(count_a, count_b);
    assert_eq!(json_a, json_b, "faulted job.json must be byte-identical");
    assert_eq!(csv_a, csv_b, "faulted tasks.csv must be byte-identical");
}
