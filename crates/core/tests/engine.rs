//! End-to-end engine tests: real UDF execution, shuffle correctness across
//! storage strategies, caching, scheduling policies, and determinism.

#![allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests

use memres_cluster::tiny;
use memres_core::prelude::*;
use memres_core::world::JobOutput;
use memres_des::time::SimDuration;
use std::collections::HashMap;

fn wordcount_data() -> Vec<Record> {
    let words = ["the", "quick", "brown", "fox", "the", "lazy", "dog", "the"];
    words
        .iter()
        .map(|w| (Value::Null, Value::str(*w)))
        .collect()
}

fn driver(cfg: EngineConfig) -> Driver {
    Driver::new(tiny(4), cfg)
}

#[test]
fn wordcount_produces_exact_counts() {
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::from_records(wordcount_data(), 3))
        .map("kv", SizeModel::scan(), |(_, v)| (v, Value::I64(1)))
        .reduce_by_key(Some(2), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    let (out, metrics) = d.run(&rdd, Action::Collect);
    let counts: HashMap<String, i64> = out
        .records
        .expect("real data collects")
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
        .collect();
    assert_eq!(counts["the"], 3);
    assert_eq!(counts["quick"], 1);
    assert_eq!(counts.len(), 6);
    assert!(metrics.job_time() > 0.0);
    // Compute, storing and shuffling phases all happened.
    assert!(metrics.phase_time(Phase::Compute) > 0.0);
    assert!(metrics.phase_time(Phase::Storing) > 0.0);
    assert!(metrics.phase_time(Phase::Shuffling) > 0.0);
}

#[test]
fn group_by_key_collects_all_values() {
    let recs: Vec<Record> = (0..20)
        .map(|i| (Value::I64(i % 4), Value::I64(i)))
        .collect();
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::from_records(recs, 4)).group_by_key(Some(3), 1e9);
    let (out, _) = d.run(&rdd, Action::Collect);
    let groups = out.records.unwrap();
    assert_eq!(groups.len(), 4);
    let total: usize = groups.iter().map(|(_, v)| v.as_list().len()).sum();
    assert_eq!(total, 20);
}

#[test]
fn filter_and_flatmap_compose() {
    let recs: Vec<Record> = (0..10).map(|i| (Value::Null, Value::I64(i))).collect();
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::from_records(recs, 2))
        .filter("evens", SizeModel::scan(), |r| r.1.as_i64() % 2 == 0)
        .flat_map("dup", SizeModel::scan(), |r| vec![r.clone(), r]);
    let (out, _) = d.run(&rdd, Action::Count);
    assert_eq!(out.count, 10); // 5 evens duplicated
}

#[test]
fn synthetic_job_runs_with_size_models() {
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::synthetic(
        64.0 * 1024.0 * 1024.0,
        8.0 * 1024.0 * 1024.0,
        100.0,
    ))
    .map("scan", SizeModel::new(0.5, 1.0, 1e9), |r| r)
    .group_by_key(Some(4), 1e9);
    let (out, metrics) = d.run(&rdd, Action::Count);
    assert!(out.count > 0);
    assert!(metrics.job_time() > 0.0);
    let shuffled: f64 = metrics
        .tasks_in(Phase::Shuffling)
        .map(|t| t.input_bytes)
        .sum();
    // Half the input (map factor 0.5) moves through the shuffle.
    assert!((shuffled - 32.0 * 1024.0 * 1024.0).abs() / shuffled < 0.01);
}

#[test]
fn cached_rdd_is_reused_by_second_job() {
    let mut d = driver(EngineConfig::default().homogeneous());
    let recs: Vec<Record> = (0..100).map(|i| (Value::Null, Value::I64(i))).collect();
    let cached = Rdd::source(Dataset::from_records(recs, 4))
        .map("parse", SizeModel::new(1.0, 1.0, 1e3), |r| r)
        .cache();
    let job1 = cached.map("sum", SizeModel::scan(), |r| r);
    let (_, m1) = d.run(&job1, Action::Count);
    // Second job over the cache: lineage truncated, no dataset read.
    let plan = d.explain(&job1, Action::Count);
    assert!(
        plan.contains("cached"),
        "plan should start from cache:\n{plan}"
    );
    let (out2, m2) = d.run(&job1, Action::Count);
    assert_eq!(out2.count, 100);
    assert!(
        m2.job_time() < m1.job_time(),
        "cached iteration {} should beat cold {}",
        m2.job_time(),
        m1.job_time()
    );
    // All tasks node-local on the cache homes.
    assert!(m2.locality_fraction() > 0.99);
}

#[test]
fn reduce_action_folds_values() {
    let recs: Vec<Record> = (1..=10)
        .map(|i| (Value::Null, Value::F64(i as f64)))
        .collect();
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::from_records(recs, 2));
    let (out, _) = d.run(
        &rdd,
        Action::Reduce(std::sync::Arc::new(|a, b| {
            Value::F64(a.as_f64() + b.as_f64())
        })),
    );
    assert_eq!(out.reduced.unwrap().as_f64(), 55.0);
}

fn groupby_synthetic(total_mb: f64) -> Rdd {
    Rdd::source(Dataset::synthetic(
        total_mb * 1048576.0,
        8.0 * 1048576.0,
        100.0,
    ))
    .map("genKV", SizeModel::new(1.0, 1.0, 800e6), |r| r)
    .group_by_key(Some(8), 1e9)
}

#[test]
fn lustre_shared_shuffles_slower_than_lustre_local() {
    let base = EngineConfig {
        input: InputSource::Lustre,
        ..EngineConfig::default()
    }
    .homogeneous();
    let mut d_local = driver(EngineConfig {
        shuffle: ShuffleStore::LustreLocal,
        ..base.clone()
    });
    let m_local = d_local.run_for_metrics(&groupby_synthetic(512.0), Action::Count);
    let mut d_shared = driver(EngineConfig {
        shuffle: ShuffleStore::LustreShared,
        ..base
    });
    let m_shared = d_shared.run_for_metrics(&groupby_synthetic(512.0), Action::Count);
    let sh_local = m_local.phase_time(Phase::Shuffling);
    let sh_shared = m_shared.phase_time(Phase::Shuffling);
    assert!(
        sh_shared > sh_local * 1.5,
        "DLM should slow the shared shuffle: local={sh_local:.2}s shared={sh_shared:.2}s"
    );
    // Storing phases comparable (paper Fig 7b).
    let st_local = m_local.phase_time(Phase::Storing);
    let st_shared = m_shared.phase_time(Phase::Storing);
    assert!(
        (st_shared - st_local).abs() / st_local.max(1e-9) < 0.5,
        "storing phases should be comparable: local={st_local:.2}s shared={st_shared:.2}s"
    );
}

#[test]
fn delay_scheduling_hurts_short_tasks_under_skew() {
    // §V-A / Fig 9: with heterogeneous node speeds, holding tasks for
    // locality idles fast nodes, stretching the computation phase.
    let cfg = EngineConfig {
        speed_sigma: 0.6,
        ..EngineConfig::default()
    };
    let job = || {
        Rdd::source(Dataset::synthetic(
            512.0 * 1048576.0,
            4.0 * 1048576.0,
            100.0,
        ))
        .filter("grep", SizeModel::new(0.001, 0.001, 1.5e9), |_| true)
        .group_by_key(Some(4), 1e9)
    };
    let mut fifo = Driver::new(tiny(16), cfg.clone());
    let m_fifo = fifo.run_for_metrics(&job(), Action::Count);
    let mut delay = Driver::new(
        tiny(16),
        cfg.with_delay_scheduling(SimDuration::from_secs(3)),
    );
    let m_delay = delay.run_for_metrics(&job(), Action::Count);
    let (f, d) = (
        m_fifo.phase_time(Phase::Compute),
        m_delay.phase_time(Phase::Compute),
    );
    assert!(
        d > f * 1.1,
        "delay compute phase {d:.4}s should exceed fifo {f:.4}s by >10%"
    );
    // And delay achieves (near-)perfect locality while fifo does not.
    assert!(m_delay.locality_fraction() > m_fifo.locality_fraction());
}

#[test]
fn elb_balances_intermediate_data_under_skew() {
    let job = || groupby_synthetic(1024.0);
    let cfg = EngineConfig {
        speed_sigma: 0.5,
        ..EngineConfig::default()
    };
    let mut plain = driver(cfg.clone());
    let m_plain = plain.run_for_metrics(&job(), Action::Count);
    let mut elb = driver(cfg.with_elb());
    let m_elb = elb.run_for_metrics(&job(), Action::Count);
    let spread = |m: &JobMetrics| {
        let mut per = m.intermediate_per_node(4);
        per.truncate(4); // drop the (empty) overflow bucket
        let max = per.iter().cloned().fold(0.0, f64::max);
        let avg = per.iter().sum::<f64>() / per.len() as f64;
        max / avg
    };
    assert!(
        spread(&m_elb) <= spread(&m_plain) + 1e-9,
        "ELB should not worsen imbalance: plain={:.3} elb={:.3}",
        spread(&m_plain),
        spread(&m_elb)
    );
}

#[test]
fn determinism_same_seed_same_times() {
    let run = || {
        let mut d = driver(EngineConfig::default());
        d.run_for_metrics(&groupby_synthetic(128.0), Action::Count)
            .job_time()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce bit-identical times");
}

#[test]
fn parallel_executor_matches_single_thread_byte_for_byte() {
    // Same seed, same job: the metrics JSON and the collected output must be
    // byte-identical whether real-partition chains are evaluated on one host
    // thread or a pool. 32 partitions over tiny(4)'s 8 slots guarantees
    // multi-chain dispatch batches actually hit the worker pool.
    let recs: Vec<Record> = (0..4000)
        .map(|i| (Value::I64(i % 97), Value::I64(i)))
        .collect();
    let job = || {
        Rdd::source(Dataset::from_records(recs.clone(), 32))
            .map("x3", SizeModel::scan(), |(k, v)| {
                (k, Value::I64(v.as_i64() * 3))
            })
            .filter("odd", SizeModel::scan(), |r| r.1.as_i64() % 2 == 1)
            .reduce_by_key(Some(8), 1e9, 1.0, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            })
    };
    let run = |threads: usize| {
        let mut d = driver(EngineConfig::default().with_executor_threads(threads));
        let (out, m) = d.run(&job(), Action::Collect);
        (out, memres_core::export::job_json(&m))
    };
    let (out1, json1) = run(1);
    let (out4, json4) = run(4);
    assert_eq!(
        json1, json4,
        "metrics JSON must not depend on the thread count"
    );
    assert_eq!(out1.count, out4.count);
    assert_eq!(out1.records, out4.records);
    assert!(out1.count > 0);
}

#[test]
fn table1_prints() {
    let cfg = EngineConfig::default();
    let rows = cfg.table1();
    assert_eq!(rows.len(), 5);
}

#[test]
fn explain_renders_groupby_plan() {
    let d = driver(EngineConfig::default().homogeneous());
    let plan = d.explain(&groupby_synthetic(64.0), Action::Count);
    assert!(plan.contains("Stage 1"));
    assert!(plan.contains("Stage 2"));
    assert!(plan.contains("groupByKey"));
}

#[test]
fn job_output_shapes() {
    let mut d = driver(EngineConfig::default().homogeneous());
    let rdd = Rdd::source(Dataset::synthetic(1048576.0, 1048576.0, 100.0));
    let (out, _) = d.run(&rdd, Action::Count);
    let JobOutput {
        count,
        records,
        reduced,
        aborted,
    } = out;
    assert!(count > 0);
    assert!(!aborted);
    assert!(records.is_none(), "synthetic data cannot be collected");
    assert!(reduced.is_none());
}

#[test]
fn speculation_preserves_results_and_tames_stragglers() {
    // A strongly skewed cluster: one class of very slow nodes.
    let cfg = EngineConfig {
        speed_sigma: 0.6,
        seed: 4,
        ..EngineConfig::default()
    };
    let job = || {
        Rdd::source(Dataset::generated(
            512.0 * 1048576.0,
            8.0 * 1048576.0,
            100.0,
        ))
        .map("gen", SizeModel::new(1.0, 1.0, 100e6), |r| r)
        .group_by_key(Some(8), 1e9)
    };
    let mut plain = Driver::new(tiny(8), cfg.clone());
    let m_plain = plain.run_for_metrics(&job(), Action::Count);
    let mut spec = Driver::new(tiny(8), cfg.with_speculation());
    let m_spec = spec.run_for_metrics(&job(), Action::Count);
    // Same work accomplished (identical shuffle volume).
    let vol = |m: &JobMetrics| -> f64 { m.tasks_in(Phase::Shuffling).map(|t| t.input_bytes).sum() };
    assert!((vol(&m_plain) - vol(&m_spec)).abs() / vol(&m_plain) < 1e-6);
    // Speculation should not hurt the compute phase.
    assert!(
        m_spec.phase_time(Phase::Compute) <= m_plain.phase_time(Phase::Compute) * 1.05,
        "speculation {} vs plain {}",
        m_spec.phase_time(Phase::Compute),
        m_plain.phase_time(Phase::Compute)
    );
}

#[test]
fn export_round_trip() {
    let mut d = driver(EngineConfig::default().homogeneous());
    let m = d.run_for_metrics(&groupby_synthetic(64.0), Action::Count);
    let csv = memres_core::export::tasks_csv(&m);
    let durs = memres_core::export::durations_from_csv(&csv, "storing");
    assert_eq!(durs.len(), m.tasks_in(Phase::Storing).count());
    let json = memres_core::export::job_json(&m);
    assert!(json.contains("\"tasks\""));
}

#[test]
fn rack_aggregation_preserves_results_and_collapses_flows() {
    // Same synthetic GroupBy with aggregation forced on (threshold 0) and
    // forced off (u32::MAX): counts and record totals must match exactly —
    // the aggregate processor-shared flows change *when* bytes arrive, not
    // how many. Timing may differ (that is the exactness boundary, see
    // DESIGN.md §4.12), but both runs must complete all phases.
    let base = EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(StoreDevice::RamDisk),
        ..EngineConfig::default()
    }
    .homogeneous();
    let wl = groupby_synthetic(256.0);

    let mut d_agg = driver(base.clone().with_rack_agg_threshold(0));
    let (out_agg, m_agg) = d_agg.run(&wl, Action::Count);
    let mut d_exact = driver(base.with_rack_agg_threshold(u32::MAX));
    let (out_exact, m_exact) = d_exact.run(&wl, Action::Count);

    assert_eq!(out_agg.count, out_exact.count);
    assert!(m_agg.phase_time(Phase::Shuffling) > 0.0);
    assert!(m_exact.phase_time(Phase::Shuffling) > 0.0);
    // Real-record jobs keep exact per-bucket accounting under aggregation.
    let mut d_real = Driver::new(
        tiny(4),
        EngineConfig::default()
            .homogeneous()
            .with_rack_agg_threshold(0),
    );
    let rdd = Rdd::source(Dataset::from_records(wordcount_data(), 3))
        .map("kv", SizeModel::scan(), |(_, v)| (v, Value::I64(1)))
        .reduce_by_key(Some(2), 1e9, 1.0, |a, b| {
            Value::I64(a.as_i64() + b.as_i64())
        });
    let (out, _) = d_real.run(&rdd, Action::Collect);
    let counts: HashMap<String, i64> = out
        .records
        .expect("real data collects")
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
        .collect();
    assert_eq!(counts["the"], 3);
    assert_eq!(counts.len(), 6);
}

#[test]
fn legacy_event_queue_is_byte_identical() {
    // The calendar queue's pop order is the heap's total order: identical
    // simulated timings on an end-to-end job, not just in the differential
    // proptest.
    let mk = |legacy: bool| {
        let mut cfg = EngineConfig::default().homogeneous();
        if legacy {
            cfg = cfg.with_legacy_event_queue();
        }
        let mut d = driver(cfg);
        let m = d.run_for_metrics(&groupby_synthetic(128.0), Action::Count);
        (m.job_time(), d.engine_steps())
    };
    let (t_cal, e_cal) = mk(false);
    let (t_heap, e_heap) = mk(true);
    assert_eq!(t_cal.to_bits(), t_heap.to_bits(), "sim time must not move");
    assert_eq!(e_cal, e_heap, "event count must not move");
}

#[test]
fn try_new_rejects_degenerate_spec_and_config() {
    // Degenerate topologies the fuzz generator can emit must be structured
    // errors at construction, never mid-sim panics.
    let mut spec = tiny(4);
    spec.racks = 7; // more racks than workers -> empty racks
    let err = Driver::try_new(spec, EngineConfig::default())
        .map(|_| ())
        .expect_err("empty racks");
    assert!(err.contains("empty racks"), "unexpected error: {err}");

    let mut spec = tiny(4);
    spec.nic_bandwidth = 0.0;
    let err = Driver::try_new(spec, EngineConfig::default())
        .map(|_| ())
        .expect_err("dead link");
    assert!(err.contains("nic_bandwidth"), "unexpected error: {err}");

    // Fault targets beyond the node count are caught by the same gate.
    let plan = FaultPlan::new().after(
        SimDuration::from_secs(1),
        FaultKind::NodeCrash {
            node: 99,
            restart: None,
        },
    );
    let err = Driver::try_new(tiny(4), EngineConfig::default().with_faults(plan))
        .map(|_| ())
        .expect_err("fault target out of range");
    assert!(err.contains("out of range"), "unexpected error: {err}");
}

#[test]
fn run_audited_matches_run_and_passes_waterfill_audit() {
    let data: Vec<Record> = (0..500)
        .map(|i| (Value::I64(i % 37), Value::I64(1)))
        .collect();
    let build = || {
        Rdd::source(Dataset::from_records(data.clone(), 8))
            .map("kv", SizeModel::scan(), |(k, v)| (k, v))
            .reduce_by_key(Some(5), 1e9, 1.0, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            })
    };
    let mut d = driver(EngineConfig::default().homogeneous());
    let (out_a, m_a) = d.run(&build(), Action::Count);
    let mut d = driver(EngineConfig::default().homogeneous());
    let (out_b, m_b) = d
        .run_audited(&build(), Action::Count, 64)
        .expect("audited run must pass");
    assert_eq!(out_a.count, out_b.count);
    assert_eq!(m_a.job_time().to_bits(), m_b.job_time().to_bits());
}
