//! The driver: submits jobs against a persistent simulated cluster.
//!
//! A [`Driver`] owns the simulation. Jobs run back-to-back on the same
//! cluster state, so cached RDDs persist across jobs — exactly how the LR
//! benchmark reuses its parsed input across iterations.

use crate::config::EngineConfig;
use crate::dag::{build_plan, render_plan, JobPlan};
use crate::metrics::JobMetrics;
use crate::rdd::{Action, Rdd};
use crate::tenancy::{FinishedJob, StreamSpec};
use crate::world::{Ev, JobOutput, SimWorld};
use memres_cluster::ClusterSpec;
use memres_des::sim::Simulation;
use memres_des::time::SimTime;

pub struct Driver {
    sim: Simulation<SimWorld>,
}

impl Driver {
    /// Build a driver, panicking on an invalid configuration. Prefer
    /// [`Driver::try_new`] where the config comes from user input.
    pub fn new(spec: ClusterSpec, cfg: EngineConfig) -> Driver {
        match Driver::try_new(spec, cfg) {
            Ok(d) => d,
            Err(e) => panic!("invalid engine configuration: {e}"),
        }
    }

    /// Build a driver after validating `cfg` against the cluster shape;
    /// returns a descriptive error instead of simulating a nonsense cluster.
    pub fn try_new(spec: ClusterSpec, cfg: EngineConfig) -> Result<Driver, String> {
        spec.validate()?;
        cfg.validate(spec.workers)?;
        let world = SimWorld::new(spec, cfg);
        let mut sim = Simulation::new(world);
        if sim.model.cfg.legacy_event_queue {
            sim.use_legacy_queue();
        }
        sim.max_steps = 500_000_000;
        if sim.model.cfg.speed_sigma > 0.0 {
            let period = sim.model.cfg.speed_resample;
            sim.schedule_after(period, Ev::SpeedResample);
        }
        Ok(Driver { sim })
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Enable or disable the strict event-discipline check: when on, any
    /// event scheduled before the current simulation time panics instead of
    /// being clamped (the dynamic counterpart of the `event-past` lint,
    /// DESIGN.md §4.15). Defaults to on in debug builds.
    pub fn set_strict_schedule(&mut self, strict: bool) {
        self.sim.set_strict_schedule(strict);
    }

    pub fn world(&self) -> &SimWorld {
        &self.sim.model
    }

    pub fn world_mut(&mut self) -> &mut SimWorld {
        &mut self.sim.model
    }

    /// Build the plan an action would run (cache-aware), without running it.
    pub fn plan(&self, rdd: &Rdd, action: Action) -> JobPlan {
        build_plan(rdd, action, &self.sim.model.blockmgr.materialized())
    }

    /// Pretty-print the execution plan (paper Fig 3/4 style).
    pub fn explain(&self, rdd: &Rdd, action: Action) -> String {
        render_plan(&self.plan(rdd, action))
    }

    /// Run `action` on `rdd` to completion; returns the result and the
    /// job's task-level metrics.
    pub fn run(&mut self, rdd: &Rdd, action: Action) -> (JobOutput, JobMetrics) {
        let plan = self.plan(rdd, action);
        let start = self.sim.now();
        // Submit via a synthetic event turn.
        let mut out = memres_des::Outbox::standalone(start);
        self.sim.model.submit_job(start, plan, &mut out);
        self.sim.drain_outbox(out);
        while !self.sim.model.job_done {
            assert!(
                self.sim.step(),
                "simulation drained before job completion (deadlock?)"
            );
        }
        let fin = self
            .sim
            .model
            .take_finished()
            .expect("job finished without result");
        (fin.output, fin.metrics)
    }

    /// Run a multi-tenant job stream to completion: seed the arrival
    /// process, drive the simulation until every arrival has been admitted,
    /// executed and retired, and return the finished jobs in completion
    /// order. Feed the result to [`crate::tenancy::TenantSlo::compute`] for
    /// per-tenant queueing-delay / latency / slowdown summaries.
    pub fn run_stream(&mut self, spec: StreamSpec) -> Vec<FinishedJob> {
        let start = self.sim.now();
        let mut out = memres_des::Outbox::standalone(start);
        self.sim.model.start_stream(start, spec, &mut out);
        self.sim.drain_outbox(out);
        while !self.sim.model.job_done {
            assert!(
                self.sim.step(),
                "simulation drained before stream completion (deadlock?)"
            );
        }
        self.sim.model.drain_finished()
    }

    /// Convenience: run and return only the metrics.
    pub fn run_for_metrics(&mut self, rdd: &Rdd, action: Action) -> JobMetrics {
        self.run(rdd, action).1
    }

    /// [`Driver::run_stream`] with the fuzz harness's error discipline:
    /// calendar drain and event-budget exhaustion come back as `Err`, and
    /// every `audit_every` events the live engine state is cross-checked
    /// against independent reimplementations. The multi-job fuzz oracles
    /// (DESIGN.md §4.13/§4.14) drive streams through this entry point so a
    /// misbehaving scheduler cannot panic the fuzzer.
    pub fn run_stream_audited(
        &mut self,
        spec: StreamSpec,
        audit_every: u64,
    ) -> Result<Vec<FinishedJob>, String> {
        let start = self.sim.now();
        let mut out = memres_des::Outbox::standalone(start);
        self.sim.model.start_stream(start, spec, &mut out);
        self.sim.drain_outbox(out);
        let mut since_audit = 0u64;
        while !self.sim.model.job_done {
            match self.sim.try_step() {
                Ok(true) => {}
                Ok(false) => {
                    return Err(
                        "simulation drained before stream completion (deadlock?)".to_string()
                    )
                }
                Err(e) => {
                    return Err(format!(
                        "event budget exhausted (max_steps={}) before stream completion",
                        e.max_steps
                    ))
                }
            }
            since_audit += 1;
            if audit_every > 0 && since_audit >= audit_every {
                since_audit = 0;
                self.sim.model.audit_invariants().map_err(|e| {
                    format!(
                        "audit failed at t={:.6}s: {e}",
                        self.sim.now().as_secs_f64()
                    )
                })?;
            }
        }
        Ok(self.sim.model.drain_finished())
    }

    /// Run `action` on `rdd` like [`Driver::run`], but built to survive a
    /// misbehaving engine: calendar drain and event-budget exhaustion come
    /// back as `Err` instead of panicking, and every `audit_every` processed
    /// events the live engine state is cross-checked against independent
    /// reimplementations ([`SimWorld::audit_invariants`]) — the fuzz
    /// harness's entry point (DESIGN.md §4.13). `audit_every == 0` disables
    /// the periodic audits but keeps the non-panicking error paths.
    pub fn run_audited(
        &mut self,
        rdd: &Rdd,
        action: Action,
        audit_every: u64,
    ) -> Result<(JobOutput, JobMetrics), String> {
        let plan = self.plan(rdd, action);
        let start = self.sim.now();
        let mut out = memres_des::Outbox::standalone(start);
        self.sim.model.submit_job(start, plan, &mut out);
        self.sim.drain_outbox(out);
        let mut since_audit = 0u64;
        while !self.sim.model.job_done {
            match self.sim.try_step() {
                Ok(true) => {}
                Ok(false) => {
                    return Err("simulation drained before job completion (deadlock?)".to_string())
                }
                Err(e) => {
                    return Err(format!(
                        "event budget exhausted (max_steps={}) before job completion",
                        e.max_steps
                    ))
                }
            }
            since_audit += 1;
            if audit_every > 0 && since_audit >= audit_every {
                since_audit = 0;
                self.sim.model.audit_invariants().map_err(|e| {
                    format!(
                        "audit failed at t={:.6}s: {e}",
                        self.sim.now().as_secs_f64()
                    )
                })?;
            }
        }
        if audit_every > 0 {
            self.sim
                .model
                .audit_invariants()
                .map_err(|e| format!("audit failed at job end: {e}"))?;
        }
        let fin = self
            .sim
            .model
            .take_finished()
            .ok_or_else(|| "job finished without result".to_string())?;
        Ok((fin.output, fin.metrics))
    }

    /// Cap the event budget for subsequent runs (the fuzz harness lowers
    /// this from the 500M default so runaway specs fail fast as an `Err`
    /// from [`Driver::run_audited`] instead of burning CI minutes).
    pub fn set_max_steps(&mut self, max_steps: u64) {
        self.sim.max_steps = max_steps;
    }

    /// Events processed by the simulation engine so far (self-profiling).
    pub fn engine_steps(&self) -> u64 {
        self.sim.steps()
    }

    /// Drain the structured event log accumulated so far (empty when
    /// tracing is off). See DESIGN.md §4.11.
    pub fn take_trace(&mut self) -> Vec<memres_trace::TimedEvent> {
        self.sim.model.take_trace()
    }

    /// Number of trace events buffered (without draining them).
    pub fn trace_len(&self) -> usize {
        self.sim.model.trace_len()
    }

    /// The time-series recorder accumulated so far (`None` when
    /// `cfg.metrics` is off). See DESIGN.md §4.16.
    pub fn recorder(&self) -> Option<&memres_metrics::Recorder> {
        self.sim.model.recorder()
    }

    /// Rough peak-heap estimate for engine self-profiling (arena capacities
    /// plus trace log plus shuffle accounting; not an allocator hook).
    pub fn heap_estimate_bytes(&self) -> u64 {
        self.sim.model.heap_estimate_bytes()
    }
}
