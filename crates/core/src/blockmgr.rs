//! Block manager: memory-resident RDD partitions.
//!
//! §II-C: "Spark leverages the distributed memory from all slave nodes to
//! store most intermediate data during job execution and the final execution
//! results at job completion ... Such memory-resident feature benefits many
//! applications such as machine learning or iterative algorithms that
//! require extensive reuse of results among multiple MapReduce jobs."
//!
//! A cache point materialized by one job is consumed by later jobs: the DAG
//! builder truncates lineage at materialized caches, and the scheduler gives
//! cached partitions a placement preference for their home node.

use crate::rdd::RddId;
use crate::value::Record;
use memres_des::{Bytes, DetMap, DetSet};
use std::sync::Arc;

/// (bytes, records, data, home node) of one cached partition.
pub type PartitionView = (f64, u64, Option<Arc<[Record]>>, u32);

#[derive(Clone)]
pub struct CachedPart {
    pub node: u32,
    pub bytes: f64,
    pub records: u64,
    /// Shared view of the materialized partition (zero-copy: snapshots taken
    /// at cache points and reads by later jobs are all reference bumps).
    pub data: Option<Arc<[Record]>>,
}

#[derive(Default)]
pub struct BlockMgr {
    entries: DetMap<RddId, Vec<Option<CachedPart>>>,
    /// Bytes cached per node (framework-memory accounting).
    node_used: DetMap<u32, f64>,
}

impl BlockMgr {
    /// Declare an RDD's partition count (so `materialized` can tell a
    /// fully-cached RDD from a partially-cached one).
    pub fn declare(&mut self, rdd: RddId, partitions: u32) {
        let parts = self.entries.entry(rdd).or_default();
        if parts.len() < partitions as usize {
            parts.resize(partitions as usize, None);
        }
    }

    pub fn insert(
        &mut self,
        rdd: RddId,
        part: u32,
        node: u32,
        bytes: Bytes,
        records: u64,
        data: Option<Arc<[Record]>>,
    ) {
        let bytes = bytes.get();
        let parts = self.entries.entry(rdd).or_default();
        if parts.len() <= part as usize {
            parts.resize(part as usize + 1, None);
        }
        let slot = parts
            .get_mut(part as usize)
            .expect("slot exists: resized above");
        if let Some(old) = slot {
            *self.node_used.entry(old.node).or_insert(0.0) -= old.bytes;
        }
        *slot = Some(CachedPart {
            node,
            bytes,
            records,
            data,
        });
        *self.node_used.entry(node).or_insert(0.0) += bytes;
    }

    /// RDDs whose every partition is materialized (usable for lineage
    /// truncation).
    pub fn materialized(&self) -> DetSet<RddId> {
        self.entries
            .iter()
            .filter(|(_, parts)| !parts.is_empty() && parts.iter().all(Option::is_some))
            .map(|(&rdd, _)| rdd)
            .collect()
    }

    pub fn partition_count(&self, rdd: RddId) -> usize {
        self.entries.get(&rdd).map(|p| p.len()).unwrap_or(0)
    }

    /// (bytes, records, data, home node) of a cached partition.
    pub fn partition(&self, rdd: RddId, part: u32) -> PartitionView {
        self.try_partition(rdd, part)
            .unwrap_or_else(|| panic!("partition {part} of cached {rdd:?} not materialized"))
    }

    /// Non-panicking [`partition`](Self::partition): `None` when the slot was
    /// never materialized or was lost (node crash, executor memory loss) —
    /// the scheduler's cue to recompute it from lineage.
    pub fn try_partition(&self, rdd: RddId, part: u32) -> Option<PartitionView> {
        self.entries
            .get(&rdd)
            .and_then(|parts| parts.get(part as usize))
            .and_then(Option::as_ref)
            .map(|p| (p.bytes, p.records, p.data.clone(), p.node))
    }

    /// Drop every cached partition living on `node` (crash / executor memory
    /// loss). Slots become `None` but each RDD's partition count is kept, so
    /// `materialized()` correctly reports the RDD as incomplete. Returns the
    /// lost `(rdd, part)` pairs, sorted for determinism.
    pub fn drop_node(&mut self, node: u32) -> Vec<(RddId, u32)> {
        let mut lost = Vec::new();
        for (&rdd, parts) in self.entries.iter_mut() {
            for (i, slot) in parts.iter_mut().enumerate() {
                if slot.as_ref().is_some_and(|p| p.node == node) {
                    let p = slot.take().unwrap();
                    *self.node_used.entry(p.node).or_insert(0.0) -= p.bytes;
                    lost.push((rdd, i as u32));
                }
            }
        }
        lost.sort_unstable();
        lost
    }

    pub fn location(&self, rdd: RddId, part: u32) -> Option<u32> {
        self.entries
            .get(&rdd)
            .and_then(|parts| parts.get(part as usize))
            .and_then(Option::as_ref)
            .map(|p| p.node)
    }

    /// Whether the cached RDD holds real (materialized-records) data.
    pub fn is_real(&self, rdd: RddId) -> bool {
        self.entries
            .get(&rdd)
            .map(|parts| parts.iter().flatten().all(|p| p.data.is_some()))
            .unwrap_or(false)
    }

    pub fn bytes_on(&self, node: u32) -> f64 {
        self.node_used.get(&node).copied().unwrap_or(0.0)
    }

    pub fn evict(&mut self, rdd: RddId) {
        if let Some(parts) = self.entries.remove(&rdd) {
            for p in parts.into_iter().flatten() {
                *self.node_used.entry(p.node).or_insert(0.0) -= p.bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn insert_and_materialized() {
        let mut bm = BlockMgr::default();
        let rdd = RddId(7);
        bm.declare(rdd, 2);
        bm.insert(rdd, 0, 3, Bytes(100.0), 10, None);
        assert!(!bm.materialized().contains(&rdd), "partition 1 missing");
        assert_eq!(bm.partition_count(rdd), 2);
        bm.insert(rdd, 1, 4, Bytes(50.0), 5, None);
        assert!(bm.materialized().contains(&rdd));
        assert_eq!(bm.location(rdd, 1), Some(4));
        let (b, r, d, n) = bm.partition(rdd, 0);
        assert_eq!((b, r, n), (100.0, 10, 3));
        assert!(d.is_none());
    }

    #[test]
    fn accounting_and_eviction() {
        let mut bm = BlockMgr::default();
        bm.insert(RddId(1), 0, 0, Bytes(100.0), 1, None);
        bm.insert(RddId(1), 1, 0, Bytes(50.0), 1, None);
        assert_eq!(bm.bytes_on(0), 150.0);
        // Re-insert replaces and re-accounts.
        bm.insert(RddId(1), 0, 1, Bytes(80.0), 1, None);
        assert_eq!(bm.bytes_on(0), 50.0);
        assert_eq!(bm.bytes_on(1), 80.0);
        bm.evict(RddId(1));
        assert_eq!(bm.bytes_on(0), 0.0);
        assert_eq!(bm.partition_count(RddId(1)), 0);
    }

    #[test]
    fn real_data_flag() {
        let mut bm = BlockMgr::default();
        let data: Arc<[Record]> = vec![(Value::I64(1), Value::I64(2))].into();
        bm.insert(RddId(2), 0, 0, Bytes(10.0), 1, Some(data));
        assert!(bm.is_real(RddId(2)));
        bm.insert(RddId(2), 1, 0, Bytes(10.0), 1, None);
        assert!(!bm.is_real(RddId(2)));
    }

    #[test]
    #[should_panic(expected = "not materialized")]
    fn missing_partition_panics() {
        let bm = BlockMgr::default();
        bm.partition(RddId(9), 0);
    }

    #[test]
    fn drop_node_loses_partitions_but_keeps_shape() {
        let mut bm = BlockMgr::default();
        let rdd = RddId(3);
        bm.declare(rdd, 3);
        bm.insert(rdd, 0, 0, Bytes(10.0), 1, None);
        bm.insert(rdd, 1, 1, Bytes(20.0), 2, None);
        bm.insert(rdd, 2, 1, Bytes(30.0), 3, None);
        assert!(bm.materialized().contains(&rdd));
        let lost = bm.drop_node(1);
        assert_eq!(lost, vec![(rdd, 1), (rdd, 2)]);
        assert_eq!(bm.partition_count(rdd), 3, "shape survives the loss");
        assert!(!bm.materialized().contains(&rdd));
        assert!(bm.try_partition(rdd, 1).is_none());
        assert!(bm.try_partition(rdd, 0).is_some());
        assert_eq!(bm.bytes_on(1), 0.0);
        assert_eq!(bm.bytes_on(0), 10.0);
        assert!(bm.drop_node(1).is_empty(), "second drop is a no-op");
    }
}
