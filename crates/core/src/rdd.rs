//! Resilient Distributed Datasets: the lineage graph and its public API.
//!
//! Mirrors Spark 0.7's programming model (§II-C): an [`Rdd`] is an immutable
//! handle onto a lineage node; *transformations* (`map`, `flat_map`,
//! `filter`, `group_by_key`, `reduce_by_key`, `cache`) build new nodes;
//! *actions* (`count`, `collect`, `reduce`) are materialized by the driver.
//!
//! Every transformation carries two things:
//! * a **real implementation** (a UDF over [`Record`]s) used when partitions
//!   hold materialized data, and
//! * a **size model** (output-bytes factor + per-core processing rate) used
//!   for TB-scale synthetic partitions where only sizes flow.
//!
//! The same job graph therefore runs both ways, which is how the engine's
//! correctness is testable while its performance experiments run at the
//! paper's data scales.

use crate::value::{Record, Value};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

pub type MapFn = Arc<dyn Fn(Record) -> Record + Send + Sync>;
pub type FlatMapFn = Arc<dyn Fn(Record) -> Vec<Record> + Send + Sync>;
pub type FilterFn = Arc<dyn Fn(&Record) -> bool + Send + Sync>;
pub type ReduceFn = Arc<dyn Fn(Value, Value) -> Value + Send + Sync>;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u32);

static NEXT_RDD: AtomicU32 = AtomicU32::new(0);

fn fresh_id() -> RddId {
    RddId(NEXT_RDD.fetch_add(1, Ordering::Relaxed))
}

/// How a transformation changes data volume and what it costs to apply.
#[derive(Clone, Copy, Debug)]
pub struct SizeModel {
    /// Output bytes per input byte (selectivity).
    pub bytes_factor: f64,
    /// Output records per input record.
    pub records_factor: f64,
    /// Bytes/second one core pushes through this operator at speed 1.0 —
    /// the "computation intensity" §IV-A shows governs storage sensitivity.
    pub compute_rate: f64,
}

impl SizeModel {
    pub fn new(bytes_factor: f64, records_factor: f64, compute_rate: f64) -> Self {
        assert!(bytes_factor >= 0.0 && records_factor >= 0.0 && compute_rate > 0.0);
        SizeModel {
            bytes_factor,
            records_factor,
            compute_rate,
        }
    }

    /// A cheap streaming operator (identity volume, memory-scan speed).
    pub fn scan() -> Self {
        SizeModel::new(1.0, 1.0, 1.5e9)
    }
}

/// Pipelined (narrow-dependency) operator.
#[derive(Clone)]
pub enum NarrowKind {
    Map(MapFn),
    FlatMap(FlatMapFn),
    Filter(FilterFn),
}

pub struct NarrowStep {
    pub name: String,
    pub kind: NarrowKind,
    pub size: SizeModel,
}

impl NarrowStep {
    /// Apply the real implementation to materialized records.
    pub fn apply(&self, input: Vec<Record>) -> Vec<Record> {
        match &self.kind {
            NarrowKind::Map(f) => input.into_iter().map(|r| f(r)).collect(),
            NarrowKind::FlatMap(f) => input.into_iter().flat_map(|r| f(r)).collect(),
            NarrowKind::Filter(f) => input.into_iter().filter(|r| f(r)).collect(),
        }
    }

    /// Apply to a shared (borrowed) partition without consuming it — the
    /// zero-copy execution path hands out `Arc<[Record]>` slices, so the
    /// first step of a chain reads the shared data in place.
    pub fn apply_slice(&self, input: &[Record]) -> Vec<Record> {
        match &self.kind {
            NarrowKind::Map(f) => input.iter().map(|r| f(r.clone())).collect(),
            NarrowKind::FlatMap(f) => input.iter().flat_map(|r| f(r.clone())).collect(),
            NarrowKind::Filter(f) => input.iter().filter(|r| f(r)).cloned().collect(),
        }
    }
}

/// Shuffle-side aggregation.
#[derive(Clone)]
pub enum ShuffleAgg {
    /// groupByKey: values of each key collected into a [`Value::List`].
    GroupByKey,
    /// reduceByKey: values of each key folded with the given function.
    ReduceByKey(ReduceFn),
}

impl ShuffleAgg {
    pub fn name(&self) -> &'static str {
        match self {
            ShuffleAgg::GroupByKey => "groupByKey",
            ShuffleAgg::ReduceByKey(_) => "reduceByKey",
        }
    }
}

/// One node of the lineage graph.
pub enum RddOp {
    /// Leaf: a dataset (real or synthetic) to be laid out on the configured
    /// input storage when the job starts.
    Source(Arc<Dataset>),
    Narrow {
        parent: Rdd,
        step: Arc<NarrowStep>,
    },
    Shuffle {
        parent: Rdd,
        agg: ShuffleAgg,
        /// Reduce-side task count (`spark.default.parallelism` when `None`
        /// at job submission).
        reducers: Option<u32>,
        /// Bytes/sec one core aggregates fetched data at.
        fetch_rate: f64,
        /// Synthetic model: output bytes per fetched byte after aggregation.
        out_factor: f64,
    },
    /// Memory-resident cache marker (`rdd.cache()`): partitions computed
    /// through this node are retained by the block managers and reused by
    /// later jobs — the feature LR leans on (§II-C).
    Cache {
        parent: Rdd,
    },
}

pub struct RddInner {
    pub id: RddId,
    pub op: RddOp,
}

/// Cheap, clonable handle to a lineage node.
#[derive(Clone)]
pub struct Rdd(pub Arc<RddInner>);

impl Rdd {
    fn wrap(op: RddOp) -> Rdd {
        Rdd(Arc::new(RddInner { id: fresh_id(), op }))
    }

    pub fn id(&self) -> RddId {
        self.0.id
    }

    pub fn source(dataset: Dataset) -> Rdd {
        Rdd::wrap(RddOp::Source(Arc::new(dataset)))
    }

    /// Full-control transformation constructor.
    pub fn narrow(&self, name: impl Into<String>, kind: NarrowKind, size: SizeModel) -> Rdd {
        Rdd::wrap(RddOp::Narrow {
            parent: self.clone(),
            step: Arc::new(NarrowStep {
                name: name.into(),
                kind,
                size,
            }),
        })
    }

    pub fn map(
        &self,
        name: impl Into<String>,
        size: SizeModel,
        f: impl Fn(Record) -> Record + Send + Sync + 'static,
    ) -> Rdd {
        self.narrow(name, NarrowKind::Map(Arc::new(f)), size)
    }

    pub fn flat_map(
        &self,
        name: impl Into<String>,
        size: SizeModel,
        f: impl Fn(Record) -> Vec<Record> + Send + Sync + 'static,
    ) -> Rdd {
        self.narrow(name, NarrowKind::FlatMap(Arc::new(f)), size)
    }

    pub fn filter(
        &self,
        name: impl Into<String>,
        size: SizeModel,
        f: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Rdd {
        self.narrow(name, NarrowKind::Filter(Arc::new(f)), size)
    }

    pub fn group_by_key(&self, reducers: Option<u32>, fetch_rate: f64) -> Rdd {
        Rdd::wrap(RddOp::Shuffle {
            parent: self.clone(),
            agg: ShuffleAgg::GroupByKey,
            reducers,
            fetch_rate,
            out_factor: 1.0,
        })
    }

    pub fn reduce_by_key(
        &self,
        reducers: Option<u32>,
        fetch_rate: f64,
        out_factor: f64,
        f: impl Fn(Value, Value) -> Value + Send + Sync + 'static,
    ) -> Rdd {
        Rdd::wrap(RddOp::Shuffle {
            parent: self.clone(),
            agg: ShuffleAgg::ReduceByKey(Arc::new(f)),
            reducers,
            fetch_rate,
            out_factor,
        })
    }

    /// Mark this RDD memory-resident across jobs.
    pub fn cache(&self) -> Rdd {
        Rdd::wrap(RddOp::Cache {
            parent: self.clone(),
        })
    }

    /// Transform only the value of each record (keys and partitioning are
    /// preserved).
    pub fn map_values(
        &self,
        name: impl Into<String>,
        size: SizeModel,
        f: impl Fn(Value) -> Value + Send + Sync + 'static,
    ) -> Rdd {
        self.map(name, size, move |(k, v)| (k, f(v)))
    }

    /// Keep only the keys (values become `Null`).
    pub fn keys(&self) -> Rdd {
        self.map("keys", SizeModel::new(0.5, 1.0, 2.0e9), |(k, _)| {
            (k, Value::Null)
        })
    }

    /// Keep only the values (keys become `Null`).
    pub fn values(&self) -> Rdd {
        self.map("values", SizeModel::new(0.5, 1.0, 2.0e9), |(_, v)| {
            (Value::Null, v)
        })
    }

    /// Distinct keys, via a shuffle (reduceByKey keeping one value).
    pub fn distinct_keys(&self, reducers: Option<u32>) -> Rdd {
        self.reduce_by_key(reducers, 1.0e9, 0.1, |a, _| a)
    }

    /// Per-key occurrence counts — the wordcount kernel.
    pub fn count_by_key(&self, reducers: Option<u32>) -> Rdd {
        self.map("ones", SizeModel::scan(), |(k, _)| (k, Value::I64(1)))
            .reduce_by_key(reducers, 1.0e9, 0.3, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            })
    }

    /// Operator name for plan printing.
    pub fn op_name(&self) -> String {
        match &self.0.op {
            RddOp::Source(d) => format!("source[{} partitions]", d.partitions.len()),
            RddOp::Narrow { step, .. } => step.name.clone(),
            RddOp::Shuffle { agg, .. } => agg.name().to_string(),
            RddOp::Cache { .. } => "cache".to_string(),
        }
    }
}

/// A partition of input data: sizes always, records when materialized.
/// Materialized data is a shared slice: placement, caching and task launch
/// all hand out reference-counted views instead of deep copies.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    pub bytes: f64,
    pub records: u64,
    pub data: Option<Arc<[Record]>>,
}

/// An input dataset. Placement (HDFS blocks / Lustre files) happens when a
/// job referencing it first runs, according to the engine's `InputSource` —
/// unless the dataset is `generated`, in which case tasks synthesize their
/// partitions in memory with no input I/O (the paper's GroupBy does exactly
/// this: "each task generates (key, value) pairs in memory").
pub struct Dataset {
    pub partitions: Vec<Partition>,
    pub generated: bool,
}

impl Dataset {
    /// TB-scale synthetic dataset: `total_bytes` split into `split_bytes`
    /// partitions with the given mean record size.
    pub fn synthetic(total_bytes: f64, split_bytes: f64, record_bytes: f64) -> Dataset {
        assert!(total_bytes >= 0.0 && split_bytes > 0.0 && record_bytes > 0.0);
        let parts = (total_bytes / split_bytes).ceil().max(1.0) as usize;
        let per = total_bytes / parts as f64;
        Dataset {
            partitions: (0..parts)
                .map(|_| Partition {
                    bytes: per,
                    records: (per / record_bytes).round().max(1.0) as u64,
                    data: None,
                })
                .collect(),
            generated: false,
        }
    }

    /// Like [`Dataset::synthetic`], but generated in memory by the tasks
    /// themselves: no input storage is involved.
    pub fn generated(total_bytes: f64, split_bytes: f64, record_bytes: f64) -> Dataset {
        let mut d = Dataset::synthetic(total_bytes, split_bytes, record_bytes);
        d.generated = true;
        d
    }

    /// Materialized dataset from real records, split into `partitions`.
    pub fn from_records(records: Vec<Record>, partitions: usize) -> Dataset {
        assert!(partitions > 0);
        let mut parts: Vec<Vec<Record>> = (0..partitions).map(|_| Vec::new()).collect();
        for (i, r) in records.into_iter().enumerate() {
            parts
                .get_mut(i % partitions)
                .expect("in range: modulo by partitions")
                .push(r);
        }
        Dataset {
            partitions: parts
                .into_iter()
                .map(|data| Partition {
                    bytes: data.iter().map(crate::value::record_bytes).sum::<u64>() as f64,
                    records: data.len() as u64,
                    data: Some(data.into()),
                })
                .collect(),
            generated: false,
        }
    }

    pub fn total_bytes(&self) -> f64 {
        self.partitions.iter().map(|p| p.bytes).sum()
    }

    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.records).sum()
    }
}

/// Job-terminating action (§II-C: "Spark's actions include reduce, count,
/// collect...").
#[derive(Clone)]
pub enum Action {
    Count,
    Collect,
    Reduce(ReduceFn),
}

impl Action {
    pub fn name(&self) -> &'static str {
        match self {
            Action::Count => "count",
            Action::Collect => "collect",
            Action::Reduce(_) => "reduce",
        }
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests
mod tests {
    use super::*;

    #[test]
    fn synthetic_dataset_partitioning() {
        let d = Dataset::synthetic(1000.0, 300.0, 10.0);
        assert_eq!(d.partitions.len(), 4);
        assert!((d.total_bytes() - 1000.0).abs() < 1e-9);
        assert_eq!(d.partitions[0].records, 25);
        assert!(d.partitions[0].data.is_none());
    }

    #[test]
    fn real_dataset_round_robin() {
        let recs: Vec<Record> = (0..10)
            .map(|i| (Value::I64(i), Value::I64(i * i)))
            .collect();
        let d = Dataset::from_records(recs, 3);
        assert_eq!(d.partitions.len(), 3);
        assert_eq!(d.total_records(), 10);
        assert_eq!(d.partitions[0].data.as_ref().unwrap().len(), 4);
        assert!(d.total_bytes() > 0.0);
    }

    #[test]
    fn narrow_steps_apply_real_udfs() {
        let step = NarrowStep {
            name: "double".into(),
            kind: NarrowKind::Map(Arc::new(|(k, v): Record| (k, Value::I64(v.as_i64() * 2)))),
            size: SizeModel::scan(),
        };
        let out = step.apply(vec![(Value::Null, Value::I64(3))]);
        assert_eq!(out[0].1, Value::I64(6));

        let filt = NarrowStep {
            name: "odd".into(),
            kind: NarrowKind::Filter(Arc::new(|r: &Record| r.1.as_i64() % 2 == 1)),
            size: SizeModel::scan(),
        };
        let out = filt.apply(vec![
            (Value::Null, Value::I64(1)),
            (Value::Null, Value::I64(2)),
        ]);
        assert_eq!(out.len(), 1);

        let fm = NarrowStep {
            name: "dup".into(),
            kind: NarrowKind::FlatMap(Arc::new(|r: Record| vec![r.clone(), r])),
            size: SizeModel::scan(),
        };
        assert_eq!(fm.apply(vec![(Value::Null, Value::Null)]).len(), 2);
    }

    #[test]
    fn lineage_builds_and_names() {
        let src = Rdd::source(Dataset::synthetic(100.0, 50.0, 10.0));
        let grouped = src
            .filter("filter", SizeModel::scan(), |_| true)
            .flat_map("flatMap", SizeModel::scan(), |r| vec![r])
            .group_by_key(Some(4), 1e9);
        assert_eq!(grouped.op_name(), "groupByKey");
        let cached = grouped.cache();
        assert_eq!(cached.op_name(), "cache");
        assert_ne!(src.id(), cached.id());
    }

    #[test]
    fn rdd_ids_are_unique() {
        let a = Rdd::source(Dataset::synthetic(1.0, 1.0, 1.0));
        let b = Rdd::source(Dataset::synthetic(1.0, 1.0, 1.0));
        assert_ne!(a.id(), b.id());
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests
mod sugar_tests {
    use super::*;

    #[test]
    fn map_values_preserves_keys() {
        let step = match &Rdd::source(Dataset::synthetic(1.0, 1.0, 1.0))
            .map_values("inc", SizeModel::scan(), |v| Value::I64(v.as_i64() + 1))
            .0
            .op
        {
            RddOp::Narrow { step, .. } => step.clone(),
            _ => unreachable!(),
        };
        let out = step.apply(vec![(Value::str("k"), Value::I64(1))]);
        assert_eq!(out[0].0.as_str(), "k");
        assert_eq!(out[0].1.as_i64(), 2);
    }

    #[test]
    fn sugar_builds_expected_shapes() {
        let src = Rdd::source(Dataset::synthetic(100.0, 10.0, 1.0));
        assert!(matches!(src.keys().0.op, RddOp::Narrow { .. }));
        assert!(matches!(src.values().0.op, RddOp::Narrow { .. }));
        assert!(matches!(
            src.distinct_keys(Some(2)).0.op,
            RddOp::Shuffle { .. }
        ));
        // count_by_key = map + reduceByKey.
        let cbk = src.count_by_key(None);
        match &cbk.0.op {
            RddOp::Shuffle { parent, .. } => {
                assert!(matches!(parent.0.op, RddOp::Narrow { .. }))
            }
            _ => panic!("count_by_key must end in a shuffle"),
        }
    }
}
