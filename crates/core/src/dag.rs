//! DAG scheduler: lineage → stages.
//!
//! As in Spark 0.7 (§II-C), an action triggers construction of an execution
//! plan: pipelined (narrow) transformations are grouped into stages, and "an
//! implicit stage is embedded into the DAG for every shuffle operation".
//! Stages launch serially. The engine additionally models the paper's
//! three-phase pipeline per shuffle (Fig 4a): the upstream stage's
//! *computation* tasks, the pinned *storing* ShuffleMapTasks that flush
//! in-memory output to the shuffle store, and the downstream *shuffling*
//! fetch tasks.
//!
//! Cache handling: a `cache()` marker inside a stage records a cache point;
//! when a later job's lineage passes through an already-materialized cache,
//! the plan is truncated to start from the cached partitions — that is the
//! memory-resident reuse LR exploits across iterations.

// Lineage chains are dense arenas indexed by `RddId`s this module mints
// root-first; as in world.rs, `arr[id]` is the idiom and a miss is an engine
// bug. The crate-level `indexing_slicing` warning is waived for this file.
#![allow(clippy::indexing_slicing)]

use crate::rdd::{Action, Dataset, NarrowStep, Rdd, RddId, RddOp, ShuffleAgg};
use memres_des::{DetMap, DetSet};
use std::sync::Arc;

/// Shuffle parameters feeding a downstream stage.
#[derive(Clone)]
pub struct ShuffleInSpec {
    pub agg: ShuffleAgg,
    pub fetch_rate: f64,
    pub out_factor: f64,
}

/// Where a stage's tasks get their input.
#[derive(Clone)]
pub enum StageInput {
    /// Leaf dataset, laid out on the configured input storage.
    Dataset { rdd: RddId, dataset: Arc<Dataset> },
    /// Partitions materialized by a previous job's cache point.
    Cached { rdd: RddId },
    /// Shuffled output of the previous stage in this plan.
    Shuffle(ShuffleInSpec),
}

/// One stage: input, a pipelined chain of narrow steps, optional cache
/// points, and whether the output feeds a shuffle.
pub struct StagePlan {
    pub input: StageInput,
    pub steps: Vec<Arc<NarrowStep>>,
    /// `(after_step_index, rdd)` — snapshot the pipeline state after that
    /// many steps and register it with the block managers under `rdd`.
    pub cache_points: Vec<(usize, RddId)>,
    /// `Some(requested_reducers)` when this stage ends at a shuffle write.
    pub shuffle_out: Option<Option<u32>>,
}

impl StagePlan {
    fn new(input: StageInput) -> Self {
        StagePlan {
            input,
            steps: Vec::new(),
            cache_points: Vec::new(),
            shuffle_out: None,
        }
    }

    pub fn has_shuffle_output(&self) -> bool {
        self.shuffle_out.is_some()
    }
}

/// How to rebuild one lost partition of a materialized cache: re-read its
/// source partition and replay the narrow prefix that produced the cache
/// point. Recorded at lineage truncation so the scheduler can recompute a
/// partition the block managers no longer hold (node crash, executor memory
/// loss) without replanning the job — Spark's lineage fault tolerance.
#[derive(Clone)]
pub struct RecoverySpec {
    /// The leaf dataset the cached RDD descends from.
    pub source: RddId,
    pub dataset: Arc<Dataset>,
    /// Narrow steps between the source and the cache point.
    pub steps: Vec<Arc<NarrowStep>>,
    /// Pipeline position of the cache snapshot ( = `steps.len()`).
    pub cache_step: usize,
}

pub struct JobPlan {
    pub stages: Vec<StagePlan>,
    pub action: Action,
    /// Lineage-recovery recipes for the materialized caches this plan was
    /// truncated at, keyed by cached RDD. Only shuffle-free (Dataset-rooted)
    /// prefixes are recoverable per-partition; a cache downstream of a
    /// shuffle has no such recipe and its loss is unrecoverable.
    pub recovery: DetMap<RddId, RecoverySpec>,
}

/// Build a [`JobPlan`] for `action` on `rdd`. `materialized` is the set of
/// cache points the block managers already hold.
pub fn build_plan(rdd: &Rdd, action: Action, materialized: &DetSet<RddId>) -> JobPlan {
    // Root-to-leaf chain (the engine supports linear lineages; branching
    // DAGs — joins/unions — are out of the reproduction's scope).
    let mut chain: Vec<Rdd> = Vec::new();
    let mut cur = rdd.clone();
    loop {
        chain.push(cur.clone());
        let parent = match &cur.0.op {
            RddOp::Source(_) => None,
            RddOp::Narrow { parent, .. } => Some(parent.clone()),
            RddOp::Shuffle { parent, .. } => Some(parent.clone()),
            RddOp::Cache { parent } => Some(parent.clone()),
        };
        match parent {
            Some(p) => cur = p,
            None => break,
        }
    }
    chain.reverse();

    let mut stages: Vec<StagePlan> = Vec::new();
    let mut current: Option<StagePlan> = None;
    let mut recovery: DetMap<RddId, RecoverySpec> = DetMap::new();
    for node in &chain {
        match &node.0.op {
            RddOp::Source(ds) => {
                assert!(current.is_none(), "source must be the lineage root");
                current = Some(StagePlan::new(StageInput::Dataset {
                    rdd: node.id(),
                    dataset: ds.clone(),
                }));
            }
            RddOp::Narrow { step, .. } => {
                current
                    .as_mut()
                    .expect("narrow op without upstream stage") // lint:allow(panic): lineage chains are built root-first; a narrow op always follows its parent stage
                    .steps
                    .push(step.clone());
            }
            RddOp::Shuffle {
                agg,
                reducers,
                fetch_rate,
                out_factor,
                ..
            } => {
                let mut up = current.take().expect("shuffle without upstream stage"); // lint:allow(panic): lineage chains are built root-first; a shuffle always follows its upstream stage
                up.shuffle_out = Some(*reducers);
                stages.push(up);
                current = Some(StagePlan::new(StageInput::Shuffle(ShuffleInSpec {
                    agg: agg.clone(),
                    fetch_rate: *fetch_rate,
                    out_factor: *out_factor,
                })));
            }
            RddOp::Cache { .. } => {
                if materialized.contains(&node.id()) {
                    // Record the lineage-recovery recipe before truncating,
                    // when the cache's prefix is shuffle-free.
                    if let Some(StagePlan {
                        input: StageInput::Dataset { rdd: src, dataset },
                        steps,
                        ..
                    }) = &current
                    {
                        recovery.insert(
                            node.id(),
                            RecoverySpec {
                                source: *src,
                                dataset: dataset.clone(),
                                steps: steps.clone(),
                                cache_step: steps.len(),
                            },
                        );
                    }
                    // Truncate: restart the plan from the cached partitions.
                    stages.clear();
                    current = Some(StagePlan::new(StageInput::Cached { rdd: node.id() }));
                } else {
                    let cur = current.as_mut().expect("cache without upstream stage"); // lint:allow(panic): lineage chains are built root-first; a cache marker always follows its upstream stage
                    cur.cache_points.push((cur.steps.len(), node.id()));
                }
            }
        }
    }
    stages.push(current.expect("empty lineage")); // lint:allow(panic): the chain holds at least the root Source node, so a stage is always open
    JobPlan {
        stages,
        action,
        recovery,
    }
}

/// Render the execution plan the way the paper's Fig 4 draws them.
pub fn render_plan(plan: &JobPlan) -> String {
    let mut out = String::new();
    for (i, stage) in plan.stages.iter().enumerate() {
        out.push_str(&format!("Stage {} [", i + 1));
        let input = match &stage.input {
            StageInput::Dataset { dataset, .. } => {
                format!("read {} partitions", dataset.partitions.len())
            }
            StageInput::Cached { rdd } => format!("cached RDD #{}", rdd.0),
            StageInput::Shuffle(s) => format!("fetch+{}", s.agg.name()),
        };
        out.push_str(&input);
        for step in &stage.steps {
            out.push_str(&format!(" -> {}", step.name));
        }
        for (idx, rdd) in &stage.cache_points {
            out.push_str(&format!(" (cache#{} after {} steps)", rdd.0, idx));
        }
        if stage.has_shuffle_output() {
            out.push_str(" -> ShuffleMapTasks (store)");
        }
        out.push_str("]\n");
    }
    out.push_str(&format!("Action: {}\n", plan.action.name()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::SizeModel;

    fn src() -> Rdd {
        Rdd::source(Dataset::synthetic(1000.0, 100.0, 10.0))
    }

    #[test]
    fn map_only_job_is_single_stage() {
        let rdd = src().map("m", SizeModel::scan(), |r| r);
        let plan = build_plan(&rdd, Action::Count, &DetSet::new());
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0].steps.len(), 1);
        assert!(!plan.stages[0].has_shuffle_output());
    }

    #[test]
    fn shuffle_splits_stages_like_fig4a() {
        // GroupBy (Fig 4a): compute -> store -> fetch/group.
        let rdd = src()
            .map("genKV", SizeModel::scan(), |r| r)
            .group_by_key(Some(8), 1e9);
        let plan = build_plan(&rdd, Action::Count, &DetSet::new());
        assert_eq!(plan.stages.len(), 2);
        assert!(plan.stages[0].has_shuffle_output());
        assert_eq!(plan.stages[0].shuffle_out, Some(Some(8)));
        assert!(matches!(plan.stages[1].input, StageInput::Shuffle(_)));
        assert!(!plan.stages[1].has_shuffle_output());
    }

    #[test]
    fn narrow_ops_pipeline_into_one_stage() {
        // Fig 3: "filter and flatMap are grouped into a same stage while the
        // groupByKey is in an independent stage".
        let rdd = src()
            .filter("filter", SizeModel::scan(), |_| true)
            .flat_map("flatMap", SizeModel::scan(), |r| vec![r])
            .group_by_key(None, 1e9)
            .map("map", SizeModel::scan(), |r| r);
        let plan = build_plan(&rdd, Action::Collect, &DetSet::new());
        assert_eq!(plan.stages.len(), 2);
        assert_eq!(plan.stages[0].steps.len(), 2);
        assert_eq!(plan.stages[1].steps.len(), 1);
    }

    #[test]
    fn unmaterialized_cache_records_a_cache_point() {
        let rdd = src().map("parse", SizeModel::scan(), |r| r).cache();
        let plan = build_plan(&rdd, Action::Count, &DetSet::new());
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0].cache_points.len(), 1);
        assert_eq!(plan.stages[0].cache_points[0].0, 1);
    }

    #[test]
    fn materialized_cache_truncates_lineage() {
        let cached = src().map("parse", SizeModel::scan(), |r| r).cache();
        let rdd = cached.map("gradient", SizeModel::scan(), |r| r);
        let mut mat = DetSet::new();
        mat.insert(cached.id());
        let plan = build_plan(&rdd, Action::Reduce(Arc::new(|a, _| a)), &mat);
        assert_eq!(plan.stages.len(), 1);
        assert!(matches!(plan.stages[0].input, StageInput::Cached { .. }));
        // Only the post-cache step remains.
        assert_eq!(plan.stages[0].steps.len(), 1);
        assert_eq!(plan.stages[0].steps[0].name, "gradient");
    }

    #[test]
    fn truncation_records_recovery_spec() {
        let cached = src().map("parse", SizeModel::scan(), |r| r).cache();
        let rdd = cached.map("gradient", SizeModel::scan(), |r| r);
        let mut mat = DetSet::new();
        mat.insert(cached.id());
        let plan = build_plan(&rdd, Action::Count, &mat);
        let spec = plan
            .recovery
            .get(&cached.id())
            .expect("shuffle-free cache prefix must get a recovery recipe");
        assert_eq!(spec.steps.len(), 1);
        assert_eq!(spec.steps[0].name, "parse");
        assert_eq!(spec.cache_step, 1);
        // A cache downstream of a shuffle is not per-partition recoverable.
        let cached2 = src().group_by_key(Some(4), 1e9).cache();
        let rdd2 = cached2.map("m", SizeModel::scan(), |r| r);
        let mut mat2 = DetSet::new();
        mat2.insert(cached2.id());
        let plan2 = build_plan(&rdd2, Action::Count, &mat2);
        assert!(plan2.recovery.is_empty());
    }

    #[test]
    fn render_mentions_stages_and_action() {
        let rdd = src()
            .flat_map("flatMap", SizeModel::scan(), |r| vec![r])
            .group_by_key(None, 1e9);
        let plan = build_plan(&rdd, Action::Count, &DetSet::new());
        let s = render_plan(&plan);
        assert!(s.contains("Stage 1"));
        assert!(s.contains("Stage 2"));
        assert!(s.contains("ShuffleMapTasks"));
        assert!(s.contains("Action: count"));
    }

    #[test]
    fn two_shuffles_make_three_stages() {
        let rdd = src()
            .group_by_key(Some(4), 1e9)
            .map("m", SizeModel::scan(), |r| r)
            .group_by_key(Some(2), 1e9);
        let plan = build_plan(&rdd, Action::Count, &DetSet::new());
        assert_eq!(plan.stages.len(), 3);
        assert!(plan.stages[0].has_shuffle_output());
        assert!(plan.stages[1].has_shuffle_output());
        assert!(!plan.stages[2].has_shuffle_output());
    }
}
