//! Multi-tenant job streams (DESIGN.md §4.14).
//!
//! A [`StreamSpec`] describes a set of tenants, each submitting a stream of
//! jobs under a deterministic, seed-driven [`ArrivalProcess`]. Arrivals feed
//! a per-stream admission queue; admitted jobs become concurrently resident
//! in the world and compete for slots under an [`InterJobPolicy`] that sits
//! *above* the existing intra-job dispatch path (locality, delay scheduling,
//! ELB, CAD all still apply within each job).
//!
//! Everything here is a pure function of `(spec, seed)` — no wall clock, no
//! global RNG — so a stream replays byte-identically across executor thread
//! counts and event-queue implementations, like every other part of the
//! engine.

use crate::metrics::JobMetrics;
use crate::rdd::{Action, Rdd};
use crate::world::JobOutput;
use memres_des::time::{SimDuration, SimTime};
use std::sync::Arc;

/// How a tenant's jobs arrive.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival gaps with the given mean, drawn
    /// from the stream seed (a Poisson arrival stream). Arrivals are
    /// independent of job completions — load keeps coming even when the
    /// cluster falls behind.
    OpenExp { mean_secs: f64 },
    /// Open loop with a fixed inter-arrival period.
    Periodic { period_secs: f64 },
    /// Closed loop: the first job arrives at stream start; each subsequent
    /// job arrives `think_secs` after the tenant's previous job finishes.
    Closed { think_secs: f64 },
    /// Trace-driven: explicit arrival offsets (seconds from stream start),
    /// one per job. Extra configured jobs beyond the trace length never
    /// arrive.
    Trace(Vec<f64>),
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in [0,1) from (seed, tenant, k) — the same hash-to-unit
/// construction the task jitter uses, so arrival streams are pure functions
/// of the stream seed.
fn unit(seed: u64, tenant: u32, k: u32) -> f64 {
    let h = splitmix64(seed ^ ((tenant as u64) << 40) ^ ((k as u64) << 8));
    ((h >> 11) as f64) / ((1u64 << 53) as f64)
}

impl ArrivalProcess {
    /// Gap between arrival `k-1` (stream start for `k == 0`) and arrival `k`
    /// for open-loop processes. `None` for closed-loop gaps after the first
    /// (those are measured from job completion, see [`ArrivalProcess::think`])
    /// and for trace-driven processes (absolute offsets, see
    /// [`ArrivalProcess::trace_offset`]).
    pub fn open_gap(&self, seed: u64, tenant: u32, k: u32) -> Option<SimDuration> {
        match self {
            ArrivalProcess::OpenExp { mean_secs } => {
                let u = unit(seed, tenant, k).min(1.0 - 1e-12);
                Some(SimDuration::from_secs_f64(-mean_secs * (1.0 - u).ln()))
            }
            ArrivalProcess::Periodic { period_secs } => {
                Some(SimDuration::from_secs_f64(*period_secs))
            }
            ArrivalProcess::Closed { .. } => (k == 0).then_some(SimDuration::ZERO),
            ArrivalProcess::Trace(_) => None,
        }
    }

    /// Absolute offset of arrival `k` from stream start (trace-driven only).
    pub fn trace_offset(&self, k: u32) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Trace(ts) => ts
                .get(k as usize)
                .map(|&s| SimDuration::from_secs_f64(s.max(0.0))),
            _ => None,
        }
    }

    /// Closed-loop think time (completion → next arrival), if any.
    pub fn think(&self) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Closed { think_secs } => Some(SimDuration::from_secs_f64(*think_secs)),
            _ => None,
        }
    }
}

/// Builds the `k`-th job a tenant submits. Each call must mint fresh RDDs
/// (fresh ids), so concurrent jobs get disjoint partition namespaces and a
/// tenant's output can be compared byte-for-byte against an isolated run.
pub type JobFactory = Arc<dyn Fn(u32) -> (Rdd, Action)>;

/// One tenant of a job stream.
#[derive(Clone)]
pub struct TenantSpec {
    pub name: String,
    /// Number of jobs this tenant submits over the stream.
    pub jobs: u32,
    pub arrival: ArrivalProcess,
    pub make: JobFactory,
}

impl TenantSpec {
    pub fn new(
        name: impl Into<String>,
        jobs: u32,
        arrival: ArrivalProcess,
        make: JobFactory,
    ) -> Self {
        TenantSpec {
            name: name.into(),
            jobs,
            arrival,
            make,
        }
    }
}

/// Inter-job scheduling policy: the order in which concurrently resident
/// jobs are offered a freed slot. Intra-job placement (locality preference,
/// delay scheduling, ELB, CAD) is unchanged below this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterJobPolicy {
    /// Strict admission order — the head-of-line job takes every slot it
    /// can use before later jobs see any.
    Fifo,
    /// Max-min fair share over running task slots: the job currently
    /// holding the fewest slots is offered the next one (ties broken by
    /// admission order).
    FairShare,
    /// Per-tenant slot guarantees: jobs of tenants running below their
    /// guarantee are served first; beyond the guarantees, max-min fair
    /// share applies. `guarantees[t]` is tenant `t`'s slot floor (missing
    /// entries mean 0).
    Capacity { guarantees: Vec<u32> },
}

/// A complete multi-tenant stream: tenants, the inter-job policy, an
/// optional cap on concurrently resident jobs (arrivals beyond it wait in
/// the admission queue), and the seed driving every arrival draw.
#[derive(Clone)]
pub struct StreamSpec {
    pub tenants: Vec<TenantSpec>,
    pub policy: InterJobPolicy,
    /// `None` = every arrival is admitted immediately.
    pub max_concurrent: Option<usize>,
    pub seed: u64,
}

impl StreamSpec {
    pub fn new(tenants: Vec<TenantSpec>, policy: InterJobPolicy, seed: u64) -> Self {
        StreamSpec {
            tenants,
            policy,
            max_concurrent: None,
            seed,
        }
    }

    pub fn with_max_concurrent(mut self, m: usize) -> Self {
        self.max_concurrent = Some(m);
        self
    }

    pub fn total_jobs(&self) -> u32 {
        self.tenants
            .iter()
            .map(|t| match &t.arrival {
                // A trace shorter than `jobs` truncates the stream.
                ArrivalProcess::Trace(ts) => t.jobs.min(ts.len() as u32),
                _ => t.jobs,
            })
            .sum()
    }
}

/// A completed (or aborted) stream job: result, metrics, and the lifecycle
/// instants the SLO rollups are computed from.
#[derive(Clone, Debug)]
pub struct FinishedJob {
    pub id: u32,
    pub tenant: u32,
    pub arrived: SimTime,
    pub admitted: SimTime,
    pub finished: SimTime,
    pub output: JobOutput,
    pub metrics: JobMetrics,
}

impl FinishedJob {
    /// Admission-queue wait: arrival → admission.
    pub fn queue_delay(&self) -> f64 {
        self.admitted.since(self.arrived).as_secs_f64()
    }

    /// End-to-end latency: arrival → completion.
    pub fn latency(&self) -> f64 {
        self.finished.since(self.arrived).as_secs_f64()
    }
}

/// Per-tenant SLO rollup over a finished stream (DESIGN.md §4.14): admission
/// queueing delay and end-to-end job-latency percentiles. Slowdown vs the
/// isolated single-job run is computed by callers that also ran the isolated
/// baseline (see `repro tenants`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantSlo {
    pub tenant: u32,
    pub jobs: u32,
    pub aborted: u32,
    pub mean_queue_delay: f64,
    pub mean_latency: f64,
    pub p50_latency: f64,
    pub p99_latency: f64,
}

impl TenantSlo {
    /// Roll the finished jobs of a stream up into one record per tenant
    /// (tenants with no finished jobs get an all-zero record).
    pub fn compute(jobs: &[FinishedJob], tenants: usize) -> Vec<TenantSlo> {
        let mut out: Vec<TenantSlo> = (0..tenants)
            .map(|t| TenantSlo {
                tenant: t as u32,
                ..TenantSlo::default()
            })
            .collect();
        for t in out.iter_mut() {
            let mine: Vec<&FinishedJob> = jobs.iter().filter(|j| j.tenant == t.tenant).collect();
            t.jobs = mine.len() as u32;
            t.aborted = mine.iter().filter(|j| j.output.aborted).count() as u32;
            if mine.is_empty() {
                continue;
            }
            t.mean_queue_delay =
                mine.iter().map(|j| j.queue_delay()).sum::<f64>() / mine.len() as f64;
            let lats: Vec<f64> = mine.iter().map(|j| j.latency()).collect();
            t.mean_latency = lats.iter().sum::<f64>() / lats.len() as f64;
            // Shared log-bucketed nearest-rank quantiles (DESIGN.md §4.16):
            // within 1/32 relative error of the exact order statistic, which
            // is far inside the run-to-run spread SLO rollups feed into.
            let hist = memres_des::stats::LogHistogram::from_values(&lats);
            t.p50_latency = hist.quantile(0.50);
            t.p99_latency = hist.quantile(0.99);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_exp_gaps_are_deterministic_and_positive() {
        let p = ArrivalProcess::OpenExp { mean_secs: 10.0 };
        for k in 0..64 {
            let a = p.open_gap(7, 0, k).unwrap();
            let b = p.open_gap(7, 0, k).unwrap();
            assert_eq!(a, b, "gap must be a pure function of (seed, tenant, k)");
            assert!(a >= SimDuration::ZERO);
        }
        // Different seeds / tenants decorrelate the streams.
        assert_ne!(p.open_gap(7, 0, 3), p.open_gap(8, 0, 3));
        assert_ne!(p.open_gap(7, 0, 3), p.open_gap(7, 1, 3));
        // The empirical mean lands near the configured one.
        let n = 4096;
        let sum: f64 = (0..n)
            .map(|k| p.open_gap(7, 0, k).unwrap().as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        assert!((5.0..20.0).contains(&mean), "mean {mean} far from 10");
    }

    #[test]
    fn closed_loop_first_arrival_is_immediate_then_thinks() {
        let p = ArrivalProcess::Closed { think_secs: 4.0 };
        assert_eq!(p.open_gap(1, 0, 0), Some(SimDuration::ZERO));
        assert_eq!(p.open_gap(1, 0, 1), None);
        assert_eq!(p.think(), Some(SimDuration::from_secs_f64(4.0)));
    }

    #[test]
    fn trace_offsets_index_and_truncate() {
        let p = ArrivalProcess::Trace(vec![0.0, 2.5]);
        assert_eq!(p.trace_offset(1), Some(SimDuration::from_secs_f64(2.5)));
        assert_eq!(p.trace_offset(2), None);
        assert_eq!(p.open_gap(1, 0, 0), None);
    }

    #[test]
    fn slo_rollup_groups_by_tenant() {
        use crate::metrics::JobMetrics;
        let fj = |tenant: u32, arrived: f64, admitted: f64, finished: f64| FinishedJob {
            id: 0,
            tenant,
            arrived: SimTime::from_secs_f64(arrived),
            admitted: SimTime::from_secs_f64(admitted),
            finished: SimTime::from_secs_f64(finished),
            output: JobOutput {
                count: 0,
                records: None,
                reduced: None,
                aborted: false,
            },
            metrics: JobMetrics::default(),
        };
        let slo = TenantSlo::compute(
            &[
                fj(0, 0.0, 1.0, 5.0),
                fj(0, 2.0, 2.0, 12.0),
                fj(1, 0.0, 0.0, 3.0),
            ],
            2,
        );
        let [t0, t1] = slo.as_slice() else {
            panic!("expected exactly two tenant rollups, got {}", slo.len());
        };
        assert_eq!(t0.jobs, 2);
        assert!((t0.mean_queue_delay - 0.5).abs() < 1e-9);
        // Quantiles come from the shared log-bucketed histogram: nearest
        // rank within 1/16 relative error (bucket width) of exact.
        assert!((t0.p50_latency - 5.0).abs() / 5.0 < 1.0 / 16.0);
        assert!((t0.p99_latency - 10.0).abs() / 10.0 < 1.0 / 16.0);
        assert_eq!(t1.jobs, 1);
        assert!((t1.mean_latency - 3.0).abs() < 1e-9);
    }
}
