//! The simulated world: cluster + substrates + engine state, as one
//! discrete-event [`Model`].
//!
//! Execution model (paper Fig 4a):
//! * A job is a serial chain of stages (see [`crate::dag`]).
//! * A stage reading a dataset/cache runs **computation tasks** placed by the
//!   scheduling policy (FIFO / delay scheduling, optionally wrapped by ELB).
//!   Input I/O is *pipelined* with computation: task time ≈ max(io, compute)
//!   — the §V-A observation that "Spark pipelines computation with data
//!   input, further diminishing any benefit of data locality".
//! * If the stage feeds a shuffle, **ShuffleMapTasks (storing phase)** flush
//!   each producing task's in-memory output to the shuffle store, pinned to
//!   the node that produced it. CAD throttles their dispatch.
//! * The next stage's **fetch tasks (shuffling phase)** move intermediate
//!   data according to the configured [`ShuffleStore`] strategy, then
//!   aggregate and run their own narrow chain.
//!
//! All byte movement is charged to the substrate models: the flow-level
//! fabric, per-node `LocalFs` mounts (RAMDisk and SSD), the Lustre model
//! with its DLM, and the HDFS block map.

// The engine state is a set of dense arenas (stages, tasks, flows, nodes)
// whose indices are minted by this module and never escape it; `arr[id]` is
// the idiom throughout and each out-of-range access would be an engine bug,
// not a recoverable condition. Bounds-checked alternatives at ~190 sites
// would bury the scheduling logic, so the crate-level `indexing_slicing`
// warning is waived for this file only.
#![allow(clippy::indexing_slicing)]

use crate::blockmgr::BlockMgr;
use crate::config::{Defect, EngineConfig, InputSource, SchedulerKind, ShuffleStore, StoreDevice};
use crate::dag::build_plan;
use crate::dag::{JobPlan, ShuffleInSpec, StageInput, StagePlan};
use crate::faults::FaultKind;
use crate::metrics::{MetricsSink, Phase, TaskLocality, TaskMetric};
use crate::rdd::{Action, Dataset, RddId, ShuffleAgg};
use crate::tenancy::{FinishedJob, InterJobPolicy, StreamSpec};
use crate::value::{record_bytes, Record, Value};
use memres_cluster::{ClusterSpec, NodeId, SpeedModel, SpeedSampler};
use memres_des::sim::{EngineStats, Gen, Model, Outbox};
use memres_des::stats::LogHistogram;
use memres_des::time::{SimDuration, SimTime};
use memres_des::{Bytes, DetMap};
use memres_hdfs::{BlockId, Hdfs, HdfsConfig, HdfsFile, Locality};
use memres_lustre::{Lustre, LustreConfig, LustreFile};
use memres_metrics::Recorder;
use memres_net::{inflate_for_requests, Endpoint, Fabric, FlowId, FlowNet, LinkId};
use memres_storage::{CacheConfig, FileId, LocalFs, RamDisk, Ssd, SsdConfig};
use memres_trace::TraceEvent as TE;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// File-id name spaces on the per-node filesystems / Lustre.
const HDFS_BLOCK_BASE: u64 = 1 << 40;
const SHUFFLE_FILE_BASE: u64 = 1 << 41;
const LUSTRE_INPUT_BASE: u64 = 1 << 42;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskKind {
    Compute { part: u32 },
    Store { producer: u32 },
    Fetch { reducer: u32 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Pending,
    Running,
    Done,
}

struct Task {
    /// Owning job id (multi-tenant streams keep several jobs resident).
    job: u32,
    stage: u32,
    kind: TaskKind,
    state: TState,
    node: u32,
    queued_at: SimTime,
    launched_at: SimTime,
    compute_dur: SimDuration,
    /// Pipelined tasks finish at max(io_done, launch+compute); non-pipelined
    /// (fetch) tasks start computing only after all their data lands.
    pipelined: bool,
    pending_io: u32,
    finish_scheduled: bool,
    input_bytes: f64,
    output_bytes: f64,
    records_est: u64,
    records_out: Option<Arc<[Record]>>,
    locality: TaskLocality,
    /// Preferred nodes (HDFS replicas / cache location). Empty = any.
    prefs: Vec<u32>,
    /// Pinned tasks run only on `prefs[0]` (storing phase).
    pinned: bool,
    /// Speculative-execution twin (LATE baseline): the other copy's id.
    twin: Option<u32>,
    /// True for the duplicate copy of a speculated task.
    is_speculative: bool,
    /// Attempt number; bumped on every failure so stale completion events
    /// from an earlier attempt are dropped.
    attempt: u32,
    /// The injected-fault engine marked this attempt to fail at the moment
    /// it would have finished (the whole duration becomes wasted work).
    doomed: Option<u32>,
    /// Recovery ghost: charges compute/IO time for redone work after a node
    /// crash but deposits nothing (the lost rows were already re-hosted).
    ghost: bool,
}

/// SoA task arena (DESIGN.md, scale-out engine): every per-task field lives
/// in its own flat `Vec` indexed by task id. The hot scheduling scans
/// (dispatch, crash handling, stale-completion filtering) each touch one or
/// two fields of many tasks, so at 10⁶ tasks they walk dense homogeneous
/// arrays instead of striding over ~130-byte task structs. [`Task`] survives
/// as the push-site constructor — the arena scatters it on insert — and
/// `Arc<[Record]>` payloads are shared exactly as before.
#[derive(Default)]
struct TaskArena {
    job: Vec<u32>,
    stage: Vec<u32>,
    kind: Vec<TaskKind>,
    state: Vec<TState>,
    node: Vec<u32>,
    queued_at: Vec<SimTime>,
    launched_at: Vec<SimTime>,
    compute_dur: Vec<SimDuration>,
    pipelined: Vec<bool>,
    pending_io: Vec<u32>,
    finish_scheduled: Vec<bool>,
    input_bytes: Vec<f64>,
    output_bytes: Vec<f64>,
    records_est: Vec<u64>,
    records_out: Vec<Option<Arc<[Record]>>>,
    locality: Vec<TaskLocality>,
    prefs: Vec<Vec<u32>>,
    pinned: Vec<bool>,
    twin: Vec<Option<u32>>,
    is_speculative: Vec<bool>,
    attempt: Vec<u32>,
    doomed: Vec<Option<u32>>,
    ghost: Vec<bool>,
    /// Tasks currently in `TState::Pending` — dispatch early-exits on zero.
    pending: usize,
}

impl TaskArena {
    fn len(&self) -> usize {
        self.state.len()
    }

    fn contains(&self, id: u32) -> bool {
        (id as usize) < self.state.len()
    }

    fn push(&mut self, t: Task) {
        debug_assert_eq!(t.state, TState::Pending, "tasks are born pending");
        self.job.push(t.job);
        self.stage.push(t.stage);
        self.kind.push(t.kind);
        self.state.push(t.state);
        self.node.push(t.node);
        self.queued_at.push(t.queued_at);
        self.launched_at.push(t.launched_at);
        self.compute_dur.push(t.compute_dur);
        self.pipelined.push(t.pipelined);
        self.pending_io.push(t.pending_io);
        self.finish_scheduled.push(t.finish_scheduled);
        self.input_bytes.push(t.input_bytes);
        self.output_bytes.push(t.output_bytes);
        self.records_est.push(t.records_est);
        self.records_out.push(t.records_out);
        self.locality.push(t.locality);
        self.prefs.push(t.prefs);
        self.pinned.push(t.pinned);
        self.twin.push(t.twin);
        self.is_speculative.push(t.is_speculative);
        self.attempt.push(t.attempt);
        self.doomed.push(t.doomed);
        self.ghost.push(t.ghost);
        self.pending += 1;
    }

    /// The only state-transition path: keeps the pending count exact.
    fn set_state(&mut self, id: u32, s: TState) {
        let cur = &mut self.state[id as usize];
        self.pending -= (*cur == TState::Pending) as usize;
        self.pending += (s == TState::Pending) as usize;
        *cur = s;
    }

    fn clear(&mut self) {
        self.job.clear();
        self.stage.clear();
        self.kind.clear();
        self.state.clear();
        self.node.clear();
        self.queued_at.clear();
        self.launched_at.clear();
        self.compute_dur.clear();
        self.pipelined.clear();
        self.pending_io.clear();
        self.finish_scheduled.clear();
        self.input_bytes.clear();
        self.output_bytes.clear();
        self.records_est.clear();
        self.records_out.clear();
        self.locality.clear();
        self.prefs.clear();
        self.pinned.clear();
        self.twin.clear();
        self.is_speculative.clear();
        self.attempt.clear();
        self.doomed.clear();
        self.ghost.clear();
        self.pending = 0;
    }

    /// Heap charged to the arena's flat arrays (self-profiling).
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.job.capacity() * size_of::<u32>()
            + self.stage.capacity() * size_of::<u32>()
            + self.kind.capacity() * size_of::<TaskKind>()
            + self.state.capacity() * size_of::<TState>()
            + self.node.capacity() * size_of::<u32>()
            + self.queued_at.capacity() * size_of::<SimTime>()
            + self.launched_at.capacity() * size_of::<SimTime>()
            + self.compute_dur.capacity() * size_of::<SimDuration>()
            + self.pipelined.capacity()
            + self.pending_io.capacity() * size_of::<u32>()
            + self.finish_scheduled.capacity()
            + self.input_bytes.capacity() * size_of::<f64>()
            + self.output_bytes.capacity() * size_of::<f64>()
            + self.records_est.capacity() * size_of::<u64>()
            + self.records_out.capacity() * size_of::<Option<Arc<[Record]>>>()
            + self.locality.capacity() * size_of::<TaskLocality>()
            + self.prefs.capacity() * size_of::<Vec<u32>>()
            + self
                .prefs
                .iter()
                .map(|p| p.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self.pinned.capacity()
            + self.twin.capacity() * size_of::<Option<u32>>()
            + self.is_speculative.capacity()
            + self.attempt.capacity() * size_of::<u32>()
            + self.doomed.capacity() * size_of::<Option<u32>>()
            + self.ghost.capacity()
    }
}

/// Network transfer tags.
#[derive(Clone, Copy, Debug)]
pub enum NetTag {
    /// Transfer that counts toward a task's outstanding I/O. `attempt` and
    /// `job` let completions of failed attempts / finished jobs drain as
    /// no-ops instead of corrupting a relaunched task.
    TaskIo { task: u32, attempt: u32, job: u32 },
    /// Lustre-shared revocation flush chunk.
    Flush,
}

/// Events of the simulated world.
#[derive(Debug)]
pub enum Ev {
    NetWake(Gen),
    FsWake {
        node: u32,
        ssd: bool,
        gen: Gen,
    },
    LustreWake(Gen),
    TaskFinish {
        task: u32,
        attempt: u32,
        job: u32,
    },
    Dispatch,
    DispatchNode {
        node: u32,
    },
    SpeedResample,
    /// Re-enqueue a failed task after its retry backoff.
    Requeue {
        task: u32,
        job: u32,
    },
    /// Apply `cfg.faults.events[idx]`.
    Fault {
        idx: usize,
    },
    /// A transiently-crashed node comes back (empty memory, disk intact).
    NodeRestart {
        node: u32,
    },
    /// Stream mode: tenant `tenant`'s `k`-th job arrives.
    JobArrival {
        tenant: u32,
        k: u32,
    },
    /// Lustre-shared OSS read start, one revocation round trip after the
    /// task became transfer-eligible. Deferred via an event so the flow
    /// network is only ever mutated at the current sim time — opening the
    /// flow eagerly at `now + revoke_latency` would run its clock ahead of
    /// any other resident job's traffic in that window.
    LustreSharedRead {
        task: u32,
        attempt: u32,
        job: u32,
    },
    /// Periodic metrics sampler tick (DESIGN.md §4.16). Armed once at the
    /// first submission when `cfg.metrics` is set; each firing snapshots
    /// every layer's gauges into the recorder and chains the next tick.
    MetricsSample,
}

/// Deposited intermediate bytes, logically `[node][reducer]`. The dense
/// matrix is exact and is used whenever real records flow or the matrix is
/// small (paper cells: at most 2^20 entries, always dense, bit-identical to
/// the historical `Vec<Vec<f64>>`). Huge synthetic shuffles switch to the
/// uniform variant: hash partitioning spreads each producer's output evenly
/// across reducers, so a per-node total loses nothing while cutting
/// O(workers x reducers) heap to O(workers).
enum ShuffleBuckets {
    Dense {
        reducers: u32,
        m: Vec<Vec<f64>>,
    },
    Uniform {
        reducers: u32,
        node_totals: Vec<f64>,
    },
}

impl ShuffleBuckets {
    /// Largest node x reducer product that still gets the dense matrix.
    const DENSE_LIMIT: usize = 1 << 20;

    fn new(workers: usize, reducers: u32, real: bool) -> Self {
        if real || workers.saturating_mul(reducers as usize) <= Self::DENSE_LIMIT {
            ShuffleBuckets::Dense {
                reducers,
                m: vec![vec![0.0; reducers as usize]; workers],
            }
        } else {
            ShuffleBuckets::Uniform {
                reducers,
                node_totals: vec![0.0; workers],
            }
        }
    }

    fn get(&self, node: usize, reducer: usize) -> f64 {
        match self {
            ShuffleBuckets::Dense { m, .. } => m[node][reducer],
            ShuffleBuckets::Uniform {
                reducers,
                node_totals,
            } => node_totals[node] / *reducers as f64,
        }
    }

    /// Targeted deposit. Real-record hashing only happens in the dense arm
    /// (the constructor forces dense when `real`); the uniform arm folds the
    /// bytes into the node total, preserving conservation.
    fn add(&mut self, node: usize, reducer: usize, bytes: f64) {
        match self {
            ShuffleBuckets::Dense { m, .. } => m[node][reducer] += bytes,
            ShuffleBuckets::Uniform { node_totals, .. } => node_totals[node] += bytes,
        }
    }

    /// Deposit `total` bytes spread evenly over every reducer (synthetic
    /// producers model hash partitioning as a perfectly even split).
    fn add_uniform(&mut self, node: usize, total: f64) {
        match self {
            ShuffleBuckets::Dense { reducers, m } => {
                let per = total / *reducers as f64;
                for b in m[node].iter_mut() {
                    *b += per;
                }
            }
            ShuffleBuckets::Uniform { node_totals, .. } => node_totals[node] += total,
        }
    }

    /// Recovery re-hosting: move every deposited byte of `dead` onto `repl`.
    fn move_node(&mut self, dead: usize, repl: usize) {
        match self {
            ShuffleBuckets::Dense { reducers, m } => {
                let row = std::mem::replace(&mut m[dead], vec![0.0; *reducers as usize]);
                for (b, bytes) in row.into_iter().enumerate() {
                    m[repl][b] += bytes;
                }
            }
            ShuffleBuckets::Uniform { node_totals, .. } => {
                let moved = std::mem::take(&mut node_totals[dead]);
                node_totals[repl] += moved;
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ShuffleBuckets::Dense { m, .. } => {
                m.iter().map(|r| r.capacity() * 8).sum::<usize>()
                    + m.capacity() * std::mem::size_of::<Vec<f64>>()
            }
            ShuffleBuckets::Uniform { node_totals, .. } => node_totals.capacity() * 8,
        }
    }
}

/// Intermediate-data state between a producing stage and its fetch stage.
struct ShuffleState {
    reducers: u32,
    spec: ShuffleInSpec,
    /// [node][reducer] → intermediate bytes deposited.
    buckets: ShuffleBuckets,
    /// Fetches ride rack-pair aggregate flows instead of per-node flows
    /// (decided once at creation from `EngineConfig::rack_agg_threshold`).
    aggregated: bool,
    /// Materialized buckets (real-data jobs): node → reducer → records.
    node_real: Option<Vec<Vec<Vec<Record>>>>,
    /// Per-node aggregated store file ids.
    local_files: Vec<Option<FileId>>,
    lustre_files: Vec<Option<LustreFile>>,
    /// Cached fraction per source node file at fetch start (Lustre-local).
    cached_frac: Vec<f64>,
    /// Lustre-shared: outstanding revocation flushes gating all fetches.
    flush_pending: usize,
    flush_done: bool,
    /// Fetch tasks whose MDS op finished while flushes were outstanding.
    waiting_for_flush: Vec<u32>,
    /// (src,dst,kind 0=store/cached,1=oss-path) → persistent fetch flow.
    fetch_flows: DetMap<(u32, u32, u8), FlowId>,
}

impl ShuffleState {
    fn new(
        reducers: u32,
        spec: ShuffleInSpec,
        workers: usize,
        real: bool,
        aggregated: bool,
    ) -> Self {
        ShuffleState {
            reducers,
            spec,
            buckets: ShuffleBuckets::new(workers, reducers, real),
            aggregated,
            node_real: real.then(|| vec![vec![Vec::new(); reducers as usize]; workers]),
            local_files: vec![None; workers],
            lustre_files: vec![None; workers],
            cached_frac: vec![0.0; workers],
            flush_pending: 0,
            flush_done: false,
            waiting_for_flush: Vec::new(),
            fetch_flows: DetMap::new(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunPhase {
    Stage(usize),
    Storing(usize),
}

struct JobRun {
    /// Job id (minted from `job_seq` at arrival/submission).
    id: u32,
    /// Owning tenant (0 for single-job runs).
    tenant: u32,
    arrived: SimTime,
    admitted: SimTime,
    plan: Arc<JobPlan>,
    phase: RunPhase,
    remaining: usize,
    /// Tasks of the currently running stage (the storing phase flushes their
    /// outputs).
    stage_tasks: Vec<u32>,
    /// Shuffle feeding the current fetch stage.
    shuffle_in: Option<ShuffleState>,
    /// Shuffle being produced by the current stage.
    shuffle_out: Option<ShuffleState>,
    final_tasks: Vec<u32>,
    /// Delay scheduling state: instant of this job's last locality-preferred
    /// launch. Per-job so one tenant's local progress never suppresses (or
    /// unlocks) another tenant's steal decisions.
    last_local_launch: SimTime,
    /// Completed compute-task durations of this job's current stage
    /// (speculation baseline's straggler threshold).
    stage_durs: Vec<f64>,
    /// Per-node intermediate bytes deposited by this job (ELB signal).
    intermediate: Vec<f64>,
    // Per-job pending-task queues: the inter-job scheduler picks which job a
    // free slot serves; these serve the intra-job pick exactly as before.
    prefs_q: Vec<VecDeque<u32>>,
    no_pref_q: VecDeque<u32>,
    waiting_q: VecDeque<u32>,
}

/// One arrived-but-not-yet-admitted job in a multi-tenant stream.
struct PendingAdmission {
    id: u32,
    tenant: u32,
    k: u32,
    arrived: SimTime,
}

/// Multi-tenant stream bookkeeping (DESIGN.md §4.14).
struct StreamState {
    spec: StreamSpec,
    /// Arrivals scheduled (or chained, for closed-loop) but not yet fired.
    outstanding_arrivals: usize,
    /// Arrived jobs waiting for an admission slot, FIFO.
    queued: VecDeque<PendingAdmission>,
    /// Per-tenant count of arrivals scheduled so far (closed-loop tenants
    /// chain the next one at job departure).
    fired: Vec<u32>,
}

struct PlacedPart {
    bytes: f64,
    records: u64,
    /// Shared view of the source partition's records — placing a dataset and
    /// launching tasks over it never copies record data.
    data: Option<Arc<[Record]>>,
    hdfs_block: Option<BlockId>,
    lustre: Option<LustreFile>,
}

/// A real-partition UDF chain captured at task launch and evaluated off the
/// critical path (possibly on a worker pool — see
/// [`SimWorld::flush_pending_chains`]). Everything needed by
/// [`run_narrow_chain`] is either `Copy` or a shared `Arc`, so evaluation is
/// a pure function of this struct.
struct PendingChain {
    task: u32,
    /// The owning job's plan, captured at launch — chain evaluation happens
    /// on worker threads where `SimWorld` cannot be borrowed.
    plan: Arc<JobPlan>,
    stage: usize,
    part: u32,
    node: u32,
    in_bytes: f64,
    in_records: u64,
    data: Option<Arc<[Record]>>,
    speed: f64,
    /// Lineage recovery: evaluate this synthesized source→stage chain
    /// instead of `plan.stages[stage]` (see `launch_recovered_compute`).
    stage_override: Option<Arc<StagePlan>>,
}

/// What [`run_narrow_chain`] produces: (compute seconds, output bytes,
/// output records, real output, cache snapshots).
type ChainOut = (
    SimDuration,
    f64,
    u64,
    Option<Arc<[Record]>>,
    Vec<(RddId, f64, u64, Option<Arc<[Record]>>)>,
);

/// Completed-job result.
#[derive(Clone, Debug)]
pub struct JobOutput {
    pub count: u64,
    pub records: Option<Vec<Record>>,
    pub reduced: Option<Value>,
    /// True when the job was aborted after a task exhausted its attempt
    /// limit (or no live node remained); the other fields are empty.
    pub aborted: bool,
}

pub struct SimWorld {
    pub spec: ClusterSpec,
    pub cfg: EngineConfig,
    pub net: FlowNet<NetTag>,
    pub fabric: Fabric,
    store_read_links: Vec<LinkId>,
    /// Per-node RAMDisk mount (HDFS blocks + RAMDisk shuffle store).
    ram_fs: Vec<LocalFs>,
    /// Per-node SSD mount (SSD shuffle store).
    ssd_fs: Vec<LocalFs>,
    pub lustre: Lustre,
    pub hdfs: Hdfs,
    speeds: SpeedSampler,
    pub metrics: MetricsSink,

    tasks: TaskArena,
    /// Concurrently resident jobs, in admission order.
    jobs: Vec<JobRun>,
    job_seq: u32,
    pub job_done: bool,
    last_output: Option<JobOutput>,
    /// Multi-tenant stream state (`None` for single-job submissions).
    stream: Option<StreamState>,
    /// Completed/aborted jobs awaiting collection by the driver.
    finished: VecDeque<FinishedJob>,

    // Scheduling state.
    free_slots: Vec<u32>,
    /// Nodes currently able to accept a launch (up, not blacklisted, at
    /// least one free slot). Kept in sync by `note_slot_change`; `dispatch`
    /// walks this set instead of scanning every worker — the win that makes
    /// 10k-node cells tractable. A `BTreeSet` keeps rotation order
    /// deterministic.
    avail: BTreeSet<u32>,
    /// Per-node "blocked this pass" stamp; a node is blocked when its entry
    /// equals `dispatch_round`. Replaces a fresh `vec![false; workers]`
    /// allocation per dispatch phase.
    blocked_stamp: Vec<u64>,
    dispatch_round: u64,
    rotate: u32,
    /// True when the last dispatch pass found pending tasks but zero
    /// available nodes and no delay-retry wake scheduled; the next
    /// slot-freeing or node-recovery event must re-issue `Dispatch` or the
    /// job wedges (DESIGN.md §4.14 bugfix).
    dispatch_starved: bool,
    // CAD state.
    cad_interval: SimDuration,
    cad_allowed: Vec<SimTime>,
    /// Dedup guard: the DispatchNode wake already scheduled per node.
    cad_wake_at: Vec<SimTime>,
    cad_ref_avg: Option<f64>,
    cad_window: VecDeque<f64>,
    /// Dataset placements by source RDD id.
    placed: DetMap<RddId, Vec<PlacedPart>>,
    hdfs_files: DetMap<RddId, HdfsFile>,
    pub blockmgr: BlockMgr,
    next_shuffle_file: u64,
    /// Real-partition chains launched this dispatch round, evaluated (maybe
    /// in parallel) and committed in launch order at the end of the round.
    pending_chains: Vec<PendingChain>,
    /// Resolved host worker-thread count for chain evaluation.
    executor_threads: usize,

    // Fault & recovery state (DESIGN.md §4.9).
    /// Per-node liveness; crashed nodes get no dispatch and release no slots.
    node_up: Vec<bool>,
    /// Nodes excluded from scheduling after repeated task failures.
    blacklisted: Vec<bool>,
    /// Task-attributed failures per node (drives blacklisting).
    node_fail_counts: Vec<u32>,
    /// Global task-launch counter (the `TaskFail { nth_launch }` clock).
    launch_count: u64,
    /// Sorted launch ordinals doomed to fail (from the fault plan).
    doomed_launches: Vec<u64>,
    /// The fault plan is armed once, at the first job submission.
    faults_armed: bool,

    /// Structured event log (DESIGN.md §4.11). `None` when tracing is off,
    /// so every emission site costs one `Option` test and nothing else.
    tracer: Option<memres_trace::SharedSink>,

    // Time-series metrics plane (DESIGN.md §4.16).
    /// Sample accumulator; `None` when `cfg.metrics` is off, so the sampler
    /// event is never scheduled and gauge collection costs nothing.
    recorder: Option<Recorder>,
    /// The sampler chain is armed once, at the first submission (mirrors
    /// `faults_armed`); the leftover chained event survives back-to-back
    /// jobs on one world, and this guard prevents duplicate chains.
    metrics_armed: bool,
    /// Latest engine self-stats snapshot (pushed by `observe_engine`).
    engine_stats: EngineStats,
    /// Engine step count at the previous sample (events-per-sample delta).
    last_sample_steps: u64,
    /// Per-tenant cumulative finished-job latency, grown on demand (the
    /// `tenant_slo_burn_secs` base; resident/queued job ages are added at
    /// sample time).
    tenant_latency_acc: Vec<f64>,
}

/// Worker threads for real-partition execution: explicit config wins, then
/// `MEMRES_THREADS`, then the host's available parallelism.
fn resolve_executor_threads(cfg: &EngineConfig) -> usize {
    cfg.executor_threads
        .or_else(|| parse_threads(std::env::var("MEMRES_THREADS").ok().as_deref()))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

impl SimWorld {
    pub fn new(spec: ClusterSpec, cfg: EngineConfig) -> Self {
        spec.validate().expect("invalid cluster spec"); // lint:allow(panic): construction-time config validation; fails fast before any simulation starts
        let mut net = FlowNet::new();
        let fabric = Fabric::build(&mut net, &spec);
        let workers = spec.workers as usize;
        // Effective HDFS DataNode read throughput per node (tmpfs bandwidth
        // discounted by protocol/checksum/deserialization costs).
        let ram_read = 3.0e9;
        let store_read_links = (0..workers).map(|_| net.add_link(ram_read)).collect();
        let ram_fs = (0..workers)
            .map(|_| {
                LocalFs::new(
                    Box::new(RamDisk::new(ram_read, 4.0e9)),
                    // RAMDisk capacity plus headroom for preloaded inputs.
                    spec.ramdisk_capacity + 256.0e9,
                    None,
                )
            })
            .collect();
        let ssd_fs = (0..workers)
            .map(|_| {
                LocalFs::new(
                    Box::new(Ssd::new(SsdConfig::hyperion())),
                    spec.ssd_capacity,
                    // ~6 GB of page cache effectively absorbs shuffle writes:
                    // this is the paper's Fig 8a crossover (100 nodes x 6 GB
                    // = 600 GB of aggregate intermediate data ride the cache).
                    Some(CacheConfig {
                        capacity: 6.0 * 1024.0 * 1024.0 * 1024.0,
                        ..CacheConfig::hyperion()
                    }),
                )
            })
            .collect();
        let lustre = Lustre::new(LustreConfig {
            mds_ops_per_sec: spec.mds_ops_per_sec,
            oss_count: spec.lustre_oss_count,
            ..LustreConfig::hyperion()
        });
        let hdfs = Hdfs::new(
            HdfsConfig {
                replication: cfg.input_replication.max(1),
                ..HdfsConfig::default()
            },
            spec.clone(),
            spec.ramdisk_capacity + 256.0e9,
            cfg.seed,
        );
        let speed_model = if cfg.speed_sigma > 0.0 {
            SpeedModel::Fluctuating {
                sigma: cfg.speed_sigma,
                period_secs: cfg.speed_resample.as_secs_f64(),
            }
        } else {
            SpeedModel::Homogeneous
        };
        let speeds = SpeedSampler::new(speed_model, spec.workers, cfg.seed);
        let tracer = cfg.trace.enabled().then(|| memres_trace::shared(cfg.trace));
        let recorder = cfg.metrics.map(Recorder::new);
        let mut w = SimWorld {
            free_slots: vec![spec.cores_per_node; workers],
            avail: (0..workers as u32).collect(),
            blocked_stamp: vec![0; workers],
            dispatch_round: 0,
            rotate: 0,
            dispatch_starved: false,
            cad_interval: SimDuration::ZERO,
            cad_allowed: vec![SimTime::ZERO; workers],
            cad_wake_at: vec![SimTime::ZERO; workers],
            cad_ref_avg: None,
            cad_window: VecDeque::new(),
            placed: DetMap::new(),
            hdfs_files: DetMap::new(),
            blockmgr: BlockMgr::default(),
            next_shuffle_file: SHUFFLE_FILE_BASE,
            pending_chains: Vec::new(),
            executor_threads: resolve_executor_threads(&cfg),
            node_up: vec![true; workers],
            blacklisted: vec![false; workers],
            node_fail_counts: vec![0; workers],
            launch_count: 0,
            doomed_launches: Vec::new(),
            faults_armed: false,
            tracer,
            recorder,
            metrics_armed: false,
            engine_stats: EngineStats::default(),
            last_sample_steps: 0,
            tenant_latency_acc: Vec::new(),
            spec,
            cfg,
            net,
            fabric,
            store_read_links,
            ram_fs,
            ssd_fs,
            lustre,
            hdfs,
            speeds,
            metrics: MetricsSink::default(),
            tasks: TaskArena::default(),
            jobs: Vec::new(),
            job_seq: 0,
            job_done: false,
            last_output: None,
            stream: None,
            finished: VecDeque::new(),
        };
        if let Some(t) = &w.tracer {
            w.net.set_tracer(t.clone());
            w.lustre.set_tracer(t.clone());
            for (n, fs) in w.ssd_fs.iter_mut().enumerate() {
                fs.set_tracer(n as u32, t.clone());
            }
        }
        w
    }

    // ---------------- tracing ----------------

    /// Emit one trace event; a single `Option` test when tracing is off.
    #[inline]
    fn trace(&self, at: SimTime, ev: memres_trace::TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().emit(at, ev);
        }
    }

    fn trace_class(kind: TaskKind) -> memres_trace::TaskClass {
        match kind {
            TaskKind::Compute { .. } => memres_trace::TaskClass::Compute,
            TaskKind::Store { .. } => memres_trace::TaskClass::Store,
            TaskKind::Fetch { .. } => memres_trace::TaskClass::Fetch,
        }
    }

    /// Drain the recorded trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<memres_trace::TimedEvent> {
        self.tracer
            .as_ref()
            .map(|t| t.borrow_mut().take())
            .unwrap_or_default()
    }

    /// Number of trace events currently held (0 when off).
    pub fn trace_len(&self) -> usize {
        self.tracer.as_ref().map(|t| t.borrow().len()).unwrap_or(0)
    }

    /// Rough engine heap footprint: the dense arenas that grow with the job
    /// (tasks, trace log, shuffle bucket matrices). Self-profiling only —
    /// not a substitute for a real allocator hook.
    pub fn heap_estimate_bytes(&self) -> u64 {
        let tasks = self.tasks.heap_bytes();
        let trace = self
            .tracer
            .as_ref()
            .map(|t| t.borrow().len() * std::mem::size_of::<memres_trace::TimedEvent>())
            .unwrap_or(0);
        let shuffle: usize = self
            .jobs
            .iter()
            .filter_map(|j| j.shuffle_out.as_ref().or(j.shuffle_in.as_ref()))
            .map(|s| s.buckets.heap_bytes())
            .sum();
        (tasks + trace + shuffle) as u64
    }

    pub fn take_output(&mut self) -> Option<JobOutput> {
        self.last_output.take()
    }

    /// Pop the oldest completed job (stream mode collects these as they
    /// finish; single-job runs stash exactly one).
    pub fn take_finished(&mut self) -> Option<FinishedJob> {
        self.finished.pop_front()
    }

    /// Drain every completed job collected so far, in completion order.
    pub fn drain_finished(&mut self) -> Vec<FinishedJob> {
        self.finished.drain(..).collect()
    }

    /// Number of jobs currently resident (admitted, not finished).
    pub fn resident_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Cheap cross-checks of live engine state against independent
    /// reimplementations, for the differential-fuzz harness (DESIGN.md
    /// §4.13). Currently: the incremental water-filling allocation vs a
    /// from-scratch progressive-filling pass over the same active flows.
    pub fn audit_invariants(&mut self) -> Result<(), String> {
        self.net.audit_waterfill()
    }

    /// Final CAD dispatch interval (diagnostics).
    pub fn cad_interval_secs(&self) -> f64 {
        self.cad_interval.as_secs_f64()
    }

    fn speed(&self, node: u32) -> f64 {
        self.speeds.factor(NodeId(node))
    }

    /// Deterministic per-task compute jitter in [1-j, 1+j].
    fn jitter(&self, task: u32) -> f64 {
        let j = self.cfg.task_jitter;
        if j <= 0.0 {
            return 1.0;
        }
        let h = (task as u64 ^ self.cfg.seed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x165_667b1)
            .wrapping_mul(0xd6e8_feb8_6659_fd93);
        let u = ((h >> 11) as f64) / ((1u64 << 53) as f64); // [0,1)
        1.0 - j + 2.0 * j * u
    }

    /// Resident-set index of the job owning `task`. Completions are
    /// stale-filtered (`completion_is_stale`) before dereferencing, so a
    /// live event implies the owning job is resident.
    fn job_index_of(&self, task: u32) -> usize {
        let id = self.tasks.job[task as usize];
        self.jobs
            .iter()
            .position(|j| j.id == id)
            .expect("task of non-resident job") // lint:allow(panic): stale-filtered above
    }

    fn job_of(&self, task: u32) -> &JobRun {
        &self.jobs[self.job_index_of(task)]
    }

    fn job_of_mut(&mut self, task: u32) -> &mut JobRun {
        let ji = self.job_index_of(task);
        &mut self.jobs[ji]
    }

    fn plan_of(&self, task: u32) -> Arc<JobPlan> {
        self.job_of(task).plan.clone()
    }

    // ---------------- wake plumbing ----------------

    fn arm_net(&mut self, out: &mut Outbox<Ev>) {
        if let Some(t) = self.net.next_event() {
            // lint:allow(event-past): FlowNet::next_event returns completions at/after the subsystem clock, which trails now
            out.at(t, Ev::NetWake(self.net.gen()));
        }
    }

    fn arm_fs(&self, node: u32, ssd: bool, out: &mut Outbox<Ev>) {
        let fs = if ssd {
            &self.ssd_fs[node as usize]
        } else {
            &self.ram_fs[node as usize]
        };
        if let Some(t) = fs.next_event() {
            // lint:allow(event-past): LocalFs::next_event returns device completions at/after the subsystem clock, which trails now
            out.at(
                t,
                Ev::FsWake {
                    node,
                    ssd,
                    gen: fs.gen(),
                },
            );
        }
    }

    fn arm_lustre(&self, out: &mut Outbox<Ev>) {
        if let Some(t) = self.lustre.next_event() {
            // lint:allow(event-past): Lustre::next_event returns MDS/OSS completions at/after the subsystem clock, which trails now
            out.at(t, Ev::LustreWake(self.lustre.gen()));
        }
    }

    // ---------------- completion-identity tags ----------------

    /// Pack (task, attempt, job) into an opaque device/Lustre tag. 16 bits
    /// each for attempt and job: enough to tell any live completion from a
    /// stale one (a tag only collides after 65536 wrapped attempts *while*
    /// the original request is still in flight, which cannot happen).
    fn io_tag(&self, task: u32) -> u64 {
        task as u64
            | ((self.tasks.attempt[task as usize] as u64 & 0xffff) << 32)
            | ((self.tasks.job[task as usize] as u64 & 0xffff) << 48)
    }

    fn unpack_io_tag(tag: u64) -> (u32, u32, u32) {
        (
            tag as u32,
            ((tag >> 32) & 0xffff) as u32,
            ((tag >> 48) & 0xffff) as u32,
        )
    }

    /// The network-side equivalent of [`SimWorld::io_tag`].
    fn net_tag(&self, task: u32) -> NetTag {
        NetTag::TaskIo {
            task,
            attempt: self.tasks.attempt[task as usize],
            job: self.tasks.job[task as usize],
        }
    }

    // ---------------- job lifecycle ----------------

    /// Begin executing a plan. Drive the simulation until `job_done`.
    pub fn submit_job(&mut self, now: SimTime, plan: JobPlan, out: &mut Outbox<Ev>) {
        assert!(self.jobs.is_empty(), "one job at a time (stages serialize)");
        self.job_seq += 1;
        let id = self.job_seq;
        self.admit_job(now, id, 0, now, Arc::new(plan), out);
    }

    /// Install a job into the resident set and start its first stage.
    /// Single-job submissions and stream admissions share this path.
    fn admit_job(
        &mut self,
        now: SimTime,
        id: u32,
        tenant: u32,
        arrived: SimTime,
        plan: Arc<JobPlan>,
        out: &mut Outbox<Ev>,
    ) {
        self.arm_faults(now, out);
        self.arm_metrics(out);
        self.job_done = false;
        self.metrics.begin_job(id, now);
        self.trace(now, TE::JobStart { job: id });
        if self.jobs.is_empty() {
            // CAD's congestion estimate is a cluster-wide signal; reset it
            // only when the cluster goes from idle to busy, not when a job
            // joins an already-loaded resident set.
            self.cad_interval = SimDuration::ZERO;
            self.cad_allowed.iter_mut().for_each(|t| *t = SimTime::ZERO);
            self.cad_ref_avg = None;
            self.cad_window.clear();
        }
        let workers = self.spec.workers as usize;
        self.jobs.push(JobRun {
            id,
            tenant,
            arrived,
            admitted: now,
            plan,
            phase: RunPhase::Stage(0),
            remaining: 0,
            stage_tasks: Vec::new(),
            shuffle_in: None,
            shuffle_out: None,
            final_tasks: Vec::new(),
            last_local_launch: now,
            stage_durs: Vec::new(),
            intermediate: vec![0.0; workers],
            prefs_q: (0..workers).map(|_| VecDeque::new()).collect(),
            no_pref_q: VecDeque::new(),
            waiting_q: VecDeque::new(),
        });
        let ji = self.jobs.len() - 1;
        self.start_stage(now, ji, 0, out);
    }

    // ---------------- multi-tenant streams (DESIGN.md §4.14) ----------------

    /// Begin a multi-tenant job stream. Open-loop and trace arrivals are
    /// scheduled upfront (cumulative gaps from `now`); closed-loop tenants
    /// fire their first arrival immediately and chain the next one `think`
    /// after each job departs. Admission is FIFO under `max_concurrent`;
    /// the configured [`InterJobPolicy`] orders *dispatch*, not admission.
    pub fn start_stream(&mut self, now: SimTime, spec: StreamSpec, out: &mut Outbox<Ev>) {
        assert!(
            self.jobs.is_empty() && self.stream.is_none(),
            "a stream starts on an idle world"
        );
        let mut outstanding = 0usize;
        let mut fired = vec![0u32; spec.tenants.len()];
        for (t, ts) in spec.tenants.iter().enumerate() {
            let tenant = t as u32;
            match &ts.arrival {
                crate::tenancy::ArrivalProcess::Trace(offsets) => {
                    let n = (ts.jobs as usize).min(offsets.len());
                    for k in 0..n {
                        let off = ts
                            .arrival
                            .trace_offset(k as u32)
                            .expect("trace offset in range"); // lint:allow(panic): k < trace length by construction
                        out.at(
                            now + off,
                            Ev::JobArrival {
                                tenant,
                                k: k as u32,
                            },
                        );
                    }
                    fired[t] = n as u32;
                    outstanding += n;
                }
                crate::tenancy::ArrivalProcess::Closed { .. } => {
                    if ts.jobs > 0 {
                        out.at(now, Ev::JobArrival { tenant, k: 0 });
                        fired[t] = 1;
                        outstanding += 1;
                    }
                }
                _ => {
                    let mut at = now;
                    for k in 0..ts.jobs {
                        let gap = ts
                            .arrival
                            .open_gap(spec.seed, tenant, k)
                            .expect("open-loop arrival gap"); // lint:allow(panic): open-loop arms always yield a gap
                        at += gap;
                        out.at(at, Ev::JobArrival { tenant, k });
                    }
                    fired[t] = ts.jobs;
                    outstanding += ts.jobs as usize;
                }
            }
        }
        self.job_done = outstanding == 0;
        if outstanding > 0 {
            // Sample across the whole stream, including pre-admission gaps.
            self.arm_metrics(out);
        }
        self.stream = Some(StreamState {
            spec,
            outstanding_arrivals: outstanding,
            queued: VecDeque::new(),
            fired,
        });
    }

    fn on_job_arrival(&mut self, now: SimTime, tenant: u32, k: u32, out: &mut Outbox<Ev>) {
        if self.stream.is_none() {
            return; // stale arrival after the stream was torn down
        }
        self.job_seq += 1;
        let id = self.job_seq;
        self.trace(now, TE::JobArrived { job: id, tenant });
        let stream = self.stream.as_mut().expect("stream checked above"); // lint:allow(panic): guarded at function entry
        stream.outstanding_arrivals = stream.outstanding_arrivals.saturating_sub(1);
        stream.queued.push_back(PendingAdmission {
            id,
            tenant,
            k,
            arrived: now,
        });
        self.try_admissions(now, out);
    }

    /// Admit queued jobs FIFO while under the concurrency cap. The job's
    /// plan is built at admission time so cached RDDs materialized by
    /// earlier jobs are visible, exactly as sequential submission sees them.
    fn try_admissions(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        loop {
            let Some(stream) = self.stream.as_ref() else {
                return;
            };
            let cap = stream.spec.max_concurrent.unwrap_or(usize::MAX);
            if self.jobs.len() >= cap || stream.queued.is_empty() {
                return;
            }
            let pa = self
                .stream
                .as_mut()
                .and_then(|s| s.queued.pop_front())
                .expect("non-empty admit queue"); // lint:allow(panic): emptiness checked above
            self.trace(
                now,
                TE::JobAdmitted {
                    job: pa.id,
                    tenant: pa.tenant,
                },
            );
            let make = self
                .stream
                .as_ref()
                .map(|s| s.spec.tenants[pa.tenant as usize].make.clone())
                .expect("stream present"); // lint:allow(panic): guarded at loop entry
            let (rdd, action) = make(pa.k);
            let plan = build_plan(&rdd, action, &self.blockmgr.materialized());
            self.admit_job(now, pa.id, pa.tenant, pa.arrived, Arc::new(plan), out);
        }
    }

    /// Stream bookkeeping when a job finishes or aborts: chain the owning
    /// tenant's next closed-loop arrival and pull in queued admissions.
    fn on_job_departure(&mut self, now: SimTime, tenant: u32, out: &mut Outbox<Ev>) {
        if let Some(stream) = self.stream.as_mut() {
            let ts = &stream.spec.tenants[tenant as usize];
            if let Some(think) = ts.arrival.think() {
                let k = stream.fired[tenant as usize];
                if k < ts.jobs {
                    stream.fired[tenant as usize] += 1;
                    stream.outstanding_arrivals += 1;
                    out.at(now + think, Ev::JobArrival { tenant, k });
                }
            }
        }
        self.try_admissions(now, out);
    }

    /// True when no further jobs can arrive or be admitted.
    fn stream_drained(&self) -> bool {
        self.stream
            .as_ref()
            .is_none_or(|s| s.outstanding_arrivals == 0 && s.queued.is_empty())
    }

    /// Schedule every fault of the configured plan, once, relative to the
    /// first job submission. `TaskFail` faults become doomed launch ordinals
    /// consumed by [`SimWorld::launch`]; everything else fires as an event.
    fn arm_faults(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        if self.faults_armed {
            return;
        }
        self.faults_armed = true;
        let Some(plan) = self.cfg.faults.clone() else {
            return;
        };
        for (idx, ev) in plan.events.iter().enumerate() {
            match ev.kind {
                FaultKind::TaskFail { nth_launch } => self.doomed_launches.push(nth_launch),
                _ => out.at(now + ev.after, Ev::Fault { idx }),
            }
        }
        self.doomed_launches.sort_unstable();
    }

    // ---------------- time-series metrics plane (DESIGN.md §4.16) ----------------

    /// Start the periodic sampler chain, once. The first sample fires
    /// immediately (t = submission time); each handler firing chains the
    /// next tick. The chain is never torn down — the driver stops stepping
    /// at `job_done`, so a leftover tick is harmless, and on back-to-back
    /// submissions the surviving chain keeps sampling (this guard prevents
    /// a duplicate chain from doubling the sample rate).
    fn arm_metrics(&mut self, out: &mut Outbox<Ev>) {
        if self.metrics_armed || self.recorder.is_none() {
            return;
        }
        self.metrics_armed = true;
        out.immediately(Ev::MetricsSample);
    }

    /// Fold one finished (or aborted) job's latency into its tenant's
    /// cumulative burn gauge.
    fn note_job_latency(&mut self, tenant: u32, arrived: SimTime, now: SimTime) {
        if self.recorder.is_none() {
            return;
        }
        let t = tenant as usize;
        if self.tenant_latency_acc.len() <= t {
            self.tenant_latency_acc.resize(t + 1, 0.0);
        }
        self.tenant_latency_acc[t] += now.since(arrived).as_secs_f64();
    }

    /// Snapshot every layer's gauges into the recorder. Called only from the
    /// `MetricsSample` event, so all reads happen at a deterministic sim
    /// time regardless of executor thread count.
    fn sample_metrics(&mut self, now: SimTime) {
        let Some(mut rec) = self.recorder.take() else {
            return;
        };
        // Engine self-stats (pushed by `observe_engine` after every step).
        let es = self.engine_stats;
        rec.sample("engine_events_total", None, now, es.steps as f64);
        rec.sample(
            "engine_events_per_sample",
            None,
            now,
            es.steps.saturating_sub(self.last_sample_steps) as f64,
        );
        self.last_sample_steps = es.steps;
        rec.sample("engine_queue_len", None, now, es.queue_len as f64);
        rec.sample("engine_queue_overflow", None, now, es.queue.overflow as f64);
        rec.sample("engine_queue_buckets", None, now, es.queue.buckets as f64);

        // Network: utilization = allocated max–min-fair rate / capacity.
        rec.sample(
            "net_active_flows",
            None,
            now,
            self.net.active_flows() as f64,
        );
        let util = |net: &mut FlowNet<NetTag>, link: LinkId| {
            let cap = net.link_capacity(link);
            if cap > 0.0 {
                net.link_rate(link) / cap
            } else {
                0.0
            }
        };
        for r in 0..self.spec.racks as usize {
            let up = self.fabric.rack_uplink(r);
            let down = self.fabric.rack_downlink(r);
            let u = util(&mut self.net, up);
            rec.sample("net_rack_up_util", Some(r as u32), now, u);
            let d = util(&mut self.net, down);
            rec.sample("net_rack_down_util", Some(r as u32), now, d);
        }
        let core = util(&mut self.net, self.fabric.core_link());
        rec.sample("net_core_util", None, now, core);
        let pipe = util(&mut self.net, self.fabric.lustre_pipe());
        rec.sample("net_lustre_pipe_util", None, now, pipe);

        // Storage: queue depths, page-cache pressure, GC state.
        let ram_q: usize = self.ram_fs.iter().map(|fs| fs.device_queue_depth()).sum();
        rec.sample("storage_ram_queue_depth", None, now, ram_q as f64);
        let ssd_q: usize = self.ssd_fs.iter().map(|fs| fs.device_queue_depth()).sum();
        rec.sample("storage_ssd_queue_depth", None, now, ssd_q as f64);
        let dirty: f64 = self.ssd_fs.iter().map(|fs| fs.dirty_bytes()).sum();
        rec.sample("storage_ssd_dirty_bytes", None, now, dirty);
        let gc_nodes = self
            .ssd_fs
            .iter()
            .filter(|fs| fs.device().gc_active())
            .count();
        rec.sample("storage_ssd_gc_nodes", None, now, gc_nodes as f64);
        let fill = self
            .ssd_fs
            .iter()
            .map(|fs| fs.device().buffer_fill())
            .fold(0.0f64, f64::max);
        rec.sample("storage_ssd_buffer_fill_max", None, now, fill);

        // Lustre.
        rec.sample("lustre_mds_backlog", None, now, self.lustre.mds_backlog());
        let client_dirty: f64 = (0..self.spec.workers)
            .map(|n| self.lustre.client_dirty(NodeId(n)))
            .sum();
        rec.sample("lustre_client_dirty_bytes", None, now, client_dirty);

        // Core engine occupancy.
        let resident_bytes: f64 = (0..self.spec.workers)
            .map(|n| self.blockmgr.bytes_on(n))
            .sum();
        rec.sample("core_resident_partition_bytes", None, now, resident_bytes);
        rec.sample("core_task_arena_tasks", None, now, self.tasks.len() as f64);
        rec.sample("core_tasks_pending", None, now, self.tasks.pending as f64);
        let busy: u32 = (0..self.spec.workers as usize)
            .filter(|&n| self.node_up[n])
            .map(|n| self.spec.cores_per_node - self.free_slots[n])
            .sum();
        rec.sample("core_busy_slots", None, now, busy as f64);
        rec.sample("core_resident_jobs", None, now, self.jobs.len() as f64);

        // Tenancy: per-tenant queue/occupancy/burn (single-job runs report
        // one tenant, 0, so the export shape is uniform).
        let tenants = self
            .stream
            .as_ref()
            .map(|s| s.spec.tenants.len())
            .unwrap_or(1);
        for t in 0..tenants as u32 {
            let queued = self
                .stream
                .as_ref()
                .map(|s| s.queued.iter().filter(|p| p.tenant == t).count())
                .unwrap_or(0);
            rec.sample("tenant_queued_jobs", Some(t), now, queued as f64);
            let running = self.jobs.iter().filter(|j| j.tenant == t).count();
            rec.sample("tenant_running_jobs", Some(t), now, running as f64);
            let mut burn = self
                .tenant_latency_acc
                .get(t as usize)
                .copied()
                .unwrap_or(0.0);
            burn += self
                .jobs
                .iter()
                .filter(|j| j.tenant == t)
                .map(|j| now.since(j.arrived).as_secs_f64())
                .sum::<f64>();
            if let Some(s) = self.stream.as_ref() {
                burn += s
                    .queued
                    .iter()
                    .filter(|p| p.tenant == t)
                    .map(|p| now.since(p.arrived).as_secs_f64())
                    .sum::<f64>();
            }
            rec.sample("tenant_slo_burn_secs", Some(t), now, burn);
        }
        rec.tick();
        self.recorder = Some(rec);
    }

    /// The sample accumulator (None when `cfg.metrics` is off).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    fn ensure_placed(&mut self, rdd: RddId, dataset: &Arc<Dataset>) {
        if self.placed.contains_key(&rdd) {
            return;
        }
        if dataset.generated {
            // In-memory generated input: no storage backing at all.
            let parts = dataset
                .partitions
                .iter()
                .map(|p| PlacedPart {
                    bytes: p.bytes,
                    records: p.records,
                    data: p.data.clone(),
                    hdfs_block: None,
                    lustre: None,
                })
                .collect();
            self.placed.insert(rdd, parts);
            return;
        }
        let workers = self.spec.workers;
        let mut parts = Vec::with_capacity(dataset.partitions.len());
        let hdfs_file = match self.cfg.input {
            InputSource::HdfsRamDisk => {
                let f = self.hdfs.new_file();
                self.hdfs_files.insert(rdd, f);
                Some(f)
            }
            InputSource::Lustre => None,
        };
        for (i, p) in dataset.partitions.iter().enumerate() {
            let mut placed = PlacedPart {
                bytes: p.bytes,
                records: p.records,
                data: p.data.clone(),
                hdfs_block: None,
                lustre: None,
            };
            match self.cfg.input {
                InputSource::HdfsRamDisk => {
                    // Pseudo-random block placement (what an ingested corpus
                    // looks like): node block counts become Poisson-spread,
                    // which is what strict locality scheduling then amplifies.
                    let mut z = (i as u64 ^ self.cfg.seed.rotate_left(32))
                        .wrapping_add(0x9e37_79b9_7f4a_7c15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    let primary = NodeId((z % workers as u64) as u32);
                    let mut locs = vec![primary];
                    if self.hdfs.config().replication >= 2 && workers > 1 {
                        let mut r = primary.0;
                        while r == primary.0 {
                            z = (z ^ (z >> 29)).wrapping_mul(0xff51_afd7_ed55_8ccd);
                            r = (z % workers as u64) as u32;
                        }
                        locs.push(NodeId(r));
                    }
                    locs.dedup();
                    let b = self.hdfs.place_block_at(
                        hdfs_file.expect("hdfs file"), // lint:allow(panic): the HdfsRamDisk arm above created this file before placing blocks
                        Bytes(p.bytes),
                        locs.clone(),
                    );
                    for n in locs {
                        self.ram_fs[n.index()]
                            .preload(FileId(HDFS_BLOCK_BASE + b.0), Bytes(p.bytes));
                    }
                    placed.hdfs_block = Some(b);
                }
                InputSource::Lustre => {
                    let lf = LustreFile(LUSTRE_INPUT_BASE + ((rdd.0 as u64) << 24) + i as u64);
                    self.lustre.create_external(lf, p.bytes);
                    placed.lustre = Some(lf);
                }
            }
            parts.push(placed);
        }
        self.placed.insert(rdd, parts);
    }

    fn start_stage(&mut self, now: SimTime, ji: usize, idx: usize, out: &mut Outbox<Ev>) {
        let plan = self.jobs[ji].plan.clone();
        let stage = &plan.stages[idx];
        let is_last = idx + 1 == plan.stages.len();

        // Move the produced shuffle (if any) into consuming position.
        {
            let job = &mut self.jobs[ji];
            if matches!(stage.input, StageInput::Shuffle(_)) {
                job.shuffle_in = job.shuffle_out.take();
                assert!(
                    job.shuffle_in.is_some(),
                    "fetch stage without produced shuffle"
                );
            }
        }

        // Resolve partition count + place datasets.
        let nparts = match &stage.input {
            StageInput::Dataset { rdd, dataset } => {
                self.ensure_placed(*rdd, dataset);
                self.placed[rdd].len()
            }
            StageInput::Cached { rdd } => self.blockmgr.partition_count(*rdd),
            StageInput::Shuffle(_) => {
                self.jobs[ji].shuffle_in.as_ref().unwrap().reducers as usize // lint:allow(panic): build_plan emits a Shuffle input only after a shuffle-out stage, which installed shuffle_in at the phase switch
            }
        };
        assert!(nparts > 0, "stage with zero partitions");

        // Create the produced-shuffle state if this stage writes one.
        if let Some(requested) = stage.shuffle_out {
            // Spark guidance: default reduce-side parallelism ~ total cores.
            let reducers = requested
                .or(self.cfg.spark.default_parallelism)
                .unwrap_or((nparts as u32).min(self.spec.total_slots()))
                .max(1);
            let spec = match &plan.stages[idx + 1].input {
                StageInput::Shuffle(s) => s.clone(),
                _ => unreachable!("stage after a shuffle output must consume it"),
            };
            let real = match &stage.input {
                StageInput::Dataset { rdd, .. } => {
                    self.placed[rdd].iter().all(|p| p.data.is_some())
                }
                StageInput::Cached { rdd } => self.blockmgr.is_real(*rdd),
                StageInput::Shuffle(_) => {
                    self.jobs[ji]
                        .shuffle_in
                        .as_ref()
                        // lint:allow(panic): build_plan emits a Shuffle input only after a shuffle-out stage, which installed shuffle_in at the phase switch
                        .unwrap()
                        .node_real
                        .is_some()
                }
            };
            let workers = self.spec.workers as usize;
            // Rack aggregation kicks in when the per-rack-pair concurrent
            // flow count (per_rack producers x per_rack consumers) exceeds
            // the threshold; u32::MAX disables it outright. Only the
            // store-served paths aggregate — LustreShared traffic already
            // funnels through one pipe.
            let aggregated = {
                let per_rack = workers as u64 / self.spec.racks.max(1) as u64;
                self.cfg.rack_agg_threshold != u32::MAX
                    && matches!(
                        self.cfg.shuffle,
                        ShuffleStore::Local(_) | ShuffleStore::LustreLocal
                    )
                    && per_rack * per_rack > self.cfg.rack_agg_threshold as u64
            };
            self.jobs[ji].shuffle_out =
                Some(ShuffleState::new(reducers, spec, workers, real, aggregated));
        }

        // Declare cache points so partially-cached RDDs are not reused.
        for (_, rdd) in &stage.cache_points {
            self.blockmgr.declare(*rdd, nparts as u32);
        }

        // Create the stage's tasks.
        let is_fetch = matches!(stage.input, StageInput::Shuffle(_));
        let mut created: Vec<u32> = Vec::new();
        for i in 0..nparts {
            let id = self.tasks.len() as u32;
            let (kind, prefs, pipelined) = if is_fetch {
                (TaskKind::Fetch { reducer: i as u32 }, Vec::new(), false)
            } else {
                (
                    TaskKind::Compute { part: i as u32 },
                    self.compute_prefs(stage, idx, i as u32),
                    true,
                )
            };
            self.tasks.push(Task {
                job: self.jobs[ji].id,
                stage: idx as u32,
                kind,
                state: TState::Pending,
                node: u32::MAX,
                queued_at: now,
                launched_at: now,
                compute_dur: SimDuration::ZERO,
                pipelined,
                pending_io: 0,
                finish_scheduled: false,
                input_bytes: 0.0,
                output_bytes: 0.0,
                records_est: 0,
                records_out: None,
                locality: TaskLocality::Any,
                prefs,
                pinned: false,
                twin: None,
                is_speculative: false,
                attempt: 0,
                doomed: None,
                ghost: false,
            });
            created.push(id);
        }
        self.trace(
            now,
            TE::StageStart {
                stage: idx as u32,
                tasks: created.len() as u32,
            },
        );
        for &id in &created {
            self.trace(
                now,
                TE::TaskQueued {
                    task: id,
                    stage: idx as u32,
                    class: Self::trace_class(self.tasks.kind[id as usize]),
                    attempt: 0,
                },
            );
        }
        {
            let job = &mut self.jobs[ji];
            job.phase = RunPhase::Stage(idx);
            job.remaining = created.len();
            job.stage_tasks = created.clone();
            if is_last {
                job.final_tasks = created.clone();
            }
            job.last_local_launch = now;
            job.stage_durs.clear();
        }
        self.enqueue_pending(ji, &created);
        self.rotate = self.rotate.wrapping_add(1);
        out.immediately(Ev::Dispatch);
    }

    /// Preferred nodes for a compute task: HDFS replicas or the cache home.
    fn compute_prefs(&self, stage: &StagePlan, _idx: usize, part: u32) -> Vec<u32> {
        match &stage.input {
            StageInput::Dataset { rdd, .. } => {
                let placed = &self.placed[rdd][part as usize];
                match placed.hdfs_block {
                    Some(b) => self.hdfs.locations(b).iter().map(|n| n.0).collect(),
                    // Lustre input: uniformly distant — no preference (§V-A).
                    None => Vec::new(),
                }
            }
            StageInput::Cached { rdd } => self
                .blockmgr
                .location(*rdd, part)
                .map(|n| vec![n])
                .unwrap_or_default(),
            StageInput::Shuffle(_) => Vec::new(),
        }
    }

    fn enqueue_pending(&mut self, ji: usize, ids: &[u32]) {
        let tasks = &self.tasks;
        let job = &mut self.jobs[ji];
        for &id in ids {
            let prefs = &tasks.prefs[id as usize];
            if tasks.pinned[id as usize] {
                job.prefs_q[prefs[0] as usize].push_back(id);
                continue;
            }
            if prefs.is_empty() {
                job.no_pref_q.push_back(id);
            } else {
                for &n in prefs {
                    job.prefs_q[n as usize].push_back(id);
                }
                job.waiting_q.push_back(id);
            }
        }
    }

    // ---------------- dispatch ----------------

    /// ELB (§VI-A): while a stage is depositing intermediate data, stop
    /// assigning tasks to nodes holding more than `threshold ×` the cluster
    /// average.
    fn elb_declines(&self, ji: usize, node: u32) -> bool {
        let Some(elb) = self.cfg.elb else {
            return false;
        };
        let job = &self.jobs[ji];
        let depositing = match job.phase {
            RunPhase::Stage(idx) => job.plan.stages[idx].has_shuffle_output(),
            _ => false,
        };
        if !depositing {
            return false;
        }
        let total: f64 = job.intermediate.iter().sum();
        if total <= 0.0 {
            return false;
        }
        let avg = total / self.spec.workers as f64;
        job.intermediate[node as usize] > avg * elb.threshold
    }

    /// Pick the next task for a free slot on `node`; `Err(retry)` when delay
    /// scheduling is holding tasks for locality. With `allow_steal = false`
    /// only locality-preferred (or preference-free) tasks are returned, so a
    /// dispatch round assigns local work before anything is stolen.
    fn pick(
        &mut self,
        now: SimTime,
        ji: usize,
        node: u32,
        allow_steal: bool,
    ) -> Result<Option<u32>, Option<SimTime>> {
        let tasks = &self.tasks;
        let job = &mut self.jobs[ji];
        while let Some(&cand) = job.prefs_q[node as usize].front() {
            job.prefs_q[node as usize].pop_front();
            if tasks.state[cand as usize] == TState::Pending {
                job.last_local_launch = now;
                return Ok(Some(cand));
            }
        }
        while let Some(&cand) = job.no_pref_q.front() {
            job.no_pref_q.pop_front();
            if tasks.state[cand as usize] == TState::Pending {
                return Ok(Some(cand));
            }
        }
        if !allow_steal {
            return Ok(None);
        }
        loop {
            let Some(&cand) = job.waiting_q.front() else {
                return Ok(None);
            };
            if tasks.state[cand as usize] != TState::Pending {
                job.waiting_q.pop_front();
                continue;
            }
            match self.cfg.scheduler {
                SchedulerKind::Fifo => {
                    job.waiting_q.pop_front();
                    return Ok(Some(cand));
                }
                SchedulerKind::Delay { wait } => {
                    // Spark semantics: go remote only after `wait` with no
                    // locality-preferred launch anywhere in this job's stage
                    // (per-job: another tenant's local launches must not
                    // reset this job's delay clock).
                    let expires = job.last_local_launch + wait;
                    if now >= expires {
                        job.waiting_q.pop_front();
                        return Ok(Some(cand));
                    }
                    return Err(Some(expires));
                }
            }
        }
    }

    /// Re-index `node` in the availability set after any change to its
    /// free slots, liveness, or blacklist status. Every mutation site of
    /// those three must call this, or `dispatch` will skip (or revisit) the
    /// node.
    fn note_slot_change(&mut self, node: u32) {
        let i = node as usize;
        if self.node_up[i] && !self.blacklisted[i] && self.free_slots[i] > 0 {
            self.avail.insert(node);
        } else {
            self.avail.remove(&node);
        }
    }

    /// Inter-job dispatch order (DESIGN.md §4.14). Single-job runs and the
    /// FIFO policy serve jobs in admission order; fair-share orders by
    /// fewest running tasks; capacity first serves tenants still below
    /// their guaranteed slot count.
    fn job_order(&self) -> Vec<usize> {
        let n = self.jobs.len();
        let mut order: Vec<usize> = (0..n).collect();
        if n <= 1 {
            return order;
        }
        let Some(policy) = self.stream.as_ref().map(|s| s.spec.policy.clone()) else {
            return order;
        };
        match policy {
            InterJobPolicy::Fifo => order,
            InterJobPolicy::FairShare | InterJobPolicy::Capacity { .. } => {
                // Running-task counts per resident job, by arena scan (the
                // arena only ever holds the resident set's tasks).
                let mut running = vec![0u32; n];
                for i in 0..self.tasks.len() {
                    if self.tasks.state[i] == TState::Running {
                        let id = self.tasks.job[i];
                        if let Some(ji) = self.jobs.iter().position(|j| j.id == id) {
                            running[ji] += 1;
                        }
                    }
                }
                if let InterJobPolicy::Capacity { guarantees } = &policy {
                    let mut tenant_running: Vec<u32> = Vec::new();
                    for (ji, j) in self.jobs.iter().enumerate() {
                        let t = j.tenant as usize;
                        if tenant_running.len() <= t {
                            tenant_running.resize(t + 1, 0);
                        }
                        tenant_running[t] += running[ji];
                    }
                    order.sort_by_key(|&ji| {
                        let t = self.jobs[ji].tenant as usize;
                        let g = guarantees.get(t).copied().unwrap_or(0);
                        let deficit = tenant_running.get(t).copied().unwrap_or(0) < g;
                        (!deficit, running[ji], ji)
                    });
                } else {
                    order.sort_by_key(|&ji| (running[ji], ji));
                }
                order
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        if self.jobs.is_empty() {
            return;
        }
        // Fast exit: with nothing pending and speculation off, no pass can
        // launch anything (`pending_chains` is always empty between rounds),
        // so the scan below would only re-derive "blocked" for every node.
        if self.tasks.pending == 0 && self.cfg.speculation.is_none() {
            return;
        }
        let workers = self.spec.workers;
        let cad_some = self.cfg.cad.is_some();
        let mut earliest_retry: Option<SimTime> = None;
        // The inter-job policy orders which resident job a free slot serves;
        // within a job, pick() is unchanged.
        let order = self.job_order();
        // Two-phase rounds: first every node claims its locality-preferred
        // (or preference-free) tasks, one slot per pass; only then may the
        // FIFO path steal tasks that prefer other nodes.
        // Rotation-ordered snapshot of nodes that can accept a launch.
        // Availability only shrinks during a round (launches decrement
        // slots; completions never interleave with dispatch), so the
        // snapshot is a superset of what the full `0..workers` scan would
        // visit — in the same order — and the in-loop guards skip the rest.
        let start = self.rotate % workers;
        let cands: Vec<u32> = self
            .avail
            .range(start..)
            .chain(self.avail.range(..start))
            .copied()
            .collect();
        for allow_steal in [false, true] {
            self.dispatch_round += 1;
            let round = self.dispatch_round;
            loop {
                let mut launched_any = false;
                for &node in &cands {
                    if !self.node_up[node as usize] || self.blacklisted[node as usize] {
                        continue;
                    }
                    if self.blocked_stamp[node as usize] == round
                        || self.free_slots[node as usize] == 0
                    {
                        continue;
                    }
                    let mut node_launched = false;
                    for &ji in &order {
                        let storing = matches!(self.jobs[ji].phase, RunPhase::Storing(_));
                        let cad_on = storing && cad_some;
                        if self.elb_declines(ji, node) {
                            self.trace(now, TE::ElbDecline { node });
                            continue; // another job may still use this node
                        }
                        if cad_on && self.cad_gates(node) {
                            let allowed = self.cad_allowed[node as usize];
                            if now < allowed {
                                if self.cad_wake_at[node as usize] != allowed {
                                    self.cad_wake_at[node as usize] = allowed;
                                    self.trace(
                                        now,
                                        TE::CadGate {
                                            node,
                                            until: allowed,
                                        },
                                    );
                                    out.at(allowed, Ev::DispatchNode { node });
                                }
                                continue;
                            }
                        }
                        match self.pick(now, ji, node, allow_steal) {
                            Ok(Some(task)) => {
                                self.launch(now, task, node, out);
                                node_launched = true;
                                if cad_on && self.cad_interval > SimDuration::ZERO {
                                    let allowed = now + self.cad_interval;
                                    self.cad_allowed[node as usize] = allowed;
                                    if self.cad_wake_at[node as usize] != allowed {
                                        self.cad_wake_at[node as usize] = allowed;
                                        out.at(allowed, Ev::DispatchNode { node });
                                    }
                                    self.blocked_stamp[node as usize] = round; // one per interval
                                }
                                break;
                            }
                            Ok(None) => {
                                if allow_steal && self.maybe_speculate(now, ji, node, out) {
                                    node_launched = true;
                                    break;
                                }
                                // This job has nothing for the node; the next
                                // job in policy order may.
                            }
                            Err(retry) => {
                                if let Some(r) = retry {
                                    self.trace(now, TE::DelayWait { node, until: r });
                                    earliest_retry =
                                        Some(earliest_retry.map_or(r, |e: SimTime| e.min(r)));
                                }
                                // Delay scheduling holds only this job's
                                // steals; another job may still launch here.
                            }
                        }
                    }
                    if node_launched {
                        launched_any = true;
                    } else {
                        self.blocked_stamp[node as usize] = round;
                    }
                }
                if !launched_any {
                    break;
                }
            }
        }
        self.flush_pending_chains(now, out);
        if let Some(r) = earliest_retry {
            // lint:allow(event-past): delay-scheduling retry times are queued_at + wait, in the future of the dispatch that set them
            out.at(r, Ev::Dispatch);
        }
        // Bugfix (DESIGN.md §4.14): with pending work, an empty availability
        // snapshot, and no delay-retry wake, nothing re-arms dispatch. Flag
        // it so the next slot-freeing or node-recovery event re-dispatches.
        self.dispatch_starved =
            self.tasks.pending > 0 && cands.is_empty() && earliest_retry.is_none();
    }

    /// CAD only gates nodes whose store device actually shows congestion
    /// (a deep write queue); throttling healthy nodes would idle them.
    fn cad_gates(&self, node: u32) -> bool {
        match self.cfg.shuffle {
            ShuffleStore::Local(StoreDevice::Ssd) => {
                self.ssd_fs[node as usize].device_queue_depth() >= 4
            }
            ShuffleStore::Local(StoreDevice::RamDisk) => {
                self.ram_fs[node as usize].device_queue_depth() >= 4
            }
            _ => true,
        }
    }

    /// LATE-style speculation (baseline, §VIII related work): when a slot
    /// idles and a running compute task has exceeded `multiplier` × the
    /// median completed duration, launch a duplicate here; first copy wins.
    fn maybe_speculate(
        &mut self,
        now: SimTime,
        ji: usize,
        node: u32,
        out: &mut Outbox<Ev>,
    ) -> bool {
        let Some(spec) = self.cfg.speculation else {
            return false;
        };
        let job = &self.jobs[ji];
        if !matches!(job.phase, RunPhase::Stage(_)) {
            return false;
        }
        if job.stage_durs.len() < spec.min_completed {
            return false;
        }
        let median = LogHistogram::from_values(&job.stage_durs).median();
        let threshold = median * spec.multiplier;
        // Longest-elapsed running, unduplicated compute task not on `node`.
        let mut best: Option<(f64, u32)> = None;
        for &tid in &job.stage_tasks {
            let i = tid as usize;
            if self.tasks.state[i] != TState::Running
                || self.tasks.twin[i].is_some()
                || self.tasks.node[i] == node
                || !matches!(self.tasks.kind[i], TaskKind::Compute { .. })
            {
                continue;
            }
            let elapsed = now.since(self.tasks.launched_at[i]).as_secs_f64();
            if elapsed > threshold && best.is_none_or(|(e, _)| elapsed > e) {
                best = Some((elapsed, tid));
            }
        }
        let Some((_, straggler)) = best else {
            return false;
        };
        let dup = self.tasks.len() as u32;
        let kind = self.tasks.kind[straggler as usize];
        let stage = self.tasks.stage[straggler as usize];
        self.tasks.push(Task {
            job: self.tasks.job[straggler as usize],
            stage,
            kind,
            state: TState::Pending,
            node: u32::MAX,
            queued_at: now,
            launched_at: now,
            compute_dur: SimDuration::ZERO,
            pipelined: true,
            pending_io: 0,
            finish_scheduled: false,
            input_bytes: 0.0,
            output_bytes: 0.0,
            records_est: 0,
            records_out: None,
            locality: TaskLocality::Any,
            prefs: Vec::new(),
            pinned: false,
            twin: Some(straggler),
            is_speculative: true,
            attempt: 0,
            doomed: None,
            ghost: false,
        });
        self.tasks.twin[straggler as usize] = Some(dup);
        self.trace(
            now,
            TE::Speculate {
                task: straggler,
                twin: dup,
            },
        );
        self.trace(
            now,
            TE::TaskQueued {
                task: dup,
                stage,
                class: Self::trace_class(kind),
                attempt: 0,
            },
        );
        self.launch(now, dup, node, out);
        true
    }

    // ---------------- task launch ----------------

    fn launch(&mut self, now: SimTime, task: u32, node: u32, out: &mut Outbox<Ev>) {
        debug_assert_eq!(self.tasks.state[task as usize], TState::Pending);
        self.launch_count += 1;
        let doomed = self
            .doomed_launches
            .binary_search(&self.launch_count)
            .is_ok();
        self.free_slots[node as usize] -= 1;
        self.note_slot_change(node);
        {
            let i = task as usize;
            self.tasks.set_state(task, TState::Running);
            self.tasks.node[i] = node;
            self.tasks.launched_at[i] = now;
            if doomed {
                self.tasks.doomed[i] = Some(self.tasks.attempt[i]);
            }
        }
        {
            let i = task as usize;
            self.trace(
                now,
                TE::TaskLaunched {
                    task,
                    node,
                    class: Self::trace_class(self.tasks.kind[i]),
                    attempt: self.tasks.attempt[i],
                    queue_delay: now.since(self.tasks.queued_at[i]),
                    speculative: self.tasks.is_speculative[i],
                },
            );
        }
        match self.tasks.kind[task as usize] {
            TaskKind::Compute { part } => self.launch_compute(now, task, node, part, out),
            TaskKind::Store { producer } => self.launch_store(now, task, node, producer, out),
            TaskKind::Fetch { reducer } => self.launch_fetch(now, task, node, reducer, out),
        }
    }

    fn launch_compute(
        &mut self,
        now: SimTime,
        task: u32,
        node: u32,
        part: u32,
        out: &mut Outbox<Ev>,
    ) {
        let plan = self.plan_of(task);
        let stage_idx = self.tasks.stage[task as usize] as usize;
        let stage = &plan.stages[stage_idx];

        // Resolve input: bytes, records, data, the I/O to issue, locality.
        let (in_bytes, in_records, data, io_plan, locality) = match &stage.input {
            StageInput::Dataset { rdd, .. } => self.dataset_input(*rdd, part, node),
            StageInput::Cached { rdd } => {
                match self.blockmgr.try_partition(*rdd, part) {
                    Some((bytes, records, data, home)) => {
                        let (io, locality) = if home == node {
                            (IoPlan::None, TaskLocality::NodeLocal)
                        } else {
                            (IoPlan::NetOnly { src: home, bytes }, TaskLocality::Remote)
                        };
                        (bytes, records, data, io, locality)
                    }
                    // Lost with its node: rebuild it from lineage.
                    None => {
                        self.launch_recovered_compute(now, task, node, part, *rdd, out);
                        return;
                    }
                }
            }
            StageInput::Shuffle(_) => unreachable!("fetch tasks use launch_fetch"),
        };

        let speed = self.speed(node);
        let deferred = data.is_some();
        if deferred {
            // Real partition: the UDF chain is a pure function of the shared
            // input — defer it so the dispatch round can evaluate all such
            // chains on the worker pool, then commit in launch order.
            self.tasks.input_bytes[task as usize] = in_bytes;
            self.tasks.locality[task as usize] = locality;
            self.pending_chains.push(PendingChain {
                task,
                plan: plan.clone(),
                stage: stage_idx,
                part,
                node,
                in_bytes,
                in_records,
                data,
                speed,
                stage_override: None,
            });
        } else {
            // Synthetic partition: size-model arithmetic only, run inline.
            let (dur, out_bytes, out_records, out_data, snaps) =
                run_narrow_chain(stage, in_bytes, in_records, None, speed);
            let dur = dur.mul_f64(self.jitter(task)) + self.cfg.spark.task_overhead;
            {
                let i = task as usize;
                self.tasks.compute_dur[i] = dur;
                self.tasks.input_bytes[i] = in_bytes;
                self.tasks.output_bytes[i] = out_bytes;
                self.tasks.records_est[i] = out_records;
                self.tasks.records_out[i] = out_data;
                self.tasks.locality[i] = locality;
            }
            for (rdd, bytes, records, snapshot) in snaps {
                self.blockmgr
                    .insert(rdd, part, node, Bytes(bytes), records, snapshot);
            }
        }

        self.issue_io_plan(now, task, node, in_bytes, io_plan, out);

        // A deferred chain has no compute duration yet; its commit in
        // `flush_pending_chains` schedules the finish instead.
        if !deferred {
            self.maybe_schedule_finish(now, task, out);
        }
    }

    /// Input description for a dataset-rooted compute task (also used when
    /// rebuilding a lost cached partition from lineage).
    fn dataset_input(
        &self,
        rdd: RddId,
        part: u32,
        node: u32,
    ) -> (f64, u64, Option<Arc<[Record]>>, IoPlan, TaskLocality) {
        let placed = &self.placed[&rdd][part as usize];
        let bytes = placed.bytes;
        let records = placed.records;
        let data = placed.data.clone();
        match (placed.hdfs_block, placed.lustre) {
            (Some(b), _) => {
                let (mut src, loc) = self.hdfs.preferred_source(NodeId(node), b);
                let mut locality = match loc {
                    Locality::NodeLocal => TaskLocality::NodeLocal,
                    Locality::RackLocal => TaskLocality::RackLocal,
                    Locality::Remote => TaskLocality::Remote,
                };
                if !self.node_up[src.index()] {
                    // Preferred replica host is down: read any live replica.
                    // (With every replica down we still charge the read to
                    // the dead host's store — input durability is assumed.)
                    if let Some(up) = self
                        .hdfs
                        .locations(b)
                        .iter()
                        .copied()
                        .find(|n| self.node_up[n.index()])
                    {
                        src = up;
                        locality = if src.0 == node {
                            TaskLocality::NodeLocal
                        } else {
                            TaskLocality::Remote
                        };
                    }
                }
                (
                    bytes,
                    records,
                    data,
                    IoPlan::HdfsRead { block: b, src },
                    locality,
                )
            }
            (_, Some(lf)) => (
                bytes,
                records,
                data,
                IoPlan::LustreRead { file: lf },
                TaskLocality::Any,
            ),
            // Generated in memory: no input I/O.
            _ => (bytes, records, data, IoPlan::None, TaskLocality::Any),
        }
    }

    /// Issue the input I/O of a compute task against the substrates.
    fn issue_io_plan(
        &mut self,
        now: SimTime,
        task: u32,
        node: u32,
        in_bytes: f64,
        io_plan: IoPlan,
        out: &mut Outbox<Ev>,
    ) {
        match io_plan {
            IoPlan::None => {}
            IoPlan::HdfsRead { block, src } => {
                let file = FileId(HDFS_BLOCK_BASE + block.0);
                if src.0 == node {
                    let tag = self.io_tag(task);
                    self.tasks.pending_io[task as usize] += 1;
                    self.ram_fs[node as usize].read(now, file, Bytes(in_bytes), tag);
                    self.arm_fs(node, false, out);
                } else {
                    let tag = self.net_tag(task);
                    self.tasks.pending_io[task as usize] += 1;
                    let path = self
                        .fabric
                        .path(Endpoint::Node(src), Endpoint::Node(NodeId(node)));
                    let f = self.net.open_flow(now, path, true);
                    self.net.push_chunk(now, f, Bytes(in_bytes), tag);
                    self.arm_net(out);
                }
            }
            IoPlan::LustreRead { file } => {
                let tag = self.io_tag(task);
                let rplan = self.lustre.read(now, NodeId(node), file, Bytes(in_bytes));
                self.tasks.pending_io[task as usize] += 1;
                self.lustre.submit_mds(now, rplan.mds_ops, tag);
                self.arm_lustre(out);
                if rplan.oss_bytes > 0.0 {
                    let tag = self.net_tag(task);
                    self.tasks.pending_io[task as usize] += 1;
                    let path = self
                        .fabric
                        .path(Endpoint::Lustre, Endpoint::Node(NodeId(node)));
                    let f = self.net.open_flow(now, path, true);
                    let wire = rplan.oss_bytes + self.lustre.config().read_overhead_bytes;
                    self.net.push_chunk(now, f, Bytes(wire), tag);
                    self.arm_net(out);
                }
            }
            IoPlan::NetOnly { src, bytes } => {
                let tag = self.net_tag(task);
                self.tasks.pending_io[task as usize] += 1;
                let path = self
                    .fabric
                    .path(Endpoint::Node(NodeId(src)), Endpoint::Node(NodeId(node)));
                let f = self.net.open_flow(now, path, true);
                self.net.push_chunk(now, f, Bytes(bytes), tag);
                self.arm_net(out);
            }
        }
    }

    /// Lineage-based recovery (§II-C "lost partitions can be recovered by
    /// recomputing from the lineage"): a compute task found its cached input
    /// partition gone (node crash / executor memory loss). Re-derive it by
    /// running the recorded source→cache recipe concatenated with the
    /// stage's own chain, reading the original dataset partition again. The
    /// cache point inside the combined chain re-materializes the partition
    /// at the recomputing node.
    fn launch_recovered_compute(
        &mut self,
        now: SimTime,
        task: u32,
        node: u32,
        part: u32,
        rdd: RddId,
        out: &mut Outbox<Ev>,
    ) {
        let plan = self.plan_of(task);
        let stage_idx = self.tasks.stage[task as usize] as usize;
        let stage = &plan.stages[stage_idx];
        let Some(spec) = plan.recovery.get(&rdd) else {
            // lint:allow(panic): unrecoverable by design: a cache below a shuffle has no per-partition lineage; dying loudly beats silently wrong output
            panic!(
                "cached partition {part} of {rdd:?} lost with no lineage recipe — \
                 a cache fed through a shuffle cannot be rebuilt in this model"
            );
        };
        if let Some(r) = self.metrics.recovery(self.tasks.job[task as usize]) {
            r.recomputed_partitions += 1;
        }

        // Combined chain: recipe steps, the cache point, then the stage's
        // own steps (stage cache points shift past the recipe prefix).
        let prefix = spec.steps.len();
        let mut steps = spec.steps.clone();
        steps.extend(stage.steps.iter().cloned());
        let mut cache_points = vec![(spec.cache_step, rdd)];
        cache_points.extend(stage.cache_points.iter().map(|&(i, r)| (i + prefix, r)));
        let rec_stage = Arc::new(StagePlan {
            input: StageInput::Dataset {
                rdd: spec.source,
                dataset: spec.dataset.clone(),
            },
            steps,
            cache_points,
            shuffle_out: stage.shuffle_out,
        });
        let source = spec.source;
        let dataset = spec.dataset.clone();
        self.ensure_placed(source, &dataset);
        let (in_bytes, in_records, data, io_plan, locality) =
            self.dataset_input(source, part, node);

        let speed = self.speed(node);
        let deferred = data.is_some();
        if deferred {
            self.tasks.input_bytes[task as usize] = in_bytes;
            self.tasks.locality[task as usize] = locality;
            self.pending_chains.push(PendingChain {
                task,
                plan: plan.clone(),
                stage: stage_idx,
                part,
                node,
                in_bytes,
                in_records,
                data,
                speed,
                stage_override: Some(rec_stage),
            });
        } else {
            let (dur, out_bytes, out_records, out_data, snaps) =
                run_narrow_chain(&rec_stage, in_bytes, in_records, None, speed);
            let dur = dur.mul_f64(self.jitter(task)) + self.cfg.spark.task_overhead;
            {
                let i = task as usize;
                self.tasks.compute_dur[i] = dur;
                self.tasks.input_bytes[i] = in_bytes;
                self.tasks.output_bytes[i] = out_bytes;
                self.tasks.records_est[i] = out_records;
                self.tasks.records_out[i] = out_data;
                self.tasks.locality[i] = locality;
            }
            for (r, bytes, records, snapshot) in snaps {
                self.blockmgr
                    .insert(r, part, node, Bytes(bytes), records, snapshot);
            }
        }
        self.issue_io_plan(now, task, node, in_bytes, io_plan, out);
        if !deferred {
            self.maybe_schedule_finish(now, task, out);
        }
    }

    /// Evaluate every real-partition chain captured this dispatch round and
    /// commit the results in launch order.
    ///
    /// Determinism does not depend on the thread count: placement decisions
    /// already happened sequentially, [`run_narrow_chain`] is a pure function
    /// of each [`PendingChain`], and commits (task fields, cache-snapshot
    /// inserts, finish events) are applied in the exact order the tasks were
    /// launched. `MEMRES_THREADS=1` and a 16-thread pool produce
    /// byte-identical metrics.
    fn flush_pending_chains(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        if self.pending_chains.is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.pending_chains);
        let n = jobs.len();
        let threads = self.executor_threads.min(n);
        let eval = |j: &PendingChain| {
            let stage = j
                .stage_override
                .as_deref()
                .unwrap_or(&j.plan.stages[j.stage]);
            run_narrow_chain(stage, j.in_bytes, j.in_records, j.data.clone(), j.speed)
        };
        let results: Vec<ChainOut> = if threads <= 1 {
            jobs.iter().map(eval).collect()
        } else {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let slots: Vec<Mutex<Option<ChainOut>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = eval(&jobs[i]);
                        // lint:allow(panic): a poisoned slot means a UDF panicked on a worker thread; propagating is the only sound option
                        *slots[i].lock().expect("chain slot poisoned") = Some(r);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("chain slot poisoned") // lint:allow(panic): a poisoned slot means a UDF panicked on a worker thread; propagating is the only sound option
                        .expect("chain evaluated") // lint:allow(panic): every chain launched this round was evaluated before the launch-order commit
                })
                .collect()
        };
        for (j, (dur, out_bytes, out_records, out_data, snaps)) in jobs.iter().zip(results) {
            let dur = dur.mul_f64(self.jitter(j.task)) + self.cfg.spark.task_overhead;
            {
                let i = j.task as usize;
                self.tasks.compute_dur[i] = dur;
                self.tasks.output_bytes[i] = out_bytes;
                self.tasks.records_est[i] = out_records;
                self.tasks.records_out[i] = out_data;
            }
            for (rdd, bytes, records, snapshot) in snaps {
                self.blockmgr
                    .insert(rdd, j.part, j.node, Bytes(bytes), records, snapshot);
            }
            self.maybe_schedule_finish(now, j.task, out);
        }
    }

    fn launch_store(
        &mut self,
        now: SimTime,
        task: u32,
        node: u32,
        producer: u32,
        out: &mut Outbox<Ev>,
    ) {
        let bytes = self.tasks.output_bytes[producer as usize];
        let speed = self.speed(node);
        // Partition + Java-serialization cost of the flush (Spark 0.7 era).
        let cpu = SimDuration::from_secs_f64(bytes / (300.0e6 * speed)).mul_f64(self.jitter(task))
            + self.cfg.spark.task_overhead;
        {
            let i = task as usize;
            self.tasks.compute_dur[i] = cpu;
            self.tasks.input_bytes[i] = bytes;
            self.tasks.output_bytes[i] = bytes;
        }
        match self.cfg.shuffle {
            ShuffleStore::Local(dev) => {
                let file = self.node_store_file(task, node);
                if bytes > 0.0 {
                    let ssd = dev == StoreDevice::Ssd;
                    let tag = self.io_tag(task);
                    let fs = if ssd {
                        &mut self.ssd_fs[node as usize]
                    } else {
                        &mut self.ram_fs[node as usize]
                    };
                    assert!(
                        fs.free() >= bytes,
                        "shuffle store on node {node} out of space — the paper's \
                         RAMDisk-backed store tops out at ~1.2 TB aggregate"
                    );
                    self.tasks.pending_io[task as usize] += 1;
                    fs.write(now, file, Bytes(bytes), tag);
                    self.arm_fs(node, ssd, out);
                }
            }
            ShuffleStore::LustreLocal | ShuffleStore::LustreShared => {
                let file = self.node_lustre_file(task, node);
                let tag = self.io_tag(task);
                let wplan = self.lustre.append(now, NodeId(node), file, Bytes(bytes));
                self.tasks.pending_io[task as usize] += 1;
                self.lustre.submit_mds(now, wplan.mds_ops, tag);
                self.arm_lustre(out);
                if wplan.oss_bytes > 0.0 {
                    let tag = self.net_tag(task);
                    self.tasks.pending_io[task as usize] += 1;
                    let path = self
                        .fabric
                        .path(Endpoint::Node(NodeId(node)), Endpoint::Lustre);
                    let f = self.net.open_flow(now, path, true);
                    let wire = wplan.oss_bytes / self.lustre.config().write_efficiency;
                    self.net.push_chunk(now, f, Bytes(wire), tag);
                    self.arm_net(out);
                }
            }
        }
        self.maybe_schedule_finish(now, task, out);
    }

    fn node_store_file(&mut self, task: u32, node: u32) -> FileId {
        let ji = self.job_index_of(task);
        let next = &mut self.next_shuffle_file;
        let sh = self.jobs[ji]
            .shuffle_out
            .as_mut()
            .expect("store without produced shuffle"); // lint:allow(panic): a storing task exists only for a stage that produced a shuffle
        *sh.local_files[node as usize].get_or_insert_with(|| {
            let f = FileId(*next);
            *next += 1;
            f
        })
    }

    fn node_lustre_file(&mut self, task: u32, node: u32) -> LustreFile {
        let ji = self.job_index_of(task);
        let next = &mut self.next_shuffle_file;
        let sh = self.jobs[ji]
            .shuffle_out
            .as_mut()
            .expect("store without produced shuffle"); // lint:allow(panic): a storing task exists only for a stage that produced a shuffle
        *sh.lustre_files[node as usize].get_or_insert_with(|| {
            let f = LustreFile(*next);
            *next += 1;
            f
        })
    }

    fn launch_fetch(
        &mut self,
        now: SimTime,
        task: u32,
        node: u32,
        reducer: u32,
        out: &mut Outbox<Ev>,
    ) {
        let workers = self.spec.workers;
        let req = self.cfg.spark.reducer_max_bytes_in_flight;
        let oh = self.cfg.spark.per_request_overhead_bytes;
        let compress = if self.cfg.spark.shuffle_compress {
            self.cfg.spark.shuffle_compress_ratio
        } else {
            1.0
        };
        let plan = self.plan_of(task);
        let stage_idx = self.tasks.stage[task as usize] as usize;
        let stage = &plan.stages[stage_idx];

        // Bucket sizes and shuffle spec. Above the rack-aggregation
        // threshold, per-node deposits fold into per-source-rack totals and
        // the fetch rides one aggregate flow per rack pair (indexed by rack
        // in `per_source`); below it, exact per-node flows as always.
        let racks = self.spec.racks as usize;
        let (per_source, total, agg_rate, out_factor, aggregated) = {
            let sh = self
                .job_of(task)
                .shuffle_in
                .as_ref()
                .expect("fetch without shuffle"); // lint:allow(panic): fetch tasks are launched from a stage whose input is that shuffle
            let per: Vec<f64> = if sh.aggregated {
                let mut rack_bytes = vec![0.0; racks];
                for i in 0..workers as usize {
                    rack_bytes[i % racks] += sh.buckets.get(i, reducer as usize);
                }
                if self.cfg.defect == Some(Defect::DropAggBytes) {
                    // Injected defect (fuzz-oracle demo, DESIGN.md §4.13):
                    // lose the last rack's fold entirely.
                    if let Some(b) = rack_bytes.last_mut() {
                        *b = 0.0;
                    }
                }
                rack_bytes
            } else {
                (0..workers as usize)
                    .map(|i| sh.buckets.get(i, reducer as usize))
                    .collect()
            };
            let total: f64 = per.iter().sum();
            (
                per,
                total,
                sh.spec.fetch_rate,
                sh.spec.out_factor,
                sh.aggregated,
            )
        };

        let speed = self.speed(node);
        let mut dur = SimDuration::from_secs_f64(total / (agg_rate * speed));
        let (chain_dur, out_bytes, out_records, _, _) = run_narrow_chain(
            stage,
            total * out_factor,
            ((total / 64.0).max(1.0)) as u64,
            None,
            speed,
        );
        dur += chain_dur;
        let dur = dur.mul_f64(self.jitter(task)) + self.cfg.spark.task_overhead;
        {
            let i = task as usize;
            self.tasks.compute_dur[i] = dur;
            self.tasks.input_bytes[i] = total;
            self.tasks.output_bytes[i] = out_bytes;
            self.tasks.records_est[i] = out_records;
        }

        match self.cfg.shuffle {
            ShuffleStore::Local(_) | ShuffleStore::LustreLocal if aggregated => {
                self.net.start_batch();
                let dst_rack = self.fabric.rack_index(NodeId(node)) as u32;
                for (src_rack, &b) in per_source.iter().enumerate() {
                    if b <= 0.0 {
                        continue;
                    }
                    let tag = self.net_tag(task);
                    match self.cfg.shuffle {
                        ShuffleStore::Local(_) => {
                            let wire = inflate_for_requests(Bytes(b * compress), req, oh);
                            self.tasks.pending_io[task as usize] += 1;
                            let f = self.rack_fetch_flow(now, task, src_rack as u32, dst_rack, 0);
                            self.net.push_chunk(now, f, wire, tag);
                        }
                        ShuffleStore::LustreLocal => {
                            // Split the rack total by the byte-weighted
                            // cached share of its member nodes.
                            let cached_raw = {
                                let sh = self.job_of(task).shuffle_in.as_ref().unwrap(); // lint:allow(panic): fetch completions only arrive for stages whose input is that shuffle
                                (src_rack..workers as usize)
                                    .step_by(racks)
                                    .map(|i| {
                                        sh.buckets.get(i, reducer as usize) * sh.cached_frac[i]
                                    })
                                    .sum::<f64>()
                            };
                            let cached =
                                inflate_for_requests(Bytes(cached_raw * compress), req, oh);
                            let oss =
                                inflate_for_requests(Bytes((b - cached_raw) * compress), req, oh);
                            if cached.is_positive() {
                                self.tasks.pending_io[task as usize] += 1;
                                let f =
                                    self.rack_fetch_flow(now, task, src_rack as u32, dst_rack, 0);
                                self.net.push_chunk(now, f, cached, tag);
                            }
                            if oss.is_positive() {
                                self.tasks.pending_io[task as usize] += 1;
                                let f =
                                    self.rack_fetch_flow(now, task, src_rack as u32, dst_rack, 1);
                                self.net.push_chunk(now, f, oss, tag);
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                self.net.end_batch();
                self.arm_net(out);
            }
            ShuffleStore::Local(_) | ShuffleStore::LustreLocal => {
                self.net.start_batch();
                for (i, &b) in per_source.iter().enumerate() {
                    if b <= 0.0 {
                        continue;
                    }
                    let wire = inflate_for_requests(Bytes(b * compress), req, oh);
                    let tag = self.net_tag(task);
                    match self.cfg.shuffle {
                        ShuffleStore::Local(_) => {
                            self.tasks.pending_io[task as usize] += 1;
                            let f = self.fetch_flow(now, task, i as u32, node, 0);
                            self.net.push_chunk(now, f, wire, tag);
                        }
                        ShuffleStore::LustreLocal => {
                            let frac =
                                self.job_of(task).shuffle_in.as_ref().unwrap().cached_frac[i]; // lint:allow(panic): fetch completions only arrive for stages whose input is that shuffle
                            let cached = wire * frac;
                            let oss = wire - cached;
                            if cached.is_positive() {
                                self.tasks.pending_io[task as usize] += 1;
                                let f = self.fetch_flow(now, task, i as u32, node, 0);
                                self.net.push_chunk(now, f, cached, tag);
                            }
                            if oss.is_positive() {
                                self.tasks.pending_io[task as usize] += 1;
                                let f = self.fetch_flow(now, task, i as u32, node, 1);
                                self.net.push_chunk(now, f, oss, tag);
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                self.net.end_batch();
                self.arm_net(out);
            }
            ShuffleStore::LustreShared => {
                // Metadata storm: per-file lock ops at the MDS, plus the
                // revocation bookkeeping share; then an OSS read gated on the
                // mass flush (see `lustre_shared_transfer`).
                let ops = workers as f64 * self.lustre.config().ops_lock
                    + self.lustre.config().ops_revoke;
                let tag = self.io_tag(task);
                self.tasks.pending_io[task as usize] += 2; // mds + data
                self.lustre.submit_mds(now, ops, tag);
                self.arm_lustre(out);
            }
        }
        self.maybe_schedule_finish(now, task, out);
    }

    fn fetch_flow(&mut self, now: SimTime, task: u32, src: u32, dst: u32, kind: u8) -> FlowId {
        let key = (src, dst, kind);
        if let Some(&f) = self
            .job_of(task)
            .shuffle_in
            .as_ref()
            .unwrap() // lint:allow(panic): fetch_flow is reached only from fetch paths, which require shuffle_in
            .fetch_flows
            .get(&key)
        {
            return f;
        }
        let mut path = match (self.cfg.shuffle, kind) {
            // Store-served: the source's store read bandwidth + the fabric.
            (ShuffleStore::Local(_), _) => {
                let mut p = vec![self.store_read_links[src as usize]];
                p.extend(
                    self.fabric
                        .path(Endpoint::Node(NodeId(src)), Endpoint::Node(NodeId(dst))),
                );
                p
            }
            // Lustre-local, cached at the server: server page-cache read +
            // fabric (same per-node serving capability as a local store).
            (ShuffleStore::LustreLocal, 0) => {
                let mut p = vec![self.store_read_links[src as usize]];
                p.extend(
                    self.fabric
                        .path(Endpoint::Node(NodeId(src)), Endpoint::Node(NodeId(dst))),
                );
                p
            }
            // Lustre-local, not cached: OSS → server → destination
            // ("repetitive data movement"): the Lustre pipe, the server NIC,
            // and the destination NIC all constrain the transfer.
            (ShuffleStore::LustreLocal, _) => {
                let mut p = vec![self.fabric.lustre_pipe()];
                p.extend(
                    self.fabric
                        .path(Endpoint::Node(NodeId(src)), Endpoint::Node(NodeId(dst))),
                );
                p
            }
            _ => unreachable!("fetch_flow not used for LustreShared"),
        };
        path.dedup();
        if path.is_empty() {
            // Loopback: still bounded by the local store's read bandwidth.
            path = vec![self.store_read_links[src as usize]];
        }
        let f = self.net.open_flow(now, path, false);
        self.job_of_mut(task)
            .shuffle_in
            .as_mut()
            .unwrap() // lint:allow(panic): fetch_flow is reached only from fetch paths, which require shuffle_in
            .fetch_flows
            .insert(key, f);
        f
    }

    /// Persistent aggregate flow for all fetch traffic from `src_rack`
    /// into `dst_rack`. Shares the `(src, dst, kind)` key space with
    /// `fetch_flow`; an aggregated shuffle never opens per-node flows, so
    /// the keys cannot collide. The flow is processor-shared: concurrent
    /// reducers behind it split its bandwidth evenly — the split the
    /// collapsed per-node flows would converge to under water-filling.
    fn rack_fetch_flow(
        &mut self,
        now: SimTime,
        task: u32,
        src_rack: u32,
        dst_rack: u32,
        kind: u8,
    ) -> FlowId {
        let key = (src_rack, dst_rack, kind);
        if let Some(&f) = self
            .job_of(task)
            .shuffle_in
            .as_ref()
            .unwrap() // lint:allow(panic): rack_fetch_flow is reached only from fetch paths, which require shuffle_in
            .fetch_flows
            .get(&key)
        {
            return f;
        }
        let mut path = self
            .fabric
            .rack_aggregate_path(src_rack as usize, dst_rack as usize);
        if kind == 1 {
            // OSS-served share: the Lustre pipe constrains it too.
            path.insert(0, self.fabric.lustre_pipe());
        }
        path.dedup();
        let f = self.net.open_shared_flow(now, path, false);
        self.job_of_mut(task)
            .shuffle_in
            .as_mut()
            .unwrap() // lint:allow(panic): rack_fetch_flow is reached only from fetch paths, which require shuffle_in
            .fetch_flows
            .insert(key, f);
        f
    }

    // ---------------- completion plumbing ----------------

    /// Stale-completion filter shared by every completion path: drops events
    /// from finished jobs, failed (relaunched) attempts, and cleared tasks.
    fn completion_is_stale(&self, task: u32, attempt: u32, job: u32) -> bool {
        if !self.tasks.contains(task) {
            return true;
        }
        let i = task as usize;
        // A reused task id after `tasks.clear()` belongs to a different job;
        // the 16-bit job mask in the tag tells them apart.
        if job & 0xffff != self.tasks.job[i] & 0xffff {
            return true;
        }
        self.tasks.state[i] != TState::Running || self.tasks.attempt[i] & 0xffff != attempt & 0xffff
    }

    fn task_io_done(
        &mut self,
        now: SimTime,
        task: u32,
        attempt: u32,
        job: u32,
        out: &mut Outbox<Ev>,
    ) {
        if self.completion_is_stale(task, attempt, job) {
            return;
        }
        let i = task as usize;
        debug_assert!(
            self.tasks.pending_io[i] > 0,
            "io done for task without pending io"
        );
        self.tasks.pending_io[i] = self.tasks.pending_io[i].saturating_sub(1);
        if self.tasks.pending_io[i] == 0 {
            self.maybe_schedule_finish(now, task, out);
        }
    }

    fn maybe_schedule_finish(&mut self, now: SimTime, task: u32, out: &mut Outbox<Ev>) {
        let job = self.tasks.job[task as usize];
        let i = task as usize;
        if self.tasks.state[i] != TState::Running
            || self.tasks.finish_scheduled[i]
            || self.tasks.pending_io[i] > 0
        {
            return;
        }
        let finish = if self.tasks.pipelined[i] {
            (self.tasks.launched_at[i] + self.tasks.compute_dur[i]).max(now)
        } else {
            now + self.tasks.compute_dur[i]
        };
        self.tasks.finish_scheduled[i] = true;
        out.at(
            finish,
            Ev::TaskFinish {
                task,
                attempt: self.tasks.attempt[i],
                job,
            },
        );
    }

    fn on_task_finish(
        &mut self,
        now: SimTime,
        task: u32,
        attempt: u32,
        job: u32,
        out: &mut Outbox<Ev>,
    ) {
        if self.completion_is_stale(task, attempt, job) {
            return;
        }
        // Speculation: if this task's twin already finished, this copy lost —
        // just release the slot (the real Spark would have killed it).
        let lost = self.tasks.twin[task as usize]
            .map(|tw| self.tasks.state[tw as usize] == TState::Done)
            .unwrap_or(false);
        // An attempt doomed by the fault plan dies at the instant it would
        // have completed: the full duration becomes wasted work and the task
        // re-queues (or the job aborts at the attempt limit).
        if !lost && self.tasks.doomed[task as usize] == Some(attempt) {
            self.fail_task(now, task, SimDuration::ZERO, true, out);
            return;
        }
        let (node, stage, kind, ghost) = {
            let i = task as usize;
            self.tasks.set_state(task, TState::Done);
            (
                self.tasks.node[i],
                self.tasks.stage[i],
                self.tasks.kind[i],
                self.tasks.ghost[i],
            )
        };
        self.free_slots[node as usize] += 1;
        self.note_slot_change(node);
        if lost {
            // The losing speculation copy: its whole duration was duplicated
            // work, so the trace marks it ghost (retry-waste in attribution).
            self.trace(
                now,
                TE::TaskFinished {
                    task,
                    node,
                    class: Self::trace_class(kind),
                    attempt,
                    ghost: true,
                },
            );
            out.immediately(Ev::Dispatch);
            return;
        }
        self.trace(
            now,
            TE::TaskFinished {
                task,
                node,
                class: Self::trace_class(kind),
                attempt,
                ghost,
            },
        );
        // If a speculative copy won, it replaces the original everywhere the
        // job refers to it (storing pins, final-task outputs).
        if self.tasks.is_speculative[task as usize] {
            let orig = self.tasks.twin[task as usize].expect("duplicate without twin"); // lint:allow(panic): duplicate (speculative) tasks are always created with their twin recorded
            let job = self.job_of_mut(task);
            for slot in job.stage_tasks.iter_mut().chain(job.final_tasks.iter_mut()) {
                if *slot == orig {
                    *slot = task;
                }
            }
        }
        if matches!(kind, TaskKind::Compute { .. }) {
            let d = now
                .since(self.tasks.launched_at[task as usize])
                .as_secs_f64();
            self.job_of_mut(task).stage_durs.push(d);
        }

        let phase = match kind {
            TaskKind::Compute { .. } => Phase::Compute,
            TaskKind::Store { .. } => Phase::Storing,
            TaskKind::Fetch { .. } => Phase::Shuffling,
        };
        {
            let i = task as usize;
            let index = match kind {
                TaskKind::Compute { part } => part,
                TaskKind::Store { producer } => producer,
                TaskKind::Fetch { reducer } => reducer,
            };
            self.metrics.record(TaskMetric {
                job: self.tasks.job[i],
                stage,
                phase,
                index,
                node,
                queued_at: self.tasks.queued_at[i].as_secs_f64(),
                launched_at: self.tasks.launched_at[i].as_secs_f64(),
                finished_at: now.as_secs_f64(),
                input_bytes: self.tasks.input_bytes[i],
                output_bytes: self.tasks.output_bytes[i],
                locality: self.tasks.locality[i],
            });
        }

        // Ghosts charge time for redone work but deposit nothing — the lost
        // rows were already re-hosted when their node crashed.
        match kind {
            TaskKind::Compute { .. } if !ghost => self.producer_finished(task, node),
            TaskKind::Store { .. } => self.store_finished(now, task),
            TaskKind::Fetch { reducer } if !ghost => {
                self.fetch_aggregate(task, reducer);
                self.producer_finished(task, node);
            }
            _ => {}
        }

        let ji = self.job_index_of(task);
        let job = &mut self.jobs[ji];
        job.remaining -= 1;
        if job.remaining == 0 {
            self.advance_phase(now, ji, out);
        } else {
            out.immediately(Ev::Dispatch);
        }
    }

    /// A task that may deposit intermediate data for a produced shuffle.
    fn producer_finished(&mut self, task: u32, node: u32) {
        let out_bytes = self.tasks.output_bytes[task as usize];
        let stage_idx = self.tasks.stage[task as usize] as usize;
        let has_shuffle = self.job_of(task).plan.stages[stage_idx].has_shuffle_output();
        if !has_shuffle {
            return;
        }
        let records = self.tasks.records_out[task as usize].take();
        let job = self.job_of_mut(task);
        job.intermediate[node as usize] += out_bytes;
        let sh = job.shuffle_out.as_mut().expect("producer without shuffle"); // lint:allow(panic): producer completions only arrive for stages with a produced shuffle
        let r = sh.reducers as usize;
        match (records, &mut sh.node_real) {
            (Some(recs), Some(real)) => {
                for rec in recs.iter() {
                    let bucket = (rec.0.stable_hash() % r as u64) as usize;
                    sh.buckets
                        .add(node as usize, bucket, record_bytes(rec) as f64);
                    real[node as usize][bucket].push(rec.clone());
                }
            }
            _ => sh.buckets.add_uniform(node as usize, out_bytes),
        }
    }

    /// CAD feedback (§VI-B): watch the running average of completed
    /// ShuffleMapTask times against the *healthy baseline* (the first full
    /// window). While the average sits `jump_factor`× above the baseline,
    /// every further completion adds `step` to the dispatch interval —
    /// integral-controller behaviour that keeps throttling until the device
    /// recovers; when the average falls back toward the baseline the
    /// interval unwinds at the same rate.
    fn store_finished(&mut self, now: SimTime, task: u32) {
        let Some(cad) = self.cfg.cad else { return };
        let dur = now
            .since(self.tasks.launched_at[task as usize])
            .as_secs_f64();
        self.cad_window.push_back(dur);
        if self.cad_window.len() > cad.window {
            self.cad_window.pop_front();
        }
        if self.cad_window.len() < cad.window / 2 {
            return;
        }
        let avg = self.cad_window.iter().sum::<f64>() / self.cad_window.len() as f64;
        match self.cad_ref_avg {
            None => self.cad_ref_avg = Some(avg),
            Some(baseline) => {
                if avg > baseline * cad.jump_factor {
                    self.cad_interval += cad.step;
                    // Anti-windup: one healthy task-time of spacing already
                    // drops the write queue to a handful; wider gaps would
                    // idle the device instead of easing GC.
                    let cap = SimDuration::from_secs_f64(baseline);
                    self.cad_interval = self.cad_interval.min(cap);
                } else {
                    self.cad_interval = self.cad_interval - cad.step;
                }
            }
        }
    }

    /// Real-data aggregation of a fetched bucket.
    fn fetch_aggregate(&mut self, task: u32, reducer: u32) {
        let plan = self.plan_of(task);
        let stage_idx = self.tasks.stage[task as usize] as usize;
        let gathered = {
            let job = self.job_of_mut(task);
            let Some(real) = job.shuffle_in.as_mut().and_then(|sh| sh.node_real.as_mut()) else {
                return;
            };
            let mut gathered: Vec<Record> = Vec::new();
            for node_buckets in real.iter_mut() {
                gathered.append(&mut node_buckets[reducer as usize]);
            }
            gathered
        };
        let agg = self
            .job_of(task)
            .shuffle_in
            .as_ref()
            // lint:allow(panic): fetch finish runs on a stage whose input is that shuffle
            .unwrap()
            .spec
            .agg
            .clone();
        let mut recs = apply_agg(&agg, gathered);
        for step in &plan.stages[stage_idx].steps {
            recs = step.apply(recs);
        }
        let i = task as usize;
        self.tasks.records_est[i] = recs.len() as u64;
        self.tasks.output_bytes[i] = recs.iter().map(record_bytes).sum::<u64>() as f64;
        self.tasks.records_out[i] = Some(recs.into());
    }

    fn advance_phase(&mut self, now: SimTime, ji: usize, out: &mut Outbox<Ev>) {
        let phase = self.jobs[ji].phase;
        match phase {
            RunPhase::Stage(idx) => {
                let has_shuffle = self.jobs[ji].plan.stages[idx].has_shuffle_output();
                if has_shuffle {
                    self.start_storing(now, ji, idx, out);
                } else {
                    self.finish_job(now, ji, out);
                }
            }
            RunPhase::Storing(idx) => {
                self.prepare_fetch_serving(now, ji, out);
                self.start_stage(now, ji, idx + 1, out);
            }
        }
    }

    fn start_storing(&mut self, now: SimTime, ji: usize, stage_idx: usize, out: &mut Outbox<Ev>) {
        let producers = self.jobs[ji].stage_tasks.clone();
        let job_id = self.jobs[ji].id;
        let mut created = Vec::new();
        for &p in &producers {
            // A flush is pinned to its producer's node; if that node died or
            // was blacklisted since, the re-hosted rows flush at the
            // replacement instead.
            let mut node = self.tasks.node[p as usize];
            if !self.node_up[node as usize] || self.blacklisted[node as usize] {
                let Some(repl) = self.replacement_node() else {
                    self.abort_job(now, ji, out);
                    return;
                };
                node = repl;
            }
            let id = self.tasks.len() as u32;
            self.tasks.push(Task {
                job: job_id,
                stage: stage_idx as u32,
                kind: TaskKind::Store { producer: p },
                state: TState::Pending,
                node: u32::MAX,
                queued_at: now,
                launched_at: now,
                compute_dur: SimDuration::ZERO,
                pipelined: true,
                pending_io: 0,
                finish_scheduled: false,
                input_bytes: 0.0,
                output_bytes: 0.0,
                records_est: 0,
                records_out: None,
                locality: TaskLocality::NodeLocal,
                prefs: vec![node],
                pinned: true,
                twin: None,
                is_speculative: false,
                attempt: 0,
                doomed: None,
                ghost: false,
            });
            created.push(id);
        }
        for &id in &created {
            self.trace(
                now,
                TE::TaskQueued {
                    task: id,
                    stage: stage_idx as u32,
                    class: memres_trace::TaskClass::Store,
                    attempt: 0,
                },
            );
        }
        let job = &mut self.jobs[ji];
        job.phase = RunPhase::Storing(stage_idx);
        job.remaining = created.len();
        self.enqueue_pending(ji, &created);
        out.immediately(Ev::Dispatch);
    }

    /// Freeze serving-side state before the fetch stage starts: store
    /// read-link capacities (LocalStore), cached fractions (Lustre-local),
    /// and the mass revocation flush (Lustre-shared).
    fn prepare_fetch_serving(&mut self, now: SimTime, ji: usize, out: &mut Outbox<Ev>) {
        let workers = self.spec.workers as usize;
        match self.cfg.shuffle {
            ShuffleStore::Local(dev) => {
                self.net.start_batch();
                for n in 0..workers {
                    let fs = if dev == StoreDevice::Ssd {
                        &self.ssd_fs[n]
                    } else {
                        &self.ram_fs[n]
                    };
                    let bw = effective_read_bw(fs, dev);
                    self.net
                        .set_link_capacity(now, self.store_read_links[n], bw.max(1.0));
                }
                self.net.end_batch();
                self.arm_net(out);
            }
            ShuffleStore::LustreLocal => {
                let files: Vec<Option<LustreFile>> = self.jobs[ji]
                    .shuffle_out
                    .as_ref()
                    .unwrap() // lint:allow(panic): the LustreLocal flush runs while the producing stage's shuffle_out exists
                    .lustre_files
                    .clone();
                for (n, f) in files.iter().enumerate() {
                    let frac = f.map(|lf| self.lustre.cached_fraction(lf)).unwrap_or(0.0);
                    // lint:allow(panic): the LustreLocal flush runs while the producing stage's shuffle_out exists
                    self.jobs[ji].shuffle_out.as_mut().unwrap().cached_frac[n] = frac;
                }
            }
            ShuffleStore::LustreShared => {
                // "Forcing all the intermediate data to be flushed to the
                // OSSes around the same time" — revoke every node file now.
                let files: Vec<(u32, LustreFile)> = self.jobs[ji]
                    .shuffle_out
                    .as_ref()
                    .unwrap() // lint:allow(panic): the LustreLocal flush runs while the producing stage's shuffle_out exists
                    .lustre_files
                    .iter()
                    .enumerate()
                    .filter_map(|(n, f)| f.map(|lf| (n as u32, lf)))
                    .collect();
                let mut pending = 0;
                for (n, lf) in files {
                    let dirty = self.lustre.revoke(now, lf);
                    if dirty > 0.0 {
                        pending += 1;
                        let path = self
                            .fabric
                            .path(Endpoint::Node(NodeId(n)), Endpoint::Lustre);
                        let f = self.net.open_flow(now, path, true);
                        let wire = dirty / self.lustre.config().write_efficiency;
                        self.net.push_chunk(now, f, Bytes(wire), NetTag::Flush);
                    }
                }
                let sh = self.jobs[ji].shuffle_out.as_mut().unwrap(); // lint:allow(panic): the LustreLocal flush runs while the producing stage's shuffle_out exists
                sh.flush_pending = pending;
                sh.flush_done = pending == 0;
                self.arm_net(out);
            }
        }
    }

    /// A Lustre-shared fetch task is transfer-eligible (its MDS ops are done
    /// AND the mass flush finished): schedule the OSS read one revocation
    /// round trip out. The flow itself opens when [`Ev::LustreSharedRead`]
    /// fires, so the flow network's clock never runs ahead of sim time
    /// (other resident jobs keep mutating it inside the latency window).
    fn lustre_shared_transfer(&mut self, now: SimTime, task: u32, out: &mut Outbox<Ev>) {
        let start = now + self.lustre.config().revoke_latency;
        self.trace(
            now,
            TE::LockWaitFor {
                task,
                dur: self.lustre.config().revoke_latency,
            },
        );
        out.at(
            start,
            Ev::LustreSharedRead {
                task,
                attempt: self.tasks.attempt[task as usize],
                job: self.tasks.job[task as usize],
            },
        );
    }

    /// The deferred OSS read of [`SimWorld::lustre_shared_transfer`].
    fn lustre_shared_read(&mut self, now: SimTime, task: u32, out: &mut Outbox<Ev>) {
        let node = self.tasks.node[task as usize];
        let total = self.tasks.input_bytes[task as usize];
        let compress = if self.cfg.spark.shuffle_compress {
            self.cfg.spark.shuffle_compress_ratio
        } else {
            1.0
        };
        let wire = inflate_for_requests(
            Bytes(total * compress),
            self.cfg.spark.reducer_max_bytes_in_flight,
            self.cfg.spark.per_request_overhead_bytes,
        );
        let path = self
            .fabric
            .path(Endpoint::Lustre, Endpoint::Node(NodeId(node)));
        let f = self.net.open_flow(now, path, true);
        let tag = self.net_tag(task);
        self.net.push_chunk(now, f, wire, tag);
        self.arm_net(out);
    }

    fn on_flush_progress(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        // Flush chunks carry no job identity; attribute the progress to the
        // first resident job (admission order) still waiting on a flush —
        // flush counts are per-job, so order within the set is immaterial.
        let Some(sh) = self.jobs.iter_mut().find_map(|job| {
            job.shuffle_in
                .as_mut()
                .or(job.shuffle_out.as_mut())
                .filter(|sh| sh.flush_pending > 0)
        }) else {
            return;
        };
        sh.flush_pending -= 1;
        if sh.flush_pending == 0 && !sh.flush_done {
            sh.flush_done = true;
            let waiting = std::mem::take(&mut sh.waiting_for_flush);
            for task in waiting {
                self.trace(now, TE::LockWaitEnd { task });
                self.lustre_shared_transfer(now, task, out);
            }
        }
    }

    // ---------------- fault handling & recovery ----------------

    /// First live, non-blacklisted node: the deterministic re-host target
    /// for pinned work and re-hosted shuffle rows.
    fn replacement_node(&self) -> Option<u32> {
        (0..self.spec.workers).find(|&n| self.node_up[n as usize] && !self.blacklisted[n as usize])
    }

    /// Fail a running attempt: account the wasted work, reset the task to
    /// Pending with a bumped attempt number (orphaning any in-flight I/O and
    /// finish events of the old attempt), then re-queue it — after `backoff`
    /// if nonzero. `attribute` counts the failure against the node for
    /// blacklisting; crash- and fetch-induced failures don't.
    fn fail_task(
        &mut self,
        now: SimTime,
        task: u32,
        backoff: SimDuration,
        attribute: bool,
        out: &mut Outbox<Ev>,
    ) {
        let node = self.tasks.node[task as usize];
        let wasted = now
            .since(self.tasks.launched_at[task as usize])
            .as_secs_f64();
        if let Some(rec) = self.metrics.recovery(self.tasks.job[task as usize]) {
            rec.wasted_secs += wasted;
            rec.tasks_retried += 1;
        }
        self.trace(
            now,
            TE::TaskRetried {
                task,
                node,
                attempt: self.tasks.attempt[task as usize],
                wasted: now.since(self.tasks.launched_at[task as usize]),
                backoff,
            },
        );
        if self.node_up[node as usize] {
            self.free_slots[node as usize] += 1;
            self.note_slot_change(node);
            // A failed flush abandons its partial output: reclaim the space.
            if matches!(self.tasks.kind[task as usize], TaskKind::Store { .. }) {
                if let ShuffleStore::Local(dev) = self.cfg.shuffle {
                    let file = self
                        .job_of(task)
                        .shuffle_out
                        .as_ref()
                        .and_then(|sh| sh.local_files[node as usize]);
                    if let Some(file) = file {
                        let bytes = self.tasks.output_bytes[task as usize];
                        let fs = if dev == StoreDevice::Ssd {
                            &mut self.ssd_fs[node as usize]
                        } else {
                            &mut self.ram_fs[node as usize]
                        };
                        fs.truncate(file, Bytes(bytes));
                    }
                }
            }
        }
        {
            let i = task as usize;
            self.tasks.set_state(task, TState::Pending);
            self.tasks.node[i] = u32::MAX;
            self.tasks.attempt[i] += 1;
            self.tasks.doomed[i] = None;
            self.tasks.pending_io[i] = 0;
            self.tasks.finish_scheduled[i] = false;
            self.tasks.records_out[i] = None;
            self.tasks.compute_dur[i] = SimDuration::ZERO;
            self.tasks.queued_at[i] = now;
        }
        if self.tasks.attempt[task as usize] >= self.cfg.recovery.max_task_attempts {
            let ji = self.job_index_of(task);
            self.abort_job(now, ji, out);
            return;
        }
        if attribute && self.node_up[node as usize] && !self.blacklisted[node as usize] {
            self.node_fail_counts[node as usize] += 1;
            if self.node_fail_counts[node as usize] >= self.cfg.recovery.blacklist_after {
                self.blacklisted[node as usize] = true;
                self.note_slot_change(node);
                if let Some(rec) = self.metrics.recovery(self.tasks.job[task as usize]) {
                    rec.blacklisted_nodes += 1;
                }
                self.trace(now, TE::Blacklisted { node });
                self.repin_pinned_off(node);
            }
        }
        // Drop dead/blacklisted nodes from the task's preferences; a pinned
        // task left with nowhere to go re-pins to the replacement.
        let keep: Vec<u32> = self.tasks.prefs[task as usize]
            .iter()
            .copied()
            .filter(|&n| self.node_up[n as usize] && !self.blacklisted[n as usize])
            .collect();
        if self.tasks.pinned[task as usize] && keep.is_empty() {
            let Some(repl) = self.replacement_node() else {
                let ji = self.job_index_of(task);
                self.abort_job(now, ji, out);
                return;
            };
            self.tasks.prefs[task as usize] = vec![repl];
        } else {
            self.tasks.prefs[task as usize] = keep;
        }
        self.trace(
            now,
            TE::TaskQueued {
                task,
                stage: self.tasks.stage[task as usize],
                class: Self::trace_class(self.tasks.kind[task as usize]),
                attempt: self.tasks.attempt[task as usize],
            },
        );
        if backoff > SimDuration::ZERO {
            out.after(
                backoff,
                Ev::Requeue {
                    task,
                    job: self.tasks.job[task as usize],
                },
            );
            // Bugfix (DESIGN.md §4.14): the backoff requeue is the only
            // slot-freeing path that does not schedule a Dispatch. If the
            // last dispatch pass starved (no available node, no retry wake),
            // the freed slot must re-arm dispatch or pending work wedges
            // until an unrelated event happens along.
            if self.dispatch_starved && self.node_up[node as usize] {
                self.dispatch_starved = false;
                out.immediately(Ev::Dispatch);
            }
        } else {
            let ji = self.job_index_of(task);
            self.enqueue_pending(ji, &[task]);
            out.immediately(Ev::Dispatch);
        }
    }

    /// Re-pin pending pinned tasks away from a dead/blacklisted node. Their
    /// queue entries on the old node are left behind; dispatch never visits
    /// that node, and `pick` tolerates duplicates.
    fn repin_pinned_off(&mut self, node: u32) {
        let Some(repl) = self.replacement_node() else {
            return;
        };
        let mut moved = Vec::new();
        for i in 0..self.tasks.len() {
            if self.tasks.state[i] == TState::Pending
                && self.tasks.pinned[i]
                && self.tasks.prefs[i].first() == Some(&node)
            {
                self.tasks.prefs[i] = vec![repl];
                moved.push(i as u32);
            }
        }
        for id in moved {
            let ji = self.job_index_of(id);
            self.jobs[ji].prefs_q[repl as usize].push_back(id);
        }
    }

    /// Give up on one job: a task exhausted its attempt budget or no live
    /// node remains. Mirrors Spark's job abort after repeated task failure.
    /// Other resident jobs keep running.
    fn abort_job(&mut self, now: SimTime, ji: usize, out: &mut Outbox<Ev>) {
        let id = self.jobs[ji].id;
        if let Some(rec) = self.metrics.recovery(id) {
            rec.aborted_jobs += 1;
        }
        self.trace(
            now,
            TE::JobEnd {
                job: id,
                aborted: true,
            },
        );
        let job = self.jobs.remove(ji);
        // Retire the aborted job's tasks. Running ones hand their slot back
        // (the stale-completion filter drops their in-flight IO); queue
        // entries die with the JobRun.
        for i in 0..self.tasks.len() {
            if self.tasks.job[i] != id {
                continue;
            }
            match self.tasks.state[i] {
                TState::Pending => self.tasks.set_state(i as u32, TState::Done),
                TState::Running => {
                    let node = self.tasks.node[i];
                    self.tasks.set_state(i as u32, TState::Done);
                    if node != u32::MAX && self.node_up[node as usize] {
                        self.free_slots[node as usize] += 1;
                        self.note_slot_change(node);
                    }
                }
                TState::Done => {}
            }
        }
        {
            let tasks = &self.tasks;
            self.pending_chains
                .retain(|c| tasks.job[c.task as usize] != id);
        }
        let output = JobOutput {
            count: 0,
            records: None,
            reduced: None,
            aborted: true,
        };
        self.last_output = Some(output.clone());
        let metrics = self.metrics.finish_job(id, now);
        self.note_job_latency(job.tenant, job.arrived, now);
        self.finished.push_back(FinishedJob {
            id,
            tenant: job.tenant,
            arrived: job.arrived,
            admitted: job.admitted,
            finished: now,
            output,
            metrics,
        });
        if self.jobs.is_empty() {
            self.tasks.clear();
        }
        self.on_job_departure(now, job.tenant, out);
        self.job_done = self.jobs.is_empty() && self.stream_drained();
        if self.job_done {
            // Tear the stream down so the driver can submit again later.
            self.stream = None;
        }
    }

    /// A node dies: its slots, running work, cached partitions and (for a
    /// node-local store) deposited intermediate rows are gone. Running tasks
    /// re-queue; lost rows are re-hosted at a replacement node and the work
    /// that produced them is redone as time-only ghost tasks, so the job's
    /// output matches a fault-free run while the recovery time is charged in
    /// full.
    fn node_crash(
        &mut self,
        now: SimTime,
        node: u32,
        restart: Option<SimDuration>,
        out: &mut Outbox<Ev>,
    ) {
        if !self.node_up[node as usize] {
            return;
        }
        self.metrics.recovery_all(|r| r.node_crashes += 1);
        self.node_up[node as usize] = false;
        self.trace(now, TE::NodeDown { node });
        let lost = self.blockmgr.drop_node(node);
        let n_lost = lost.len() as u64;
        self.metrics.recovery_all(|r| r.blocks_lost += n_lost);
        if !lost.is_empty() {
            self.trace(
                now,
                TE::BlocksLost {
                    node,
                    blocks: lost.len() as u64,
                },
            );
        }
        if let Some(d) = restart {
            out.after(d, Ev::NodeRestart { node });
        }
        // Fail everything running there (node_up is already false, so
        // fail_task won't hand slots back to the dead node).
        let running: Vec<u32> = (0..self.tasks.len())
            .filter(|&i| self.tasks.state[i] == TState::Running && self.tasks.node[i] == node)
            .map(|i| i as u32)
            .collect();
        for id in running {
            // A failure can abort the owning job, retiring its siblings (and,
            // when it was the last resident job, clearing the whole arena).
            if id as usize >= self.tasks.len() || self.tasks.state[id as usize] != TState::Running {
                continue;
            }
            self.fail_task(now, id, SimDuration::ZERO, false, out);
        }
        self.free_slots[node as usize] = 0;
        self.note_slot_change(node);
        if self.jobs.is_empty() {
            return;
        }
        let Some(repl) = self.replacement_node() else {
            // No live node left: every resident job dies with the cluster.
            while !self.jobs.is_empty() {
                self.abort_job(now, 0, out);
            }
            return;
        };
        self.repin_pinned_off(node);
        // Fetch tasks mid-pull from the dead node retry with backoff (the
        // shared Lustre store serves every byte from the OSSes — nothing to
        // retry there beyond the reducers that died with the node).
        if !matches!(self.cfg.shuffle, ShuffleStore::LustreShared) {
            self.fail_fetches_from(now, node, out);
            if self.jobs.is_empty() {
                return;
            }
        }
        let local_store = matches!(self.cfg.shuffle, ShuffleStore::Local(_));
        for job in &mut self.jobs {
            // Rows of the shuffle being produced live in executor memory or
            // the node-local store: re-host them. Rows already consumed from
            // Lustre survive the crash on the OSSes.
            if let Some(sh) = job.shuffle_out.as_mut() {
                Self::move_shuffle_rows(sh, node as usize, repl as usize);
            }
            if let Some(sh) = job.shuffle_in.as_mut() {
                if local_store {
                    Self::move_shuffle_rows(sh, node as usize, repl as usize);
                } else {
                    // Server page cache died with the node; refetches stream
                    // from the OSSes instead.
                    sh.cached_frac[node as usize] = 0.0;
                }
            }
            job.intermediate[repl as usize] += job.intermediate[node as usize];
            job.intermediate[node as usize] = 0.0;
        }
        self.trace(
            now,
            TE::Rehost {
                from: node,
                to: repl,
            },
        );
        for ji in 0..self.jobs.len() {
            self.spawn_crash_ghosts(now, ji, node, repl, local_store);
        }
        out.immediately(Ev::Dispatch);
    }

    /// Fail every running fetch task currently pulling rows from `src`.
    fn fail_fetches_from(&mut self, now: SimTime, src: u32, out: &mut Outbox<Ev>) {
        let victims: Vec<u32> = (0..self.tasks.len())
            .filter(|&i| {
                self.tasks.state[i] == TState::Running
                    && matches!(self.tasks.kind[i], TaskKind::Fetch { reducer }
                        if self
                            .jobs
                            .iter()
                            .find(|j| j.id == self.tasks.job[i])
                            .and_then(|j| j.shuffle_in.as_ref())
                            .map(|sh| sh.buckets.get(src as usize, reducer as usize) > 0.0)
                            .unwrap_or(false))
            })
            .map(|i| i as u32)
            .collect();
        for id in victims {
            // A prior failure may have aborted the owning job (or cleared
            // the arena entirely) — skip stale victims.
            if id as usize >= self.tasks.len() || self.tasks.state[id as usize] != TState::Running {
                continue;
            }
            let att = self.tasks.attempt[id as usize].min(8);
            let backoff = self
                .cfg
                .recovery
                .fetch_backoff
                .mul_f64(2f64.powi(att as i32));
            if let Some(rec) = self.metrics.recovery(self.tasks.job[id as usize]) {
                rec.failed_fetches += 1;
                rec.fetch_retries += 1;
            }
            self.fail_task(now, id, backoff, false, out);
        }
    }

    /// Move every deposited row of `dead` to `repl` in one shuffle state:
    /// recovery re-hosts the data, and ghost tasks recharge the time it took
    /// to produce it. The dead node's store file is forgotten, so relaunched
    /// fetches read from the replacement.
    fn move_shuffle_rows(sh: &mut ShuffleState, dead: usize, repl: usize) {
        sh.buckets.move_node(dead, repl);
        if let Some(real) = sh.node_real.as_mut() {
            let moved = std::mem::replace(&mut real[dead], vec![Vec::new(); sh.reducers as usize]);
            for (b, mut recs) in moved.into_iter().enumerate() {
                real[repl][b].append(&mut recs);
            }
        }
        sh.local_files[dead] = None;
        sh.cached_frac[dead] = 0.0;
    }

    /// Redo the dead node's finished producer work as time-only ghosts
    /// pinned to the replacement: recompute ghosts for its compute tasks of
    /// the stage feeding the live shuffle, and re-flush ghosts for its store
    /// tasks when the store died with the node.
    fn spawn_crash_ghosts(
        &mut self,
        now: SimTime,
        ji: usize,
        node: u32,
        repl: u32,
        local_store: bool,
    ) {
        let job_id = self.jobs[ji].id;
        let (producing_stage, has_shuffle_out) = {
            let job = &self.jobs[ji];
            let producing = match job.phase {
                RunPhase::Stage(idx) => {
                    if job.plan.stages[idx].has_shuffle_output() {
                        Some(idx as u32)
                    } else if matches!(job.plan.stages[idx].input, StageInput::Shuffle(_))
                        && idx > 0
                    {
                        // Fetch phase: the consumed rows came from stage idx-1.
                        Some(idx as u32 - 1)
                    } else {
                        None
                    }
                }
                RunPhase::Storing(idx) => Some(idx as u32),
            };
            (producing, job.shuffle_out.is_some())
        };
        let mut ghosts: Vec<(u32, TaskKind)> = Vec::new();
        for i in 0..self.tasks.len() {
            if self.tasks.state[i] != TState::Done
                || self.tasks.node[i] != node
                || self.tasks.job[i] != job_id
            {
                continue;
            }
            match self.tasks.kind[i] {
                TaskKind::Compute { .. } if Some(self.tasks.stage[i]) == producing_stage => {
                    ghosts.push((self.tasks.stage[i], self.tasks.kind[i]));
                }
                TaskKind::Store { .. } if has_shuffle_out && local_store => {
                    ghosts.push((self.tasks.stage[i], self.tasks.kind[i]));
                }
                _ => {}
            }
        }
        if ghosts.is_empty() {
            return;
        }
        let mut created = Vec::with_capacity(ghosts.len());
        for (stage, kind) in ghosts {
            if matches!(kind, TaskKind::Compute { .. }) {
                if let Some(rec) = self.metrics.recovery(job_id) {
                    rec.recomputed_partitions += 1;
                }
            }
            let id = self.tasks.len() as u32;
            self.tasks.push(Task {
                job: job_id,
                stage,
                kind,
                state: TState::Pending,
                node: u32::MAX,
                queued_at: now,
                launched_at: now,
                compute_dur: SimDuration::ZERO,
                pipelined: true,
                pending_io: 0,
                finish_scheduled: false,
                input_bytes: 0.0,
                output_bytes: 0.0,
                records_est: 0,
                records_out: None,
                locality: TaskLocality::Any,
                prefs: vec![repl],
                pinned: true,
                twin: None,
                is_speculative: false,
                attempt: 0,
                doomed: None,
                ghost: true,
            });
            created.push(id);
        }
        self.trace(
            now,
            TE::GhostsSpawned {
                node,
                count: created.len() as u32,
            },
        );
        for &id in &created {
            self.trace(
                now,
                TE::TaskQueued {
                    task: id,
                    stage: self.tasks.stage[id as usize],
                    class: Self::trace_class(self.tasks.kind[id as usize]),
                    attempt: 0,
                },
            );
        }
        self.jobs[ji].remaining += created.len();
        self.enqueue_pending(ji, &created);
    }

    /// Apply a scheduled fault-plan event.
    fn apply_fault(&mut self, now: SimTime, idx: usize, out: &mut Outbox<Ev>) {
        let Some(kind) = self
            .cfg
            .faults
            .as_ref()
            .and_then(|p| p.events.get(idx))
            .map(|e| e.kind)
        else {
            return;
        };
        self.trace(
            now,
            TE::FaultInjected {
                kind: kind.label(),
                node: kind.node().unwrap_or(u32::MAX),
            },
        );
        match kind {
            FaultKind::NodeCrash { node, restart } => self.node_crash(now, node, restart, out),
            FaultKind::BlockLoss { node } => {
                // Executor memory loss: cached partitions evaporate, the
                // node itself keeps running. Lineage rebuilds them on demand.
                let lost = self.blockmgr.drop_node(node);
                let n_lost = lost.len() as u64;
                self.metrics.recovery_all(|r| r.blocks_lost += n_lost);
            }
            FaultKind::SsdDegrade { node, factor } => {
                self.metrics.recovery_all(|r| r.ssd_degradations += 1);
                self.ssd_fs[node as usize].degrade_device(now, factor);
                self.arm_fs(node, true, out);
                if let ShuffleStore::Local(StoreDevice::Ssd) = self.cfg.shuffle {
                    let bw = effective_read_bw(&self.ssd_fs[node as usize], StoreDevice::Ssd);
                    let link = self.store_read_links[node as usize];
                    self.net.set_link_capacity(now, link, bw.max(1.0));
                    self.arm_net(out);
                }
            }
            FaultKind::FetchFail { src } => self.fail_fetches_from(now, src, out),
            // Consumed at launch via `doomed_launches`.
            FaultKind::TaskFail { .. } => {}
        }
    }

    fn finish_job(&mut self, now: SimTime, ji: usize, out: &mut Outbox<Ev>) {
        let job = self.jobs.remove(ji);
        self.trace(
            now,
            TE::JobEnd {
                job: job.id,
                aborted: false,
            },
        );
        let mut count = 0u64;
        let mut records: Vec<Record> = Vec::new();
        let mut have_real = true;
        for &t in &job.final_tasks {
            let i = t as usize;
            count += self.tasks.records_est[i];
            match &self.tasks.records_out[i] {
                Some(r) => records.extend(r.iter().cloned()),
                None => have_real = false,
            }
        }
        let output = match &job.plan.action {
            Action::Count => JobOutput {
                count: if have_real {
                    records.len() as u64
                } else {
                    count
                },
                records: None,
                reduced: None,
                aborted: false,
            },
            Action::Collect => JobOutput {
                count: if have_real {
                    records.len() as u64
                } else {
                    count
                },
                records: have_real.then_some(records),
                reduced: None,
                aborted: false,
            },
            Action::Reduce(f) => {
                let reduced = have_real.then(|| {
                    records
                        .into_iter()
                        .map(|(_, v)| v)
                        .reduce(|a, b| f(a, b))
                        .unwrap_or(Value::Null)
                });
                JobOutput {
                    count,
                    records: None,
                    reduced,
                    aborted: false,
                }
            }
        };
        self.last_output = Some(output.clone());
        let metrics = self.metrics.finish_job(job.id, now);
        self.note_job_latency(job.tenant, job.arrived, now);
        self.finished.push_back(FinishedJob {
            id: job.id,
            tenant: job.tenant,
            arrived: job.arrived,
            admitted: job.admitted,
            finished: now,
            output,
            metrics,
        });
        if self.jobs.is_empty() {
            self.tasks.clear();
        }
        self.on_job_departure(now, job.tenant, out);
        self.job_done = self.jobs.is_empty() && self.stream_drained();
        if self.job_done {
            // Tear the stream down so the driver can submit again later.
            self.stream = None;
        }
    }
}

enum IoPlan {
    None,
    HdfsRead { block: BlockId, src: NodeId },
    LustreRead { file: LustreFile },
    NetOnly { src: u32, bytes: f64 },
}

/// Effective serving-read bandwidth of a shuffle store, mixing page-cache
/// hits with device reads (harmonic mean), GC-aware for SSDs.
fn effective_read_bw(fs: &LocalFs, dev: StoreDevice) -> f64 {
    let dev_bw = fs.device().current_read_bandwidth();
    if dev == StoreDevice::RamDisk {
        return dev_bw;
    }
    let stored = fs.used().max(1.0);
    const CACHE: f64 = 6.0 * 1024.0 * 1024.0 * 1024.0;
    let cache_frac = (CACHE / stored).clamp(0.0, 1.0);
    let mem_bw = 3.0e9;
    1.0 / (cache_frac / mem_bw + (1.0 - cache_frac) / dev_bw)
}

/// Apply a stage's narrow chain. Returns (compute seconds, output bytes,
/// output records, real output, cache snapshots).
///
/// Zero-copy contract: the shared input is never deep-copied. A chain with
/// no steps passes the input `Arc` straight through (placement, caching and
/// task output all share one allocation), and every cache snapshot is a
/// reference bump of the value at that point.
fn run_narrow_chain(
    stage: &StagePlan,
    in_bytes: f64,
    in_records: u64,
    data: Option<Arc<[Record]>>,
    speed: f64,
) -> ChainOut {
    let mut secs = 0.0;
    let mut bytes = in_bytes;
    let mut records = in_records;
    let mut real: Option<Arc<[Record]>> = data;
    let mut snaps = Vec::new();
    for (cp_idx, rdd) in &stage.cache_points {
        if *cp_idx == 0 {
            snaps.push((*rdd, bytes, records, real.clone()));
        }
    }
    for (i, step) in stage.steps.iter().enumerate() {
        secs += bytes / (step.size.compute_rate * speed);
        match &real {
            Some(recs) => {
                let out = step.apply_slice(recs);
                bytes = out.iter().map(record_bytes).sum::<u64>() as f64;
                records = out.len() as u64;
                real = Some(out.into());
            }
            None => {
                bytes *= step.size.bytes_factor;
                records = ((records as f64) * step.size.records_factor).round() as u64;
            }
        }
        for (cp_idx, rdd) in &stage.cache_points {
            if *cp_idx == i + 1 {
                snaps.push((*rdd, bytes, records, real.clone()));
            }
        }
    }
    (
        SimDuration::from_secs_f64(secs),
        bytes,
        records,
        real,
        snaps,
    )
}

fn apply_agg(agg: &ShuffleAgg, records: Vec<Record>) -> Vec<Record> {
    use std::collections::BTreeMap;
    // Deterministic output ordering via the stable key hash.
    let mut groups: BTreeMap<u64, (Value, Vec<Value>)> = BTreeMap::new();
    for (k, v) in records {
        groups
            .entry(k.stable_hash())
            .or_insert_with(|| (k.clone(), Vec::new()))
            .1
            .push(v);
    }
    match agg {
        ShuffleAgg::GroupByKey => groups
            .into_values()
            .map(|(k, vs)| (k, Value::list(vs)))
            .collect(),
        ShuffleAgg::ReduceByKey(f) => groups
            .into_values()
            .map(|(k, vs)| {
                let folded = vs
                    .into_iter()
                    .reduce(|a, b| f(a, b))
                    .expect("nonempty group"); // lint:allow(panic): group_by_key materializes at least one row per emitted key by construction
                (k, folded)
            })
            .collect(),
    }
}

impl Model for SimWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<Ev>) {
        match event {
            Ev::NetWake(gen) => {
                if !gen.is_current(self.net.gen()) {
                    return;
                }
                let delivered = self.net.poll(now);
                let mut flushed = 0u32;
                for d in delivered {
                    match d.tag {
                        NetTag::TaskIo { task, attempt, job } => {
                            self.task_io_done(now, task, attempt, job, out)
                        }
                        NetTag::Flush => flushed += 1,
                    }
                }
                for _ in 0..flushed {
                    self.on_flush_progress(now, out);
                }
                self.arm_net(out);
            }
            Ev::FsWake { node, ssd, gen } => {
                let fs = if ssd {
                    &self.ssd_fs[node as usize]
                } else {
                    &self.ram_fs[node as usize]
                };
                if !gen.is_current(fs.gen()) {
                    return;
                }
                let fs = if ssd {
                    &mut self.ssd_fs[node as usize]
                } else {
                    &mut self.ram_fs[node as usize]
                };
                let done = fs.poll(now);
                for d in done {
                    let (task, attempt, job) = Self::unpack_io_tag(d.tag);
                    self.task_io_done(now, task, attempt, job, out);
                }
                self.arm_fs(node, ssd, out);
                // Keep the store-serving link in sync with SSD GC state.
                if ssd {
                    if let ShuffleStore::Local(StoreDevice::Ssd) = self.cfg.shuffle {
                        let bw = effective_read_bw(&self.ssd_fs[node as usize], StoreDevice::Ssd);
                        let link = self.store_read_links[node as usize];
                        let cur = self.net.link_capacity(link);
                        if (bw - cur).abs() / cur > 0.05 {
                            self.net.set_link_capacity(now, link, bw.max(1.0));
                            self.arm_net(out);
                        }
                    }
                }
            }
            Ev::LustreWake(gen) => {
                if !gen.is_current(self.lustre.gen()) {
                    return;
                }
                let done = self.lustre.poll(now);
                for tag in done {
                    let (task, attempt, job) = Self::unpack_io_tag(tag);
                    // Guard before indexing: a stale completion may refer to
                    // a task of an already-finished (or aborted) job.
                    if self.completion_is_stale(task, attempt, job) {
                        continue;
                    }
                    let is_shared_fetch = matches!(self.cfg.shuffle, ShuffleStore::LustreShared)
                        && matches!(self.tasks.kind[task as usize], TaskKind::Fetch { .. });
                    self.task_io_done(now, task, attempt, job, out);
                    if is_shared_fetch {
                        let ready = self
                            .job_of(task)
                            .shuffle_in
                            .as_ref()
                            .map(|sh| sh.flush_done)
                            .unwrap_or(true);
                        if ready {
                            self.lustre_shared_transfer(now, task, out);
                        } else {
                            self.trace(now, TE::LockWaitStart { task });
                            self.job_of_mut(task)
                                .shuffle_in
                                .as_mut()
                                .unwrap() // lint:allow(panic): flush gating runs only during a fetch stage, which has shuffle_in
                                .waiting_for_flush
                                .push(task);
                        }
                    }
                }
                self.arm_lustre(out);
            }
            Ev::TaskFinish { task, attempt, job } => {
                self.on_task_finish(now, task, attempt, job, out)
            }
            Ev::Requeue { task, job } => {
                // Job ids are never reused, so an id match proves the task
                // still belongs to a resident job (abort marks tasks Done).
                if (task as usize) < self.tasks.len()
                    && self.tasks.job[task as usize] == job
                    && self.tasks.state[task as usize] == TState::Pending
                {
                    let ji = self.job_index_of(task);
                    self.enqueue_pending(ji, &[task]);
                    out.immediately(Ev::Dispatch);
                }
            }
            Ev::Fault { idx } => self.apply_fault(now, idx, out),
            Ev::NodeRestart { node } => {
                if !self.node_up[node as usize] {
                    self.node_up[node as usize] = true;
                    self.free_slots[node as usize] = self.spec.cores_per_node;
                    self.note_slot_change(node);
                    self.node_fail_counts[node as usize] = 0;
                    self.metrics.recovery_all(|r| r.node_restarts += 1);
                    self.trace(now, TE::NodeUp { node });
                    self.dispatch_starved = false;
                    out.immediately(Ev::Dispatch);
                } else if self.blacklisted[node as usize] {
                    // Restarting a live-but-blacklisted executor clears the
                    // blacklist (the fresh process starts with a clean fault
                    // record); its slots become eligible again, so re-arm
                    // dispatch — without this, a fully-blacklisted cluster
                    // wedges even after every executor recovers.
                    self.blacklisted[node as usize] = false;
                    self.node_fail_counts[node as usize] = 0;
                    self.note_slot_change(node);
                    self.trace(now, TE::NodeUp { node });
                    self.dispatch_starved = false;
                    out.immediately(Ev::Dispatch);
                }
            }
            Ev::JobArrival { tenant, k } => self.on_job_arrival(now, tenant, k, out),
            Ev::LustreSharedRead { task, attempt, job } => {
                // The task may have failed or its job departed during the
                // revocation round trip; a stale read start is a no-op.
                if !self.completion_is_stale(task, attempt, job) {
                    self.lustre_shared_read(now, task, out);
                }
            }
            Ev::Dispatch | Ev::DispatchNode { .. } => self.dispatch(now, out),
            Ev::SpeedResample => {
                self.speeds.resample();
                if let Some(p) = self.speeds.resample_period() {
                    out.after(SimDuration::from_secs_f64(p), Ev::SpeedResample);
                }
            }
            Ev::MetricsSample => {
                if let Some(interval) = self.recorder.as_ref().map(|r| r.interval()) {
                    self.sample_metrics(now);
                    // Always chain: the driver stops stepping at job_done,
                    // so the tail tick dies with the run (or picks sampling
                    // back up if another job is submitted on this world).
                    out.after(interval, Ev::MetricsSample);
                }
            }
        }
    }

    fn wants_engine_stats(&self) -> bool {
        self.recorder.is_some()
    }

    fn observe_engine(&mut self, stats: EngineStats) {
        self.engine_stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use memres_cluster::tiny;

    fn world() -> SimWorld {
        SimWorld::new(tiny(4), EngineConfig::default())
    }

    #[test]
    fn executor_thread_resolution() {
        // Explicit config beats the environment; the env parser rejects junk
        // and zero (a pool of zero threads would deadlock the commit loop).
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(None), None);
        let cfg = EngineConfig::default().with_executor_threads(3);
        assert_eq!(resolve_executor_threads(&cfg), 3);
        assert!(resolve_executor_threads(&EngineConfig::default()) >= 1);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let w = world();
        let j = w.cfg.task_jitter;
        assert!(j > 0.0);
        for task in 0..500u32 {
            let a = w.jitter(task);
            let b = w.jitter(task);
            assert_eq!(a, b, "jitter must be a pure function of (task, seed)");
            assert!((1.0 - j..=1.0 + j).contains(&a), "out of range: {a}");
        }
        // Different tasks get different jitter (not a constant).
        assert_ne!(w.jitter(1), w.jitter(2));
    }

    #[test]
    fn jitter_disabled_when_zero() {
        let mut w = world();
        w.cfg.task_jitter = 0.0;
        assert_eq!(w.jitter(42), 1.0);
    }

    #[test]
    fn effective_read_bw_blends_cache_and_device() {
        use memres_storage::{CacheConfig, LocalFs, RamDisk};
        // RAMDisk store: always the device rate.
        let fs = LocalFs::new(Box::new(RamDisk::new(5e9, 4e9)), 1e12, None);
        assert_eq!(effective_read_bw(&fs, StoreDevice::RamDisk), 5e9);
        // SSD store with little data: cache-dominated (≈ mem speed).
        let mut ssd_fs = LocalFs::new(
            Box::new(Ssd::new(SsdConfig::hyperion())),
            1e12,
            Some(CacheConfig::hyperion()),
        );
        ssd_fs.preload(FileId(1), Bytes(1e9)); // 1 GB stored, fully cacheable
        let hot = effective_read_bw(&ssd_fs, StoreDevice::Ssd);
        assert!(hot > 2.0e9, "mostly cached: {hot}");
        // With far more data than cache: near device read speed.
        ssd_fs.preload(FileId(2), Bytes(500e9));
        let cold = effective_read_bw(&ssd_fs, StoreDevice::Ssd);
        assert!(cold < 700e6, "mostly device: {cold}");
        assert!(cold >= 500e6, "never below device rate: {cold}");
    }

    #[test]
    fn elb_declines_only_over_threshold_nodes() {
        let mut w = SimWorld::new(tiny(4), EngineConfig::default().with_elb());
        // Fake a depositing stage with skewed intermediate data.
        let plan = crate::dag::build_plan(
            &crate::rdd::Rdd::source(crate::rdd::Dataset::generated(1e6, 1e5, 10.0))
                .group_by_key(Some(2), 1e9),
            crate::rdd::Action::Count,
            &Default::default(),
        );
        let mut out = memres_des::Outbox::standalone(SimTime::ZERO);
        w.submit_job(SimTime::ZERO, plan, &mut out);
        w.jobs[0].intermediate = vec![100.0, 10.0, 10.0, 10.0];
        assert!(w.elb_declines(0, 0), "node 0 holds >1.25x the average");
        assert!(!w.elb_declines(0, 1));
    }

    #[test]
    fn apply_agg_groups_and_reduces() {
        use crate::rdd::ShuffleAgg;
        let recs = vec![
            (Value::I64(1), Value::I64(10)),
            (Value::I64(2), Value::I64(20)),
            (Value::I64(1), Value::I64(30)),
        ];
        let grouped = apply_agg(&ShuffleAgg::GroupByKey, recs.clone());
        assert_eq!(grouped.len(), 2);
        let total: usize = grouped.iter().map(|(_, v)| v.as_list().len()).sum();
        assert_eq!(total, 3);
        let reduced = apply_agg(
            &ShuffleAgg::ReduceByKey(Arc::new(|a, b| Value::I64(a.as_i64() + b.as_i64()))),
            recs,
        );
        let m: std::collections::HashMap<i64, i64> = reduced
            .into_iter()
            .map(|(k, v)| (k.as_i64(), v.as_i64()))
            .collect();
        assert_eq!(m[&1], 40);
        assert_eq!(m[&2], 20);
    }

    #[test]
    fn run_narrow_chain_synthetic_factors() {
        use crate::rdd::{NarrowKind, NarrowStep, SizeModel};
        let stage = crate::dag::StagePlan {
            input: crate::dag::StageInput::Cached {
                rdd: crate::rdd::RddId(0),
            },
            steps: vec![
                Arc::new(NarrowStep {
                    name: "half".into(),
                    kind: NarrowKind::Map(Arc::new(|r| r)),
                    size: SizeModel::new(0.5, 1.0, 100.0),
                }),
                Arc::new(NarrowStep {
                    name: "double".into(),
                    kind: NarrowKind::Map(Arc::new(|r| r)),
                    size: SizeModel::new(2.0, 1.0, 100.0),
                }),
            ],
            cache_points: vec![],
            shuffle_out: None,
        };
        let (dur, bytes, records, real, snaps) = run_narrow_chain(&stage, 1000.0, 10, None, 1.0);
        assert!((bytes - 1000.0).abs() < 1e-9, "0.5 then 2.0 round-trips");
        assert_eq!(records, 10);
        assert!(real.is_none());
        assert!(snaps.is_empty());
        // time = 1000/100 + 500/100 = 15s at speed 1.
        assert!((dur.as_secs_f64() - 15.0).abs() < 1e-9);
    }

    fn placed_plan(parts: usize) -> crate::dag::JobPlan {
        let recs: Vec<crate::value::Record> = (0..256)
            .map(|i| (crate::value::Value::I64(i), crate::value::Value::I64(i)))
            .collect();
        crate::dag::build_plan(
            &crate::rdd::Rdd::source(crate::rdd::Dataset::from_records(recs, parts)),
            crate::rdd::Action::Count,
            &Default::default(),
        )
    }

    #[test]
    fn delay_clock_is_per_job_and_anchored_at_stage_start() {
        // Regression (delay-scheduler bugfix): the "last local launch"
        // instant that delay scheduling measures its wait from is per-JOB
        // state. A stage boundary re-anchors it at the stage-start instant,
        // and one tenant's local launches must not reset another's clock.
        let wait = SimDuration::from_secs_f64(10.0);
        let mut w = SimWorld::new(tiny(4), EngineConfig::default().with_delay_scheduling(wait));
        let mut out = memres_des::Outbox::standalone(SimTime::ZERO);
        w.admit_job(
            SimTime::ZERO,
            1,
            0,
            SimTime::ZERO,
            Arc::new(placed_plan(8)),
            &mut out,
        );
        assert_eq!(w.jobs[0].last_local_launch, SimTime::ZERO);
        // A locality-preferred pick for job 0 at t=2 advances its clock.
        let node = w.jobs[0]
            .prefs_q
            .iter()
            .position(|q| !q.is_empty())
            .expect("placed input yields locality prefs") as u32;
        let t2 = SimTime::from_secs_f64(2.0);
        assert!(matches!(w.pick(t2, 0, node, false), Ok(Some(_))));
        assert_eq!(w.jobs[0].last_local_launch, t2);
        // A second tenant admitted at t=5 anchors at ITS stage start.
        let t5 = SimTime::from_secs_f64(5.0);
        w.admit_job(t5, 2, 1, t5, Arc::new(placed_plan(8)), &mut out);
        assert_eq!(w.jobs[1].last_local_launch, t5);
        assert_eq!(
            w.jobs[0].last_local_launch, t2,
            "other job's clock untouched"
        );
        // Force both jobs onto the steal path: each reports its own expiry.
        for ji in 0..2 {
            w.jobs[ji].prefs_q.iter_mut().for_each(|q| q.clear());
            w.jobs[ji].no_pref_q.clear();
        }
        let t6 = SimTime::from_secs_f64(6.0);
        assert_eq!(w.pick(t6, 0, 0, true), Err(Some(t2 + wait)));
        assert_eq!(w.pick(t6, 1, 0, true), Err(Some(t5 + wait)));
    }

    #[test]
    fn starved_dispatch_rearms_when_backoff_frees_a_slot() {
        // Regression (dispatch wedge bugfix): with every slot busy and no
        // delay-retry wake, a dispatch pass records starvation; a failing
        // task's freed slot must then re-arm dispatch — the backoff requeue
        // path schedules no Dispatch of its own.
        let mut w = world();
        let mut out = memres_des::Outbox::standalone(SimTime::ZERO);
        w.submit_job(SimTime::ZERO, placed_plan(64), &mut out);
        w.dispatch(SimTime::ZERO, &mut out);
        assert_eq!(w.free_slots.iter().sum::<u32>(), 0, "cluster saturated");
        assert!(w.tasks.pending > 0, "more tasks than slots");
        w.dispatch(SimTime::ZERO, &mut out);
        assert!(
            w.dispatch_starved,
            "empty availability + no retry = starved"
        );
        let victim = (0..w.tasks.len())
            .find(|&i| w.tasks.state[i] == TState::Running)
            .expect("saturated cluster has running tasks") as u32;
        let t1 = SimTime::from_secs_f64(1.0);
        let mut out2 = memres_des::Outbox::standalone(t1);
        w.fail_task(
            t1,
            victim,
            SimDuration::from_secs_f64(2.0),
            false,
            &mut out2,
        );
        assert!(!w.dispatch_starved);
        assert!(
            out2.into_items()
                .iter()
                .any(|(_, e)| matches!(e, Ev::Dispatch)),
            "freed slot must schedule a dispatch"
        );
    }

    #[test]
    fn blacklisted_node_restart_rejoins_and_redispatches() {
        // Regression (dispatch wedge bugfix, recovery side): a fully
        // blacklisted cluster starves dispatch; restarting a live-but-
        // blacklisted executor clears the blacklist and re-arms it.
        let mut w = world();
        let mut out = memres_des::Outbox::standalone(SimTime::ZERO);
        w.submit_job(SimTime::ZERO, placed_plan(8), &mut out);
        for n in 0..w.spec.workers {
            w.blacklisted[n as usize] = true;
            w.note_slot_change(n);
        }
        w.dispatch(SimTime::ZERO, &mut out);
        assert!(w.dispatch_starved, "fully blacklisted cluster starves");
        let t1 = SimTime::from_secs_f64(1.0);
        let mut out2 = memres_des::Outbox::standalone(t1);
        Model::handle(&mut w, t1, Ev::NodeRestart { node: 2 }, &mut out2);
        assert!(!w.blacklisted[2]);
        assert!(!w.dispatch_starved);
        assert!(
            w.avail.contains(&2),
            "node 2 re-entered the availability set"
        );
        assert!(
            out2.into_items()
                .iter()
                .any(|(_, e)| matches!(e, Ev::Dispatch)),
            "blacklist clear must schedule a dispatch"
        );
    }
}
