//! Engine configuration.
//!
//! [`SparkConfig`] mirrors Table I of the paper (the tuned Spark 0.7
//! parameters on Hyperion); [`EngineConfig`] adds the experiment knobs the
//! paper varies between sections: input source, shuffle-store strategy,
//! scheduling policy, and the ELB/CAD optimizations.

use crate::faults::{FaultPlan, RecoveryConfig};
use memres_des::time::SimDuration;
use memres_des::units::{GB, MB};

/// Table I — key Spark configuration parameters.
#[derive(Clone, Debug)]
pub struct SparkConfig {
    /// `spark.reducer.maxMbInFlight` — also the FetchRequest size; §VI-A
    /// shrinks this from 1 GB to 128 KB to manufacture a network bottleneck.
    pub reducer_max_bytes_in_flight: f64,
    /// `spark.rdd.compress` (paper: false).
    pub rdd_compress: bool,
    /// `spark.shuffle.compress` (paper: true).
    pub shuffle_compress: bool,
    /// `spark.buffer.size` (paper: 8 MB).
    pub buffer_size: f64,
    /// `spark.default.parallelism` — reduce-side task count; "application
    /// dependent" in the paper, so `None` means: pick from the workload.
    pub default_parallelism: Option<u32>,
    /// Compression ratio applied to shuffled bytes when `shuffle_compress`
    /// (1.0 = incompressible; the paper quotes intermediate sizes post-
    /// pipeline, so figures use 1.0).
    pub shuffle_compress_ratio: f64,
    /// Fixed per-task launch overhead (scheduling, serialization, JVM
    /// dispatch). This is what makes 32 MB splits slower than 128 MB ones on
    /// the Lustre configuration (Fig 5a: +15.9% from split-size alone).
    pub task_overhead: SimDuration,
    /// Fixed per-request network/RPC overhead expressed as equivalent bytes;
    /// combined with `reducer_max_bytes_in_flight` it narrows effective
    /// shuffle bandwidth for small FetchRequests.
    pub per_request_overhead_bytes: f64,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            reducer_max_bytes_in_flight: 1.0 * GB,
            rdd_compress: false,
            shuffle_compress: true,
            buffer_size: 8.0 * MB,
            default_parallelism: None,
            shuffle_compress_ratio: 1.0,
            task_overhead: SimDuration::from_millis(8),
            per_request_overhead_bytes: 256.0 * 1024.0,
        }
    }
}

/// Where stage-one tasks read their input from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputSource {
    /// Data-centric: HDFS DataNodes on per-node RAMDisk (Fig 2b).
    HdfsRamDisk,
    /// Compute-centric: the shared Lustre backend (Fig 2a).
    Lustre,
}

/// Which device backs the per-node shuffle store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreDevice {
    RamDisk,
    Ssd,
}

/// Where intermediate (shuffle) data is stored and how fetchers get it —
/// the §IV-B design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShuffleStore {
    /// Data-centric: local per-node store; fetchers ask the *server* node,
    /// which reads locally and ships bytes over the fabric.
    Local(StoreDevice),
    /// Intermediate data in Lustre; fetchers still ask the writing server,
    /// which reads its own Lustre directory (usually cached) and ships the
    /// bytes — "repetitive data movement" but no lock conflicts.
    LustreLocal,
    /// Intermediate data in Lustre; fetchers read Lustre *directly*, forcing
    /// DLM write-lock revocations and dirty-page flushes (the §IV-B trap).
    LustreShared,
}

/// Base task-placement policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerKind {
    /// Launch pending tasks on any free slot immediately (compute-centric
    /// behaviour: "tasks can be immediately launched ... since there is no
    /// locality constraint").
    Fifo,
    /// Delay scheduling [Zaharia EuroSys'10]: hold a task up to `wait` for a
    /// slot on a node holding its data before accepting any node.
    Delay { wait: SimDuration },
}

/// Enhanced Load Balancer (§VI-A).
#[derive(Clone, Copy, Debug)]
pub struct ElbConfig {
    /// Stop assigning tasks to a node whose intermediate data exceeds the
    /// cluster average by this factor (paper: 25% ⇒ 1.25).
    pub threshold: f64,
}

impl Default for ElbConfig {
    fn default() -> Self {
        ElbConfig { threshold: 1.25 }
    }
}

/// Congestion-Aware task Dispatching (§VI-B).
#[derive(Clone, Copy, Debug)]
pub struct CadConfig {
    /// Increment added to the dispatch interval on a detected jump
    /// (paper: 50 ms).
    pub step: SimDuration,
    /// Average-execution-time jump factor that triggers throttling
    /// (paper: 2×).
    pub jump_factor: f64,
    /// Completed-task window used for the running average.
    pub window: usize,
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            step: SimDuration::from_millis(50),
            jump_factor: 2.0,
            window: 32,
        }
    }
}

/// LATE-style speculative execution [Zaharia OSDI'08] — implemented as the
/// comparison baseline the paper's related work cites: it duplicates slow
/// *tasks*, which cannot fix the *intermediate data* imbalance ELB targets
/// ("none of them considers the imbalanced intermediate data distribution",
/// §VIII).
#[derive(Clone, Copy, Debug)]
pub struct SpeculationConfig {
    /// A running task is a straggler when its elapsed time exceeds
    /// `multiplier` × the median completed-task duration of its phase.
    pub multiplier: f64,
    /// Minimum completed tasks before speculation activates.
    pub min_completed: usize,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            multiplier: 1.5,
            min_completed: 8,
        }
    }
}

/// A deliberately injectable engine defect. Each variant genuinely corrupts
/// one accounting path deep in the engine, so the differential-fuzz oracles
/// (DESIGN.md §4.13) can be demonstrated — in tests and in CI — to catch a
/// real bug, shrink it, and replay it. Never set outside fuzz harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Drop the last source rack's bytes when folding per-node shuffle
    /// buckets into rack-aggregated fetch totals: bytes vanish between map
    /// output and reduce input, tripping the conservation oracle (only in
    /// runs where the shuffle actually aggregates).
    DropAggBytes,
}

/// Everything a simulated run needs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub spark: SparkConfig,
    pub input: InputSource,
    pub shuffle: ShuffleStore,
    pub scheduler: SchedulerKind,
    pub elb: Option<ElbConfig>,
    pub cad: Option<CadConfig>,
    /// LATE-style speculative execution baseline.
    pub speculation: Option<SpeculationConfig>,
    /// HDFS replication for input datasets. The paper's data-centric
    /// configuration backs HDFS with 32 GB RAMDisks, so replication is kept
    /// at 1 for capacity (they observe a 1.2 TB ceiling); raise it to study
    /// replica-aware locality scheduling.
    pub input_replication: u32,
    /// Per-task compute-time jitter amplitude (uniform ±jitter): models
    /// record-size variation, JIT and GC noise. Deterministic per task.
    pub task_jitter: f64,
    /// Node speed-variation model (None = homogeneous).
    pub speed_sigma: f64,
    pub speed_resample: SimDuration,
    pub seed: u64,
    /// Host worker threads for real-partition UDF evaluation. `None` reads
    /// the `MEMRES_THREADS` environment variable, falling back to the host's
    /// available parallelism. Results are deterministic regardless of the
    /// thread count: placement stays sequential and chain results commit in
    /// launch order.
    pub executor_threads: Option<usize>,
    /// Deterministic fault schedule (DESIGN.md §4.9). `None` = happy path.
    pub faults: Option<FaultPlan>,
    /// Retry/backoff/blacklist policy for the recovery engine.
    pub recovery: RecoveryConfig,
    /// Structured event tracing (DESIGN.md §4.11). Off by default: the
    /// engine then holds no sink at all and emission sites cost one
    /// `Option` test.
    pub trace: memres_trace::TraceConfig,
    /// Run on the legacy `BinaryHeap` event calendar instead of the bucketed
    /// calendar queue. Baseline mode for perf comparisons only; both
    /// calendars pop in identical (time, seq) order.
    pub legacy_event_queue: bool,
    /// Shuffle fetches between a rack pair collapse into one rack-level
    /// aggregate flow when `(workers / racks)^2` — the concurrent per-pair
    /// flow count of an all-to-all shuffle wave — exceeds this threshold
    /// (DESIGN.md, rack aggregation). Below it every fetch keeps its own
    /// max–min-fair flow, so paper-scale cells stay byte-identical.
    /// `u32::MAX` disables aggregation entirely.
    pub rack_agg_threshold: u32,
    /// Deliberate defect injection for fuzz-oracle demonstrations
    /// (DESIGN.md §4.13). `None` — always, outside fuzz harnesses.
    pub defect: Option<Defect>,
    /// Periodic sim-time metrics sampling (DESIGN.md §4.16). Off by
    /// default: the world then holds no recorder and the sampler event is
    /// never scheduled.
    pub metrics: Option<memres_metrics::MetricsConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            spark: SparkConfig::default(),
            input: InputSource::HdfsRamDisk,
            shuffle: ShuffleStore::Local(StoreDevice::RamDisk),
            scheduler: SchedulerKind::Fifo,
            elb: None,
            cad: None,
            speculation: None,
            input_replication: 1,
            task_jitter: 0.15,
            speed_sigma: 0.25,
            speed_resample: SimDuration::from_secs(30),
            seed: 1,
            executor_threads: None,
            faults: None,
            recovery: RecoveryConfig::default(),
            trace: memres_trace::TraceConfig::off(),
            legacy_event_queue: false,
            rack_agg_threshold: 4096,
            defect: None,
            metrics: None,
        }
    }
}

impl EngineConfig {
    pub fn homogeneous(mut self) -> Self {
        self.speed_sigma = 0.0;
        self
    }

    pub fn with_delay_scheduling(mut self, wait: SimDuration) -> Self {
        self.scheduler = SchedulerKind::Delay { wait };
        self
    }

    pub fn with_elb(mut self) -> Self {
        self.elb = Some(ElbConfig::default());
        self
    }

    pub fn with_cad(mut self) -> Self {
        self.cad = Some(CadConfig::default());
        self
    }

    pub fn with_speculation(mut self) -> Self {
        self.speculation = Some(SpeculationConfig::default());
        self
    }

    /// Pin the real-partition executor to `n` host threads (tests use this
    /// instead of mutating the process-global `MEMRES_THREADS`).
    pub fn with_executor_threads(mut self, n: usize) -> Self {
        self.executor_threads = Some(n);
        self
    }

    /// Attach a deterministic fault schedule to the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the recovery policy (attempt caps, backoff, blacklisting).
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Record a full structured event trace of the run (DESIGN.md §4.11).
    pub fn with_trace(mut self) -> Self {
        self.trace = memres_trace::TraceConfig::full();
        self
    }

    /// Record tracing at an explicit level.
    pub fn with_trace_level(mut self, level: memres_trace::TraceLevel) -> Self {
        self.trace = memres_trace::TraceConfig { level };
        self
    }

    /// Run on the legacy `BinaryHeap` event calendar (baseline mode).
    pub fn with_legacy_event_queue(mut self) -> Self {
        self.legacy_event_queue = true;
        self
    }

    /// Override the rack-aggregation trigger (`u32::MAX` disables it).
    pub fn with_rack_agg_threshold(mut self, threshold: u32) -> Self {
        self.rack_agg_threshold = threshold;
        self
    }

    /// Inject a deliberate engine defect (fuzz-oracle demonstrations only).
    pub fn with_defect(mut self, defect: Defect) -> Self {
        self.defect = Some(defect);
        self
    }

    /// Enable periodic sim-time metrics sampling at the default interval
    /// (DESIGN.md §4.16).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(memres_metrics::MetricsConfig::default());
        self
    }

    /// Enable metrics sampling at an explicit interval.
    pub fn with_metrics_interval(mut self, interval: SimDuration) -> Self {
        self.metrics = Some(memres_metrics::MetricsConfig {
            interval,
            ..memres_metrics::MetricsConfig::default()
        });
        self
    }

    /// Validate the configuration against a cluster of `workers` nodes.
    /// Returns a descriptive error instead of letting a bad knob panic (or
    /// silently misbehave) deep inside the simulation.
    pub fn validate(&self, workers: u32) -> Result<(), String> {
        if workers == 0 {
            return Err("cluster has zero worker nodes".to_string());
        }
        if self.input_replication == 0 {
            return Err("input_replication must be at least 1".to_string());
        }
        if self.input_replication > workers {
            return Err(format!(
                "input_replication {} exceeds cluster size {workers}",
                self.input_replication
            ));
        }
        if !(0.0..1.0).contains(&self.task_jitter) {
            return Err(format!(
                "task_jitter must be in [0, 1), got {}",
                self.task_jitter
            ));
        }
        if !self.speed_sigma.is_finite() || self.speed_sigma < 0.0 {
            return Err(format!(
                "speed_sigma must be non-negative, got {}",
                self.speed_sigma
            ));
        }
        if self.speed_sigma > 0.0 && self.speed_resample.as_secs_f64() <= 0.0 {
            return Err("speed_resample must be positive when speed_sigma > 0".to_string());
        }
        if self.executor_threads == Some(0) {
            return Err("executor_threads must be at least 1".to_string());
        }
        if self.spark.reducer_max_bytes_in_flight <= 0.0
            || !self.spark.reducer_max_bytes_in_flight.is_finite()
        {
            return Err(format!(
                "spark.reducer_max_bytes_in_flight must be positive and finite, got {}",
                self.spark.reducer_max_bytes_in_flight
            ));
        }
        if self.spark.per_request_overhead_bytes < 0.0
            || !self.spark.per_request_overhead_bytes.is_finite()
        {
            return Err(format!(
                "spark.per_request_overhead_bytes must be non-negative and finite, got {}",
                self.spark.per_request_overhead_bytes
            ));
        }
        let ratio = self.spark.shuffle_compress_ratio;
        if ratio.is_nan() || ratio <= 0.0 || ratio > 1.0 {
            return Err(format!(
                "spark.shuffle_compress_ratio must be in (0, 1], got {}",
                self.spark.shuffle_compress_ratio
            ));
        }
        if self.recovery.max_task_attempts == 0 {
            return Err("recovery.max_task_attempts must be at least 1".to_string());
        }
        if self.recovery.blacklist_after == 0 {
            return Err("recovery.blacklist_after must be at least 1".to_string());
        }
        if let Some(plan) = &self.faults {
            plan.validate(workers)?;
        }
        if let Some(metrics) = &self.metrics {
            metrics.validate()?;
        }
        Ok(())
    }

    /// Render Table I the way the paper prints it.
    pub fn table1(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "spark.reducer.maxMbInFlight",
                format!("{:.0}MB", self.spark.reducer_max_bytes_in_flight / MB),
            ),
            ("spark.rdd.compress", self.spark.rdd_compress.to_string()),
            (
                "spark.shuffle.compress",
                self.spark.shuffle_compress.to_string(),
            ),
            (
                "spark.buffer.size",
                format!("{:.0}MB", self.spark.buffer_size / MB),
            ),
            (
                "spark.default.parallelism",
                self.spark
                    .default_parallelism
                    .map_or("application dependent".to_string(), |p| p.to_string()),
            ),
        ]
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let cfg = EngineConfig::default();
        let t = cfg.table1();
        assert_eq!(t[0].1, "1024MB");
        assert_eq!(t[1].1, "false");
        assert_eq!(t[2].1, "true");
        assert_eq!(t[3].1, "8MB");
        assert_eq!(t[4].1, "application dependent");
    }

    #[test]
    fn builders_compose() {
        let cfg = EngineConfig::default()
            .homogeneous()
            .with_elb()
            .with_cad()
            .with_delay_scheduling(SimDuration::from_secs(3));
        assert_eq!(cfg.speed_sigma, 0.0);
        assert!(cfg.elb.is_some());
        assert!(cfg.cad.is_some());
        assert!(matches!(cfg.scheduler, SchedulerKind::Delay { .. }));
        assert!((cfg.elb.unwrap().threshold - 1.25).abs() < 1e-12);
        assert_eq!(cfg.cad.unwrap().step, SimDuration::from_millis(50));
    }

    #[test]
    fn validate_accepts_defaults() {
        EngineConfig::default().validate(4).expect("defaults valid");
        // Zero jitter / zero sigma are legal (homogeneous clusters).
        EngineConfig::default().homogeneous().validate(1).unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let err = |cfg: EngineConfig, workers: u32| -> String {
            cfg.validate(workers).expect_err("should be rejected")
        };
        assert!(err(EngineConfig::default(), 0).contains("zero worker"));
        let cfg = EngineConfig {
            input_replication: 5,
            ..EngineConfig::default()
        };
        assert!(err(cfg, 4).contains("input_replication"));
        let cfg = EngineConfig {
            input_replication: 0,
            ..EngineConfig::default()
        };
        assert!(err(cfg, 4).contains("input_replication"));
        let cfg = EngineConfig {
            task_jitter: -0.1,
            ..EngineConfig::default()
        };
        assert!(err(cfg, 4).contains("task_jitter"));
        let cfg = EngineConfig {
            task_jitter: 1.0,
            ..EngineConfig::default()
        };
        assert!(err(cfg, 4).contains("task_jitter"));
        let cfg = EngineConfig {
            speed_sigma: -1.0,
            ..EngineConfig::default()
        };
        assert!(err(cfg, 4).contains("speed_sigma"));
        let cfg = EngineConfig::default().with_executor_threads(0);
        assert!(err(cfg, 4).contains("executor_threads"));
        let rec = RecoveryConfig {
            max_task_attempts: 0,
            ..RecoveryConfig::default()
        };
        let cfg = EngineConfig::default().with_recovery(rec);
        assert!(err(cfg, 4).contains("max_task_attempts"));
        // Fault plans are validated against the cluster size too.
        let plan = FaultPlan::new().after(
            SimDuration::from_secs(1),
            crate::faults::FaultKind::BlockLoss { node: 9 },
        );
        let cfg = EngineConfig::default().with_faults(plan);
        assert!(err(cfg, 4).contains("out of range"));
        let cfg = EngineConfig::default().with_metrics_interval(SimDuration::ZERO);
        assert!(err(cfg, 4).contains("metrics.interval"));
    }

    #[test]
    fn metrics_builders_enable_the_sampler() {
        assert!(EngineConfig::default().metrics.is_none());
        let cfg = EngineConfig::default().with_metrics();
        assert!(cfg.metrics.is_some());
        cfg.validate(4).expect("default metrics config is valid");
        let cfg = EngineConfig::default().with_metrics_interval(SimDuration::from_millis(100));
        assert_eq!(cfg.metrics.unwrap().interval, SimDuration::from_millis(100));
    }
}
