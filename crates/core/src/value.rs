//! Dynamic record model.
//!
//! The engine executes *real* user-defined functions over real records at
//! laptop scale while the surrounding cluster is simulated. To keep UDFs
//! serializable across the simulated task boundary without generic
//! type-plumbing, records are dynamically typed: a [`Record`] is a
//! `(key, value)` pair of [`Value`]s. Typed convenience constructors and
//! accessors keep application code readable.

use std::fmt;
use std::sync::Arc;

/// A dynamically typed datum.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    Str(Arc<str>),
    /// Dense numeric vector (Logistic Regression feature vectors).
    VecF64(Arc<Vec<f64>>),
    /// Heterogeneous list (groupByKey output groups).
    List(Arc<Vec<Value>>),
}

/// A key/value record flowing through the engine.
pub type Record = (Value, Value);

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Arc::from(s.into().into_boxed_str()))
    }

    pub fn vec(v: Vec<f64>) -> Value {
        Value::VecF64(Arc::new(v))
    }

    pub fn list(v: Vec<Value>) -> Value {
        Value::List(Arc::new(v))
    }

    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(x) => *x,
            Value::Bool(b) => *b as i64,
            other => panic!("expected I64, got {other:?}"),
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(x) => *x,
            Value::I64(x) => *x as f64,
            other => panic!("expected F64, got {other:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    pub fn as_vec(&self) -> &[f64] {
        match self {
            Value::VecF64(v) => v,
            other => panic!("expected VecF64, got {other:?}"),
        }
    }

    pub fn as_list(&self) -> &[Value] {
        match self {
            Value::List(v) => v,
            other => panic!("expected List, got {other:?}"),
        }
    }

    /// In-memory footprint estimate, used to charge simulated I/O for real
    /// records.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Str(s) => 16 + s.len() as u64,
            Value::VecF64(v) => 16 + 8 * v.len() as u64,
            Value::List(v) => 16 + v.iter().map(Value::approx_bytes).sum::<u64>(),
        }
    }

    /// Stable content hash (FNV-1a over a canonical encoding) — used for
    /// shuffle partitioning so runs are deterministic across platforms.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut Fnv) {
        match self {
            Value::Null => h.write(&[0]),
            Value::Bool(b) => h.write(&[1, *b as u8]),
            Value::I64(x) => {
                h.write(&[2]);
                h.write(&x.to_le_bytes());
            }
            Value::F64(x) => {
                h.write(&[3]);
                h.write(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                h.write(&[4]);
                h.write(s.as_bytes());
            }
            Value::VecF64(v) => {
                h.write(&[5]);
                for x in v.iter() {
                    h.write(&x.to_bits().to_le_bytes());
                }
            }
            Value::List(v) => {
                h.write(&[6]);
                for x in v.iter() {
                    x.hash_into(h);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::VecF64(v) => write!(f, "vec[{}]", v.len()),
            Value::List(v) => write!(f, "list[{}]", v.len()),
        }
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Estimated size of a record, for synthetic I/O charging of real data.
pub fn record_bytes(r: &Record) -> u64 {
    r.0.approx_bytes() + r.1.approx_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::I64(7).as_i64(), 7);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::str("hi").as_str(), "hi");
        assert_eq!(Value::vec(vec![1.0, 2.0]).as_vec(), &[1.0, 2.0]);
        assert_eq!(Value::list(vec![Value::Null]).as_list().len(), 1);
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn wrong_accessor_panics() {
        Value::str("x").as_i64();
    }

    #[test]
    fn bytes_estimates_scale() {
        assert_eq!(Value::I64(0).approx_bytes(), 8);
        assert_eq!(Value::str("abcd").approx_bytes(), 20);
        assert_eq!(Value::vec(vec![0.0; 10]).approx_bytes(), 96);
        let r: Record = (Value::str("k"), Value::I64(1));
        assert_eq!(record_bytes(&r), 17 + 8);
    }

    #[test]
    fn stable_hash_is_stable_and_discriminates() {
        let a = Value::str("hello").stable_hash();
        let b = Value::str("hello").stable_hash();
        let c = Value::str("hellp").stable_hash();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(Value::I64(1).stable_hash(), Value::F64(1.0).stable_hash());
        // Known-answer so the encoding never silently changes.
        assert_eq!(Value::Null.stable_hash(), {
            let mut h = Fnv::new();
            h.write(&[0]);
            h.finish()
        });
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::I64(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::vec(vec![1.0]).to_string(), "vec[1]");
    }
}
