//! # memres-core — the memory-resident MapReduce engine
//!
//! A working reproduction of the Spark-0.7-era engine the paper
//! characterizes: an [`rdd::Rdd`] lineage API over a dynamic record
//! model, a DAG scheduler that splits pipelined stages at shuffles, a block
//! manager for memory-resident caching, pluggable task scheduling (FIFO /
//! delay scheduling / ELB) and shuffle strategies (local store /
//! Lustre-local / Lustre-shared), plus the paper's two optimizations:
//! the **Enhanced Load Balancer** and **Congestion-Aware Dispatching**.
//!
//! Jobs execute inside a deterministic discrete-event simulation of an HPC
//! cluster (see the substrate crates); user-defined functions run for real
//! when datasets are materialized, so the engine is correctness-testable at
//! laptop scale and shape-faithful at the paper's TB scale.
//!
//! Quick start:
//!
//! ```
//! use memres_core::prelude::*;
//!
//! let spec = memres_cluster::tiny(4);
//! let cfg = EngineConfig::default().homogeneous();
//! let mut driver = Driver::new(spec, cfg);
//!
//! let data: Vec<Record> = (0..100)
//!     .map(|i| (Value::I64(i % 10), Value::I64(i)))
//!     .collect();
//! let rdd = Rdd::source(Dataset::from_records(data, 8));
//! let counts = rdd.group_by_key(Some(4), 1e9);
//! let (out, metrics) = driver.run(&counts, Action::Count);
//! assert_eq!(out.count, 10); // ten distinct keys
//! assert!(metrics.job_time() > 0.0);
//! ```

pub mod blockmgr;
pub mod config;
pub mod dag;
pub mod driver;
pub mod export;
pub mod faults;
pub mod metrics;
pub mod rdd;
pub mod tenancy;
pub mod value;
pub mod world;

pub use config::{
    CadConfig, Defect, ElbConfig, EngineConfig, InputSource, SchedulerKind, ShuffleStore,
    SparkConfig, SpeculationConfig, StoreDevice,
};
pub use driver::Driver;
pub use faults::{FaultEvent, FaultKind, FaultPlan, RecoveryConfig};
pub use metrics::{JobMetrics, Phase, RecoveryCounters, TaskLocality, TaskMetric};
pub use rdd::{Action, Dataset, Rdd, RddId, SizeModel};
pub use tenancy::{
    ArrivalProcess, FinishedJob, InterJobPolicy, JobFactory, StreamSpec, TenantSlo, TenantSpec,
};
pub use value::{Record, Value};
pub use world::{JobOutput, SimWorld};

// Re-exported so applications configure tracing without naming the trace
// crate directly.
pub use memres_trace::{TimedEvent, TraceConfig, TraceEvent, TraceLevel};

/// Everything a typical application needs.
pub mod prelude {
    pub use crate::config::{
        EngineConfig, InputSource, SchedulerKind, ShuffleStore, SparkConfig, StoreDevice,
    };
    pub use crate::driver::Driver;
    pub use crate::faults::{FaultKind, FaultPlan, RecoveryConfig};
    pub use crate::metrics::{JobMetrics, Phase};
    pub use crate::rdd::{Action, Dataset, Rdd, SizeModel};
    pub use crate::value::{Record, Value};
    pub use crate::world::JobOutput;
    pub use memres_trace::{TraceConfig, TraceLevel};
}
