//! Metrics: per-task records and per-phase rollups.
//!
//! Every figure in the paper's evaluation is a view over these records:
//! job execution times (Figs 5, 7a, 8a, 9, 13a, 14a), phase dissections
//! (Figs 7b, 8b, 13, 14b), task-time spreads (Figs 8c, 8d, 10), and
//! per-node distributions (Fig 12).

use memres_cluster::NodeId;
use memres_des::stats::Cdf;
use memres_des::time::SimTime;

/// Which phase of the MapReduce pipeline a task belongs to (§IV/Fig 4a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Stage computation tasks (map/filter/flatMap pipelines).
    Compute,
    /// ShuffleMapTasks flushing in-memory output to the shuffle store.
    Storing,
    /// Fetch tasks moving intermediate data and aggregating it.
    Shuffling,
}

/// How local a task's input was (mirrors `memres-hdfs::Locality`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskLocality {
    NodeLocal,
    RackLocal,
    Remote,
    /// No placement preference existed (generators, Lustre input, fetches).
    Any,
}

#[derive(Clone, Debug)]
pub struct TaskMetric {
    pub job: u32,
    pub stage: u32,
    pub phase: Phase,
    pub index: u32,
    pub node: u32,
    pub queued_at: f64, // lint:allow(time-units): metrics report in f64 seconds at the JSON boundary, not simulation state
    pub launched_at: f64, // lint:allow(time-units): metrics report in f64 seconds at the JSON boundary, not simulation state
    pub finished_at: f64, // lint:allow(time-units): metrics report in f64 seconds at the JSON boundary, not simulation state
    pub input_bytes: f64,
    pub output_bytes: f64,
    pub locality: TaskLocality,
}

impl TaskMetric {
    pub fn duration(&self) -> f64 {
        self.finished_at - self.launched_at
    }

    /// Time spent waiting in the scheduler queue before launch.
    pub fn queue_delay(&self) -> f64 {
        self.launched_at - self.queued_at
    }
}

/// What the recovery engine did during a job (DESIGN.md §4.9). All zeros on
/// a fault-free run; the `repro faults` cell and the fault tests key off
/// these.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryCounters {
    /// Node-crash fault events applied.
    pub node_crashes: u64,
    /// Crashed nodes that came back (transient crashes).
    pub node_restarts: u64,
    /// Task attempts that failed and were re-queued (any cause).
    pub tasks_retried: u64,
    /// Shuffle-fetch attempts that failed (network fault or source crash).
    pub failed_fetches: u64,
    /// Fetch retries scheduled with exponential backoff.
    pub fetch_retries: u64,
    /// Partitions recomputed from lineage (ghost recomputes after a crash
    /// plus cached partitions rebuilt from their recovery recipe).
    pub recomputed_partitions: u64,
    /// Cached partitions dropped by crashes / executor memory loss.
    pub blocks_lost: u64,
    /// Nodes blacklisted for repeated task-level failures.
    pub blacklisted_nodes: u64,
    /// SSD degradation fault events applied.
    pub ssd_degradations: u64,
    /// Simulated seconds of work thrown away by failed attempts.
    pub wasted_secs: f64,
    /// Jobs aborted after a task exhausted its attempt limit.
    pub aborted_jobs: u64,
}

impl RecoveryCounters {
    /// Any recovery activity at all? (Degradations alone don't count — they
    /// change timing, not correctness.)
    pub fn any(&self) -> bool {
        self.node_crashes
            + self.tasks_retried
            + self.failed_fetches
            + self.recomputed_partitions
            + self.blocks_lost
            + self.aborted_jobs
            > 0
    }
}

/// Completed-job metrics.
#[derive(Clone, Debug, Default)]
pub struct JobMetrics {
    pub job: u32,
    pub started_at: f64, // lint:allow(time-units): metrics report in f64 seconds at the JSON boundary, not simulation state
    pub finished_at: f64, // lint:allow(time-units): metrics report in f64 seconds at the JSON boundary, not simulation state
    pub tasks: Vec<TaskMetric>,
    /// Fault-recovery activity during this job.
    pub recovery: RecoveryCounters,
}

impl JobMetrics {
    pub fn job_time(&self) -> f64 {
        self.finished_at - self.started_at
    }

    pub fn tasks_in(&self, phase: Phase) -> impl Iterator<Item = &TaskMetric> {
        self.tasks.iter().filter(move |t| t.phase == phase)
    }

    /// Wall-clock span of a phase: first launch to last finish, summed over
    /// stages is unnecessary because phases of different stages don't
    /// overlap under serialized stage launch.
    pub fn phase_time(&self, phase: Phase) -> f64 {
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        for t in self.tasks_in(phase) {
            start = start.min(t.launched_at);
            end = end.max(t.finished_at);
        }
        if end > start {
            end - start
        } else {
            0.0
        }
    }

    pub fn task_durations(&self, phase: Phase) -> Vec<f64> {
        self.tasks_in(phase).map(|t| t.duration()).collect()
    }

    /// (min, mean, max) task duration of a phase — Fig 8c / Fig 10 series.
    pub fn duration_spread(&self, phase: Phase) -> (f64, f64, f64) {
        let d = self.task_durations(phase);
        if d.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        (min, mean, max)
    }

    /// Tasks per node for a phase (Fig 12a). The returned vector has
    /// `workers + 1` entries: index `workers` is a trailing overflow bucket
    /// collecting any out-of-range node id, so bad records are visible in
    /// the rollup instead of silently dropped (and assert in debug builds).
    pub fn tasks_per_node(&self, phase: Phase, workers: u32) -> Vec<u32> {
        let mut v = vec![0u32; workers as usize + 1];
        for t in self.tasks_in(phase) {
            debug_assert!(
                (t.node as usize) < workers as usize,
                "task node {} out of range for {} workers",
                t.node,
                workers
            );
            let slot = (t.node as usize).min(workers as usize);
            if let Some(n) = v.get_mut(slot) {
                *n += 1;
            }
        }
        v
    }

    /// Intermediate bytes deposited per node by compute tasks (Fig 12b).
    /// Same shape as [`JobMetrics::tasks_per_node`]: trailing overflow
    /// bucket for out-of-range node ids.
    pub fn intermediate_per_node(&self, workers: u32) -> Vec<f64> {
        let mut v = vec![0.0; workers as usize + 1];
        for t in self.tasks_in(Phase::Compute) {
            debug_assert!(
                (t.node as usize) < workers as usize,
                "task node {} out of range for {} workers",
                t.node,
                workers
            );
            let slot = (t.node as usize).min(workers as usize);
            if let Some(n) = v.get_mut(slot) {
                *n += t.output_bytes;
            }
        }
        v
    }

    /// Queue delays (seconds waiting for a slot) of a phase's tasks.
    pub fn queue_delays(&self, phase: Phase) -> Vec<f64> {
        self.tasks_in(phase).map(|t| t.queue_delay()).collect()
    }

    /// Mean queue delay across every task of the job (0.0 when empty) — the
    /// scheduler-pressure rollup surfaced in job.json and tasks.csv.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.queue_delay()).sum::<f64>() / self.tasks.len() as f64
    }

    pub fn node_cdf(&self, values: &[f64]) -> Cdf {
        Cdf::from_values(values)
    }

    /// Fraction of compute tasks that ran node-local.
    pub fn locality_fraction(&self) -> f64 {
        let total = self.tasks_in(Phase::Compute).count();
        if total == 0 {
            return 0.0;
        }
        let local = self
            .tasks_in(Phase::Compute)
            .filter(|t| t.locality == TaskLocality::NodeLocal)
            .count();
        local as f64 / total as f64
    }
}

/// Collects task records during a run. Multi-job aware (DESIGN.md §4.14):
/// every concurrently resident job owns an in-progress [`JobMetrics`]; task
/// events route by job id, and cluster-wide faults broadcast to every active
/// job (each resident job experienced the crash). Events referring to a job
/// that already departed drop silently — the same observable behaviour the
/// old single-slot sink had between jobs.
#[derive(Default)]
pub struct MetricsSink {
    active: Vec<JobMetrics>,
}

impl MetricsSink {
    pub fn begin_job(&mut self, job: u32, now: SimTime) {
        self.active.push(JobMetrics {
            job,
            started_at: now.as_secs_f64(),
            finished_at: now.as_secs_f64(),
            tasks: Vec::new(),
            recovery: RecoveryCounters::default(),
        });
    }

    fn job_mut(&mut self, job: u32) -> Option<&mut JobMetrics> {
        self.active.iter_mut().find(|m| m.job == job)
    }

    pub fn record(&mut self, m: TaskMetric) {
        if let Some(jm) = self.job_mut(m.job) {
            jm.tasks.push(m);
        }
    }

    /// Recovery counters of one active job, for task-attributed events
    /// (retries, blacklisting, recomputes). `None` if the job departed.
    pub fn recovery(&mut self, job: u32) -> Option<&mut RecoveryCounters> {
        self.job_mut(job).map(|m| &mut m.recovery)
    }

    /// Apply a cluster-wide recovery event (node crash/restart, block loss,
    /// SSD degradation) to every active job.
    pub fn recovery_all(&mut self, f: impl Fn(&mut RecoveryCounters)) {
        for m in self.active.iter_mut() {
            f(&mut m.recovery);
        }
    }

    /// Close out `job`'s metrics and remove it from the active set.
    pub fn finish_job(&mut self, job: u32, now: SimTime) -> JobMetrics {
        let mut m = match self.active.iter().position(|m| m.job == job) {
            Some(i) => self.active.remove(i),
            None => JobMetrics {
                job,
                ..JobMetrics::default()
            },
        };
        m.finished_at = now.as_secs_f64();
        m
    }

    /// Number of jobs currently collecting metrics.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }
}

pub fn node_u32(n: NodeId) -> u32 {
    n.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(phase: Phase, node: u32, launch: f64, finish: f64, out: f64) -> TaskMetric {
        TaskMetric {
            job: 0,
            stage: 0,
            phase,
            index: 0,
            node,
            queued_at: launch,
            launched_at: launch,
            finished_at: finish,
            input_bytes: 0.0,
            output_bytes: out,
            locality: TaskLocality::Any,
        }
    }

    #[test]
    fn phase_time_spans_first_launch_to_last_finish() {
        let jm = JobMetrics {
            job: 0,
            started_at: 0.0,
            finished_at: 10.0,
            tasks: vec![
                mk(Phase::Compute, 0, 1.0, 3.0, 10.0),
                mk(Phase::Compute, 1, 2.0, 6.0, 20.0),
                mk(Phase::Storing, 0, 6.0, 9.0, 0.0),
            ],
            recovery: RecoveryCounters::default(),
        };
        assert!((jm.phase_time(Phase::Compute) - 5.0).abs() < 1e-12);
        assert!((jm.phase_time(Phase::Storing) - 3.0).abs() < 1e-12);
        assert_eq!(jm.phase_time(Phase::Shuffling), 0.0);
        assert!((jm.job_time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn spreads_and_distributions() {
        let jm = JobMetrics {
            job: 0,
            started_at: 0.0,
            finished_at: 1.0,
            tasks: vec![
                mk(Phase::Compute, 0, 0.0, 1.0, 5.0),
                mk(Phase::Compute, 0, 0.0, 2.0, 5.0),
                mk(Phase::Compute, 1, 0.0, 4.0, 30.0),
            ],
            recovery: RecoveryCounters::default(),
        };
        let (min, mean, max) = jm.duration_spread(Phase::Compute);
        assert_eq!((min, max), (1.0, 4.0));
        assert!((mean - 7.0 / 3.0).abs() < 1e-12);
        // Trailing overflow bucket (empty here: all nodes in range).
        assert_eq!(jm.tasks_per_node(Phase::Compute, 2), vec![2, 1, 0]);
        assert_eq!(jm.intermediate_per_node(2), vec![10.0, 30.0, 0.0]);
    }

    #[test]
    fn queue_delay_rollup() {
        let mut a = mk(Phase::Compute, 0, 2.0, 3.0, 0.0);
        a.queued_at = 0.0; // waited 2 s for a slot
        let b = mk(Phase::Storing, 1, 3.0, 4.0, 0.0); // launched instantly
        let jm = JobMetrics {
            job: 0,
            started_at: 0.0,
            finished_at: 4.0,
            tasks: vec![a, b],
            recovery: RecoveryCounters::default(),
        };
        assert_eq!(jm.queue_delays(Phase::Compute), vec![2.0]);
        assert_eq!(jm.queue_delays(Phase::Storing), vec![0.0]);
        assert!((jm.mean_queue_delay() - 1.0).abs() < 1e-12);
        assert_eq!(JobMetrics::default().mean_queue_delay(), 0.0);
    }

    #[test]
    fn locality_fraction_counts_compute_only() {
        let mut a = mk(Phase::Compute, 0, 0.0, 1.0, 0.0);
        a.locality = TaskLocality::NodeLocal;
        let b = mk(Phase::Compute, 0, 0.0, 1.0, 0.0);
        let mut c = mk(Phase::Shuffling, 0, 0.0, 1.0, 0.0);
        c.locality = TaskLocality::NodeLocal;
        let jm = JobMetrics {
            job: 0,
            started_at: 0.0,
            finished_at: 1.0,
            tasks: vec![a, b, c],
            recovery: RecoveryCounters::default(),
        };
        assert!((jm.locality_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sink_lifecycle() {
        let mut sink = MetricsSink::default();
        sink.begin_job(3, SimTime::from_secs_f64(1.0));
        let mut m = mk(Phase::Compute, 0, 1.0, 2.0, 0.0);
        m.job = 3;
        sink.record(m);
        let jm = sink.finish_job(3, SimTime::from_secs_f64(5.0));
        assert_eq!(jm.job, 3);
        assert_eq!(jm.tasks.len(), 1);
        assert!((jm.job_time() - 4.0).abs() < 1e-12);
        assert_eq!(sink.active_jobs(), 0);
    }

    #[test]
    fn sink_routes_by_job_and_broadcasts_faults() {
        let mut sink = MetricsSink::default();
        sink.begin_job(1, SimTime::ZERO);
        sink.begin_job(2, SimTime::from_secs_f64(1.0));
        let mut m = mk(Phase::Compute, 0, 1.0, 2.0, 0.0);
        m.job = 2;
        sink.record(m);
        // Task event belonging to a departed job drops silently.
        let mut stale = mk(Phase::Compute, 0, 1.0, 2.0, 0.0);
        stale.job = 9;
        sink.record(stale);
        if let Some(rec) = sink.recovery(1) {
            rec.tasks_retried += 1;
        }
        sink.recovery_all(|r| r.node_crashes += 1);
        let a = sink.finish_job(1, SimTime::from_secs_f64(2.0));
        let b = sink.finish_job(2, SimTime::from_secs_f64(3.0));
        assert_eq!(a.tasks.len(), 0);
        assert_eq!(b.tasks.len(), 1);
        assert_eq!(a.recovery.tasks_retried, 1);
        assert_eq!(b.recovery.tasks_retried, 0);
        assert_eq!(a.recovery.node_crashes, 1);
        assert_eq!(b.recovery.node_crashes, 1);
        // Finishing an unknown job yields an empty record, not a panic.
        assert_eq!(sink.finish_job(9, SimTime::ZERO).tasks.len(), 0);
    }
}
