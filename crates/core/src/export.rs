//! Metric export: CSV and JSON writers for task-level and job-level data,
//! so downstream analysis (plotting the figures, regression dashboards)
//! works from files rather than from Rust structs.

use crate::metrics::{JobMetrics, Phase};
use crate::tenancy::{FinishedJob, TenantSlo};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Render all task records as CSV (header + one row per task).
pub fn tasks_csv(metrics: &JobMetrics) -> String {
    let mut out = String::from(
        "job,stage,phase,index,node,queued_at,launched_at,finished_at,duration,\
         input_bytes,output_bytes,locality,queue_delay\n",
    );
    for t in &metrics.tasks {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.0},{:.0},{:?},{:.6}",
            t.job,
            t.stage,
            phase_name(t.phase),
            t.index,
            t.node,
            t.queued_at,
            t.launched_at,
            t.finished_at,
            t.duration(),
            t.input_bytes,
            t.output_bytes,
            t.locality,
            t.queue_delay(),
        );
    }
    out
}

/// Per-phase roll-up as CSV: phase, wall time, task count, min/mean/max.
pub fn phases_csv(metrics: &JobMetrics) -> String {
    let mut out = String::from("phase,wall_time,tasks,min,mean,max\n");
    for phase in [Phase::Compute, Phase::Storing, Phase::Shuffling] {
        let (min, mean, max) = metrics.duration_spread(phase);
        let _ = writeln!(
            out,
            "{},{:.6},{},{:.6},{:.6},{:.6}",
            phase_name(phase),
            metrics.phase_time(phase),
            metrics.tasks_in(phase).count(),
            min,
            mean,
            max,
        );
    }
    out
}

/// Format a float the way JSON expects: finite, with a decimal point so the
/// value round-trips as a float (matches serde_json's Ryu output closely
/// enough for downstream tooling and byte-stable for identical inputs).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value in metrics JSON");
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Full job metrics as pretty JSON (hand-rolled — the build environment has
/// no registry access, so serde is not available).
pub fn job_json(metrics: &JobMetrics) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"job\": {},", metrics.job);
    let _ = writeln!(out, "  \"started_at\": {},", json_f64(metrics.started_at));
    let _ = writeln!(out, "  \"finished_at\": {},", json_f64(metrics.finished_at));
    let _ = writeln!(
        out,
        "  \"queue_delay_mean\": {},",
        json_f64(metrics.mean_queue_delay())
    );
    out.push_str("  \"tasks\": [");
    for (i, t) in metrics.tasks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\n      \"job\": {},\n      \"stage\": {},\n      \"phase\": {:?},\
             \n      \"index\": {},\n      \"node\": {},\n      \"queued_at\": {},\
             \n      \"launched_at\": {},\n      \"finished_at\": {},\
             \n      \"duration\": {},\n      \"input_bytes\": {},\
             \n      \"output_bytes\": {},\n      \"locality\": {:?},\
             \n      \"queue_delay\": {}\n    }}",
            t.job,
            t.stage,
            format!("{:?}", t.phase),
            t.index,
            t.node,
            json_f64(t.queued_at),
            json_f64(t.launched_at),
            json_f64(t.finished_at),
            json_f64(t.duration()),
            json_f64(t.input_bytes),
            json_f64(t.output_bytes),
            format!("{:?}", t.locality),
            json_f64(t.queue_delay()),
        );
    }
    if !metrics.tasks.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let r = &metrics.recovery;
    out.push_str("  \"recovery\": {\n");
    let _ = writeln!(out, "    \"node_crashes\": {},", r.node_crashes);
    let _ = writeln!(out, "    \"node_restarts\": {},", r.node_restarts);
    let _ = writeln!(out, "    \"tasks_retried\": {},", r.tasks_retried);
    let _ = writeln!(out, "    \"failed_fetches\": {},", r.failed_fetches);
    let _ = writeln!(out, "    \"fetch_retries\": {},", r.fetch_retries);
    let _ = writeln!(
        out,
        "    \"recomputed_partitions\": {},",
        r.recomputed_partitions
    );
    let _ = writeln!(out, "    \"blocks_lost\": {},", r.blocks_lost);
    let _ = writeln!(out, "    \"blacklisted_nodes\": {},", r.blacklisted_nodes);
    let _ = writeln!(out, "    \"ssd_degradations\": {},", r.ssd_degradations);
    let _ = writeln!(out, "    \"wasted_secs\": {},", json_f64(r.wasted_secs));
    let _ = writeln!(out, "    \"aborted_jobs\": {}", r.aborted_jobs);
    out.push_str("  }\n}");
    out
}

/// Recovery counters as long-format CSV (`counter,value`) — the CSV twin of
/// the `"recovery"` object in [`job_json`]; the two carry the same fields in
/// the same order.
pub fn recovery_csv(metrics: &JobMetrics) -> String {
    let r = &metrics.recovery;
    let mut out = String::from("counter,value\n");
    let rows: [(&str, String); 11] = [
        ("node_crashes", r.node_crashes.to_string()),
        ("node_restarts", r.node_restarts.to_string()),
        ("tasks_retried", r.tasks_retried.to_string()),
        ("failed_fetches", r.failed_fetches.to_string()),
        ("fetch_retries", r.fetch_retries.to_string()),
        ("recomputed_partitions", r.recomputed_partitions.to_string()),
        ("blocks_lost", r.blocks_lost.to_string()),
        ("blacklisted_nodes", r.blacklisted_nodes.to_string()),
        ("ssd_degradations", r.ssd_degradations.to_string()),
        ("wasted_secs", format!("{:.6}", r.wasted_secs)),
        ("aborted_jobs", r.aborted_jobs.to_string()),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "{k},{v}");
    }
    out
}

/// Write tasks.csv, phases.csv, recovery.csv and job.json under `dir`.
pub fn write_all(metrics: &JobMetrics, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?; // lint:allow(io): designated export seam — only the bench layer and user tooling call it
    std::fs::write(dir.join("tasks.csv"), tasks_csv(metrics))?; // lint:allow(io): designated export seam
    std::fs::write(dir.join("phases.csv"), phases_csv(metrics))?; // lint:allow(io): designated export seam
    std::fs::write(dir.join("recovery.csv"), recovery_csv(metrics))?; // lint:allow(io): designated export seam
    std::fs::write(dir.join("job.json"), job_json(metrics))?; // lint:allow(io): designated export seam
    Ok(())
}

/// Per-job lifecycle rows of a finished multi-tenant stream (DESIGN.md
/// §4.14): one row per job in completion order.
pub fn stream_jobs_csv(jobs: &[FinishedJob]) -> String {
    let mut out =
        String::from("job,tenant,arrived,admitted,finished,queue_delay,latency,aborted\n");
    for j in jobs {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
            j.id,
            j.tenant,
            j.arrived.as_secs_f64(),
            j.admitted.as_secs_f64(),
            j.finished.as_secs_f64(),
            j.queue_delay(),
            j.latency(),
            j.output.aborted,
        );
    }
    out
}

/// Per-tenant SLO rollup as CSV. `slowdown[t]` is the tenant's mean latency
/// over its isolated single-job latency; callers without a baseline pass an
/// empty slice (rendered as 1.0).
pub fn tenant_slo_csv(slos: &[TenantSlo], names: &[String], slowdown: &[f64]) -> String {
    let mut out = String::from(
        "tenant,name,jobs,aborted,mean_queue_delay,mean_latency,p50_latency,p99_latency,\
         slowdown_vs_isolated\n",
    );
    for (i, s) in slos.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            s.tenant,
            names.get(i).map(|n| n.as_str()).unwrap_or(""),
            s.jobs,
            s.aborted,
            s.mean_queue_delay,
            s.mean_latency,
            s.p50_latency,
            s.p99_latency,
            slowdown.get(i).copied().unwrap_or(1.0),
        );
    }
    out
}

/// Per-tenant SLO rollup as a JSON array (same fields as
/// [`tenant_slo_csv`], hand-rolled like every exporter here).
pub fn tenant_slo_json(slos: &[TenantSlo], names: &[String], slowdown: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, s) in slos.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"tenant\": {}, \"name\": \"{}\", \"jobs\": {}, \"aborted\": {}, \
             \"mean_queue_delay\": {}, \"mean_latency\": {}, \"p50_latency\": {}, \
             \"p99_latency\": {}, \"slowdown_vs_isolated\": {}}}",
            s.tenant,
            names.get(i).map(|n| n.as_str()).unwrap_or(""),
            s.jobs,
            s.aborted,
            json_f64(s.mean_queue_delay),
            json_f64(s.mean_latency),
            json_f64(s.p50_latency),
            json_f64(s.p99_latency),
            json_f64(slowdown.get(i).copied().unwrap_or(1.0)),
        );
    }
    if !slos.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::Compute => "compute",
        Phase::Storing => "storing",
        Phase::Shuffling => "shuffling",
    }
}

/// Parse a tasks CSV back into durations per phase (round-trip helper for
/// external tooling tests).
pub fn durations_from_csv(csv: &str, phase: &str) -> Vec<f64> {
    csv.lines()
        .skip(1)
        .filter_map(|line| {
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() < 12 || cols.get(2).copied() != Some(phase) {
                return None;
            }
            cols.get(8)?.parse::<f64>().ok()
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests
mod tests {
    use super::*;
    use crate::metrics::{RecoveryCounters, TaskLocality, TaskMetric};

    fn sample() -> JobMetrics {
        JobMetrics {
            job: 1,
            started_at: 0.0,
            finished_at: 10.0,
            tasks: vec![
                TaskMetric {
                    job: 1,
                    stage: 0,
                    phase: Phase::Compute,
                    index: 0,
                    node: 2,
                    queued_at: 0.0,
                    launched_at: 0.5,
                    finished_at: 2.5,
                    input_bytes: 1000.0,
                    output_bytes: 900.0,
                    locality: TaskLocality::NodeLocal,
                },
                TaskMetric {
                    job: 1,
                    stage: 1,
                    phase: Phase::Storing,
                    index: 0,
                    node: 2,
                    queued_at: 2.5,
                    launched_at: 2.5,
                    finished_at: 4.0,
                    input_bytes: 900.0,
                    output_bytes: 900.0,
                    locality: TaskLocality::NodeLocal,
                },
            ],
            recovery: RecoveryCounters::default(),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = tasks_csv(&sample());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("job,stage,phase"));
        assert!(csv.lines().next().unwrap().ends_with(",queue_delay"));
        assert!(csv.contains("compute"));
        assert!(csv.contains("storing"));
        // First task queued at 0.0, launched at 0.5: delay in the last column.
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with(",0.500000"), "{row}");
    }

    #[test]
    fn csv_round_trips_durations() {
        let csv = tasks_csv(&sample());
        let durs = durations_from_csv(&csv, "compute");
        assert_eq!(durs.len(), 1);
        assert!((durs[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn phases_csv_rolls_up() {
        let csv = phases_csv(&sample());
        assert_eq!(csv.lines().count(), 4); // header + 3 phases
        let storing = csv.lines().find(|l| l.starts_with("storing")).unwrap();
        assert!(storing.contains(",1,"), "one storing task: {storing}");
    }

    #[test]
    fn json_serializes() {
        let j = job_json(&sample());
        // Structurally valid: balanced braces/brackets, expected fields.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(j.matches("\"phase\"").count(), 2);
        assert!(j.contains("\"job\": 1,"));
        assert!(j.contains("\"phase\": \"Compute\""));
        assert!(j.contains("\"locality\": \"NodeLocal\""));
        assert!(j.contains("\"finished_at\": 10.0"));
        // Queue-delay rollup: (0.5 + 0.0) / 2.
        assert!(j.contains("\"queue_delay_mean\": 0.25"));
        // Floats always carry a decimal point so they parse back as floats.
        assert!(j.contains("\"queued_at\": 0.0"));
        // Recovery counters are always present (zeros on a clean run).
        assert!(j.contains("\"recovery\": {"));
        assert!(j.contains("\"tasks_retried\": 0"));
        assert!(j.contains("\"wasted_secs\": 0.0"));
    }

    #[test]
    fn json_identical_for_identical_metrics() {
        assert_eq!(job_json(&sample()), job_json(&sample()));
    }

    #[test]
    fn tenant_slo_exports_render_all_tenants() {
        let slos = vec![
            TenantSlo {
                tenant: 0,
                jobs: 3,
                aborted: 1,
                mean_queue_delay: 0.5,
                mean_latency: 4.0,
                p50_latency: 3.0,
                p99_latency: 9.0,
            },
            TenantSlo {
                tenant: 1,
                ..TenantSlo::default()
            },
        ];
        let names = vec!["etl".to_string(), "adhoc".to_string()];
        let csv = tenant_slo_csv(&slos, &names, &[2.0]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,etl,3,1,"));
        // Missing slowdown entries fall back to 1.0.
        assert!(csv.lines().nth(2).unwrap().ends_with(",1.000000"));
        let json = tenant_slo_json(&slos, &names, &[2.0]);
        assert_eq!(json.matches('{').count(), 2);
        assert!(json.contains("\"name\": \"adhoc\""));
        assert!(json.contains("\"slowdown_vs_isolated\": 2.0"));
        assert!(json.contains("\"p99_latency\": 9.0"));
        assert_eq!(tenant_slo_json(&[], &[], &[]), "[]");
    }

    #[test]
    fn stream_jobs_csv_rows() {
        use crate::world::JobOutput;
        use memres_des::time::SimTime;
        let j = FinishedJob {
            id: 7,
            tenant: 1,
            arrived: SimTime::from_secs_f64(1.0),
            admitted: SimTime::from_secs_f64(1.5),
            finished: SimTime::from_secs_f64(4.0),
            output: JobOutput {
                count: 0,
                records: None,
                reduced: None,
                aborted: false,
            },
            metrics: JobMetrics::default(),
        };
        let csv = stream_jobs_csv(&[j]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("7,1,1.000000,1.500000,4.000000,0.500000,3.000000,false"));
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("memres-export-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_all(&sample(), &dir).unwrap();
        for f in ["tasks.csv", "phases.csv", "recovery.csv", "job.json"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// JSON/CSV parity: the per-task CSV columns and the per-task JSON keys
    /// must carry the same fields, and every recovery counter in the JSON
    /// must appear in recovery.csv (and vice versa). A field added to one
    /// exporter but not the other fails here, not in a user's join script.
    #[test]
    fn json_and_csv_task_fields_align() {
        let m = sample();
        let csv = tasks_csv(&m);
        let csv_cols: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let json = job_json(&m);
        let task_obj = json
            .split("\"tasks\": [")
            .nth(1)
            .unwrap()
            .split("],")
            .next()
            .unwrap();
        for col in &csv_cols {
            assert!(
                task_obj.contains(&format!("\"{col}\":")),
                "CSV column {col} missing from task JSON"
            );
        }
        let json_keys = task_obj.matches("\": ").count() / m.tasks.len();
        assert_eq!(
            json_keys,
            csv_cols.len(),
            "task JSON carries a field the CSV lacks"
        );

        let rec_csv = recovery_csv(&m);
        let rec_json = json.split("\"recovery\": {").nth(1).unwrap();
        for line in rec_csv.lines().skip(1) {
            let key = line.split(',').next().unwrap();
            assert!(
                rec_json.contains(&format!("\"{key}\":")),
                "recovery.csv counter {key} missing from JSON"
            );
        }
        assert_eq!(
            rec_json.matches("\": ").count(),
            rec_csv.lines().count() - 1,
            "recovery JSON carries a counter the CSV lacks"
        );
    }
}
