//! # Fault injection & recovery policy (DESIGN.md §4.9)
//!
//! The paper's robustness observations — SSD garbage collection causing up
//! to 18× task-time variance (§V), shuffle stragglers under load imbalance
//! (§VII), Lustre DLM contention stalling fetches — all describe *partial
//! failure and degradation*. This module supplies the other half of the
//! memory-resident MapReduce story: Spark-style lineage fault tolerance
//! (the mechanism M3R, arXiv:1208.4168, deliberately trades away for speed).
//!
//! A [`FaultPlan`] is a *deterministic schedule* of fault events, fixed
//! before the run starts. Faults are ordinary simulation events: with the
//! same seed and the same plan, every run — at any `executor_threads`
//! setting — replays byte-identically. There is no randomness at fire time;
//! [`FaultPlan::seeded`] derives a pseudo-random plan from a seed *up
//! front*, so the schedule itself is reproducible.
//!
//! Recovery behavior (attempt caps, fetch backoff, blacklisting) is tuned by
//! [`RecoveryConfig`] on [`EngineConfig`](crate::config::EngineConfig).

use memres_des::time::SimDuration;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A worker node crashes: running tasks fail, cached partitions and
    /// in-memory shuffle buckets on the node are lost, its slots drop to
    /// zero. `restart: Some(d)` brings the node back (empty memory, disk
    /// files intact) after `d`; `None` is a permanent loss.
    NodeCrash {
        node: u32,
        restart: Option<SimDuration>,
    },
    /// The `nth_launch`-th task launch of the run (1-based, counted across
    /// all jobs and attempts) fails at the end of its execution — the
    /// classic "task died after doing the work" case, charging its full
    /// duration as wasted work before the retry.
    TaskFail { nth_launch: u64 },
    /// Executor memory loss on `node`: every cached partition the block
    /// manager holds there is dropped. The node itself keeps running;
    /// lineage recovery recomputes partitions on demand.
    BlockLoss { node: u32 },
    /// The SSD on `node` degrades: all its bandwidth parameters are scaled
    /// by `factor` in `(0, 1]` (worn-out flash, thermal throttling, or a
    /// failing channel). Layered on the fluid SSD model in
    /// `crates/storage/src/ssd.rs`.
    SsdDegrade { node: u32, factor: f64 },
    /// Transient network failure of shuffle fetches *from* `src`: every
    /// in-flight fetch that is pulling bytes from `src` fails and is
    /// retried with exponential backoff. Data is intact; only the transfer
    /// attempt is lost.
    FetchFail { src: u32 },
}

impl FaultKind {
    /// Stable machine name (trace `fault_injected` payload).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::TaskFail { .. } => "task_fail",
            FaultKind::BlockLoss { .. } => "block_loss",
            FaultKind::SsdDegrade { .. } => "ssd_degrade",
            FaultKind::FetchFail { .. } => "fetch_fail",
        }
    }

    /// The node the fault targets, if it targets one (`TaskFail` is keyed
    /// by launch ordinal, not node).
    pub fn node(&self) -> Option<u32> {
        match *self {
            FaultKind::NodeCrash { node, .. } => Some(node),
            FaultKind::BlockLoss { node } => Some(node),
            FaultKind::SsdDegrade { node, .. } => Some(node),
            FaultKind::FetchFail { src } => Some(src),
            FaultKind::TaskFail { .. } => None,
        }
    }
}

/// A scheduled fault: `kind` fires `after` the first job submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    pub after: SimDuration,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: add a fault `after` the first job submission.
    pub fn after(mut self, after: SimDuration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { after, kind });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event against the cluster size. Called from
    /// `EngineConfig::validate`.
    pub fn validate(&self, workers: u32) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.after.as_secs_f64().is_finite() {
                return Err(format!("fault event {i}: non-finite fire time"));
            }
            let node = match ev.kind {
                FaultKind::NodeCrash { node, .. } => Some(node),
                FaultKind::BlockLoss { node } => Some(node),
                FaultKind::SsdDegrade { node, .. } => Some(node),
                FaultKind::FetchFail { src } => Some(src),
                FaultKind::TaskFail { nth_launch } => {
                    if nth_launch == 0 {
                        return Err(format!(
                            "fault event {i}: TaskFail nth_launch is 1-based, got 0"
                        ));
                    }
                    None
                }
            };
            if let Some(n) = node {
                if n >= workers {
                    return Err(format!(
                        "fault event {i}: node {n} out of range (cluster has {workers} workers)"
                    ));
                }
            }
            if let FaultKind::SsdDegrade { factor, .. } = ev.kind {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(format!(
                        "fault event {i}: SsdDegrade factor must be in (0, 1], got {factor}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Derive a pseudo-random plan of `events` faults from `seed`, spread
    /// uniformly over `horizon`. Deterministic: the same arguments always
    /// produce the same plan.
    pub fn seeded(seed: u64, workers: u32, events: usize, horizon: SimDuration) -> Self {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || -> u64 {
            // splitmix64 — same generator family the engine uses for jitter.
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        for _ in 0..events {
            let frac = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let after = horizon.mul_f64(frac.clamp(0.05, 0.95));
            let node = (next() % workers.max(1) as u64) as u32;
            let kind = match next() % 5 {
                0 => FaultKind::NodeCrash {
                    node,
                    restart: Some(horizon.mul_f64(0.1)),
                },
                1 => FaultKind::TaskFail {
                    nth_launch: 1 + next() % 64,
                },
                2 => FaultKind::BlockLoss { node },
                3 => FaultKind::SsdDegrade { node, factor: 0.5 },
                _ => FaultKind::FetchFail { src: node },
            };
            plan.events.push(FaultEvent { after, kind });
        }
        plan
    }
}

/// Knobs for the recovery engine (capped retries, backoff, blacklisting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// A task that fails this many times aborts the whole job
    /// (Spark's `spark.task.maxFailures`).
    pub max_task_attempts: u32,
    /// Base delay before retrying a failed shuffle fetch; doubles per
    /// attempt (exponential backoff, capped by `max_task_attempts`).
    pub fetch_backoff: SimDuration,
    /// A node attributed this many task-level failures is blacklisted:
    /// no further task launches, pinned work is re-homed.
    pub blacklist_after: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_task_attempts: 4,
            fetch_backoff: SimDuration::from_millis(200),
            blacklist_after: 3,
        }
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)] // terse literal indexing is fine in tests
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let p = FaultPlan::new()
            .after(SimDuration::from_secs(1), FaultKind::BlockLoss { node: 0 })
            .after(SimDuration::from_secs(2), FaultKind::FetchFail { src: 1 });
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.events[0].kind, FaultKind::BlockLoss { node: 0 });
        assert_eq!(p.events[1].after, SimDuration::from_secs(2));
    }

    #[test]
    fn validate_rejects_out_of_range_node() {
        let p = FaultPlan::new().after(
            SimDuration::from_secs(1),
            FaultKind::NodeCrash {
                node: 4,
                restart: None,
            },
        );
        assert!(p.validate(4).is_err());
        assert!(p.validate(5).is_ok());
    }

    #[test]
    fn validate_rejects_bad_degrade_factor() {
        for factor in [0.0, -0.5, 1.5] {
            let p = FaultPlan::new().after(
                SimDuration::from_secs(1),
                FaultKind::SsdDegrade { node: 0, factor },
            );
            assert!(p.validate(4).is_err(), "factor {factor} should be invalid");
        }
    }

    #[test]
    fn validate_rejects_zero_nth_launch() {
        let p = FaultPlan::new().after(
            SimDuration::from_secs(1),
            FaultKind::TaskFail { nth_launch: 0 },
        );
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_valid() {
        let a = FaultPlan::seeded(42, 8, 6, SimDuration::from_secs(100));
        let b = FaultPlan::seeded(42, 8, 6, SimDuration::from_secs(100));
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 6);
        a.validate(8).expect("seeded plan must be valid");
        let c = FaultPlan::seeded(43, 8, 6, SimDuration::from_secs(100));
        assert_ne!(a, c, "different seeds should give different plans");
    }
}
