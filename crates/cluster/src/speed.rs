//! Per-node speed variation.
//!
//! §V-B: "Although the compute nodes in a compute-centric environment are
//! homogeneous, there exist performance variations among compute nodes due to
//! the skew of workloads over time. As a result fast nodes tend to be
//! assigned with more tasks by the scheduler" — which then skews the
//! intermediate-data distribution (Fig 12). We model a multiplicative speed
//! factor per node: task compute time = base_time / factor.

use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How node speeds are drawn.
#[derive(Clone, Debug)]
pub enum SpeedModel {
    /// All nodes run at exactly 1.0× — the idealized homogeneous cluster.
    Homogeneous,
    /// Factors drawn uniformly from `[lo, hi]` once at startup.
    Uniform { lo: f64, hi: f64 },
    /// A fraction of nodes is slowed (background interference); the rest run
    /// at full speed. `slow_frac` in `[0, 1]`, `slow_factor` < 1.
    TwoClass { slow_frac: f64, slow_factor: f64 },
    /// Lognormal-ish dispersion around 1.0 resampled every `period_secs`,
    /// modeling time-varying workload skew. `sigma` controls spread.
    Fluctuating { sigma: f64, period_secs: f64 },
}

impl SpeedModel {
    /// The paper-calibrated default: moderate dispersion that yields the
    /// ~2× head-to-tail workload difference of Fig 12.
    pub fn paper_default() -> Self {
        SpeedModel::Fluctuating {
            sigma: 0.25,
            period_secs: 30.0,
        }
    }
}

/// Materialized per-node speed factors, resampled on demand.
pub struct SpeedSampler {
    model: SpeedModel,
    rng: SmallRng,
    factors: Vec<f64>,
}

impl SpeedSampler {
    pub fn new(model: SpeedModel, nodes: u32, seed: u64) -> Self {
        let mut s = SpeedSampler {
            model,
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_c1a5),
            factors: vec![1.0; nodes as usize],
        };
        s.resample();
        s
    }

    /// Seconds between resamples, or `None` for static models.
    pub fn resample_period(&self) -> Option<f64> {
        match self.model {
            SpeedModel::Fluctuating { period_secs, .. } => Some(period_secs),
            _ => None,
        }
    }

    /// Redraw all factors (called at startup and, for `Fluctuating`, on the
    /// resample period).
    pub fn resample(&mut self) {
        let n = self.factors.len();
        match self.model {
            SpeedModel::Homogeneous => {
                self.factors.iter_mut().for_each(|f| *f = 1.0);
            }
            SpeedModel::Uniform { lo, hi } => {
                assert!(lo > 0.0 && hi >= lo);
                for f in &mut self.factors {
                    *f = self.rng.gen_range(lo..=hi);
                }
            }
            SpeedModel::TwoClass {
                slow_frac,
                slow_factor,
            } => {
                assert!((0.0..=1.0).contains(&slow_frac) && slow_factor > 0.0);
                let slow_count = ((n as f64) * slow_frac).round() as usize;
                // Deterministic choice of which nodes are slow: the tail of a
                // seeded shuffle, so reruns are stable.
                let mut idx: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = self.rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                for (k, &i) in idx.iter().enumerate() {
                    self.factors[i] = if k < slow_count { slow_factor } else { 1.0 };
                }
            }
            SpeedModel::Fluctuating { sigma, .. } => {
                assert!(sigma >= 0.0);
                for f in &mut self.factors {
                    // Approximate lognormal: exp(sigma * z), z ~ N(0,1) via
                    // sum of uniforms (Irwin–Hall, 12 terms), clamped to keep
                    // the model sane.
                    let z: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum::<f64>() - 6.0;
                    *f = (sigma * z).exp().clamp(0.4, 2.5);
                }
            }
        }
    }

    pub fn factor(&self, node: NodeId) -> f64 {
        self.factors[node.index()]
    }

    pub fn factors(&self) -> &[f64] {
        &self.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_all_ones() {
        let s = SpeedSampler::new(SpeedModel::Homogeneous, 10, 1);
        assert!(s.factors().iter().all(|&f| f == 1.0));
        assert_eq!(s.resample_period(), None);
    }

    #[test]
    fn uniform_within_bounds_and_deterministic() {
        let a = SpeedSampler::new(SpeedModel::Uniform { lo: 0.5, hi: 1.5 }, 100, 42);
        let b = SpeedSampler::new(SpeedModel::Uniform { lo: 0.5, hi: 1.5 }, 100, 42);
        assert_eq!(a.factors(), b.factors());
        assert!(a.factors().iter().all(|&f| (0.5..=1.5).contains(&f)));
        // Not all identical.
        assert!(a.factors().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn two_class_has_expected_slow_count() {
        let s = SpeedSampler::new(
            SpeedModel::TwoClass {
                slow_frac: 0.3,
                slow_factor: 0.5,
            },
            100,
            7,
        );
        let slow = s.factors().iter().filter(|&&f| f == 0.5).count();
        assert_eq!(slow, 30);
    }

    #[test]
    fn fluctuating_changes_on_resample() {
        let mut s = SpeedSampler::new(SpeedModel::paper_default(), 50, 9);
        let before = s.factors().to_vec();
        s.resample();
        assert_ne!(before, s.factors());
        assert!(s.factors().iter().all(|&f| (0.4..=2.5).contains(&f)));
        assert_eq!(s.resample_period(), Some(30.0));
    }

    #[test]
    fn paper_default_dispersion_gives_load_skew_headroom() {
        // The mechanism behind Fig 12 needs a meaningful fast/slow spread.
        let s = SpeedSampler::new(SpeedModel::paper_default(), 100, 3);
        let max = s.factors().iter().cloned().fold(0.0, f64::max);
        let min = s.factors().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.5, "spread too small: {max}/{min}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpeedSampler::new(SpeedModel::paper_default(), 20, 1);
        let b = SpeedSampler::new(SpeedModel::paper_default(), 20, 2);
        assert_ne!(a.factors(), b.factors());
    }
}
