//! # memres-cluster — cluster topology and node heterogeneity
//!
//! Describes the machine the experiments run on: nodes, cores, racks, memory
//! budgets, device characteristics, and the per-node *speed variation*
//! process the paper blames for load imbalance ("there exist performance
//! variations among compute nodes due to the skew of workloads over time",
//! §V-B). The [`hyperion`] preset mirrors the LLNL testbed of §III-A.

pub mod speed;

pub use speed::{SpeedModel, SpeedSampler};

use memres_des::units::{GB, MB};

/// Identifies a compute node. Node 0..workers are workers; the master/driver
/// is modeled outside the worker set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RackId(pub u16);

/// Static description of the cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of worker nodes (the paper uses 100 of Hyperion's 101).
    pub workers: u32,
    /// Cores per node = executor task slots.
    pub cores_per_node: u32,
    /// Racks; nodes are striped across racks round-robin.
    pub racks: u16,
    /// Memory allocated to the framework per node (bytes) — "30 GB per node
    /// for Spark jobs".
    pub framework_mem: f64,
    /// RAMDisk capacity per node (bytes) — 32 GB on Hyperion.
    pub ramdisk_capacity: f64,
    /// SSD capacity per node (bytes) — 128 GB on Hyperion.
    pub ssd_capacity: f64,
    /// Per-node NIC bandwidth, bytes/sec each direction (IB QDR ≈ 32 Gbps).
    pub nic_bandwidth: f64,
    /// Per-rack uplink bandwidth, bytes/sec (fat enough on Hyperion that it
    /// rarely binds, but modeled so rack locality is meaningful).
    pub rack_uplink: f64,
    /// Aggregate Lustre bandwidth, bytes/sec (47 GB/s on Hyperion).
    pub lustre_bandwidth: f64,
    /// Number of Lustre object storage servers.
    pub lustre_oss_count: u32,
    /// Sustained metadata operations/sec at the Lustre MDS.
    pub mds_ops_per_sec: f64,
}

impl ClusterSpec {
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.workers).map(NodeId)
    }

    pub fn rack_of(&self, node: NodeId) -> RackId {
        RackId((node.0 % self.racks as u32) as u16)
    }

    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Total task slots in the cluster.
    pub fn total_slots(&self) -> u32 {
        self.workers * self.cores_per_node
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("cluster needs at least one worker".into());
        }
        if self.cores_per_node == 0 {
            return Err("nodes need at least one core".into());
        }
        if self.racks == 0 {
            return Err("cluster needs at least one rack".into());
        }
        if self.racks as u32 > self.workers {
            // Round-robin striping would leave 0-node racks, whose uplinks
            // carry no flows but whose indices the fabric still hands out.
            return Err(format!(
                "{} racks but only {} workers (would create empty racks)",
                self.racks, self.workers
            ));
        }
        for (name, v) in [
            ("framework_mem", self.framework_mem),
            ("ramdisk_capacity", self.ramdisk_capacity),
            ("ssd_capacity", self.ssd_capacity),
            ("nic_bandwidth", self.nic_bandwidth),
            ("rack_uplink", self.rack_uplink),
            ("lustre_bandwidth", self.lustre_bandwidth),
            ("mds_ops_per_sec", self.mds_ops_per_sec),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite (got {v})"));
            }
        }
        if self.lustre_oss_count == 0 {
            return Err("cluster needs at least one Lustre OSS".into());
        }
        Ok(())
    }

    /// Scale the cluster down, preserving relative capacities — used by tests
    /// and quick benches so model behaviour is identical in shape.
    pub fn scaled_workers(mut self, workers: u32) -> Self {
        let ratio = workers as f64 / self.workers as f64;
        self.workers = workers;
        self.lustre_bandwidth *= ratio;
        self.mds_ops_per_sec *= ratio;
        self.lustre_oss_count = ((self.lustre_oss_count as f64 * ratio).ceil() as u32).max(1);
        self
    }
}

/// The Hyperion testbed of §III-A: 100 workers, 16 cores + 64 GB each
/// (30 GB framework / 32 GB RAMDisk), SATA SSD, IB QDR, 47 GB/s Lustre.
pub fn hyperion() -> ClusterSpec {
    ClusterSpec {
        workers: 100,
        cores_per_node: 16,
        racks: 2,
        framework_mem: 30.0 * GB,
        ramdisk_capacity: 32.0 * GB,
        ssd_capacity: 128.0 * GB,
        // IB QDR: 32 Gbps link = 4 GB/s; effective payload a bit lower.
        nic_bandwidth: 3.6 * GB,
        // Fully-connected fabric across two racks: generous uplinks.
        rack_uplink: 120.0 * GB,
        lustre_bandwidth: 47.0 * GB,
        lustre_oss_count: 48,
        mds_ops_per_sec: 40_000.0,
    }
}

/// A small deterministic cluster for unit tests: few nodes, 2 cores, 2 racks.
pub fn tiny(workers: u32) -> ClusterSpec {
    ClusterSpec {
        workers,
        cores_per_node: 2,
        racks: 2,
        framework_mem: 4.0 * GB,
        ramdisk_capacity: 2.0 * GB,
        ssd_capacity: 8.0 * GB,
        nic_bandwidth: 1.0 * GB,
        rack_uplink: 8.0 * GB,
        lustre_bandwidth: 2.0 * GB,
        lustre_oss_count: 4,
        mds_ops_per_sec: 5_000.0,
    }
}

/// Convenience: evenly divide `total` bytes into `parts`, with the remainder
/// spread over the first partitions (used by block/partition layouts).
pub fn split_bytes(total: u64, parts: u32) -> Vec<u64> {
    assert!(parts > 0);
    let base = total / parts as u64;
    let rem = (total % parts as u64) as u32;
    (0..parts)
        .map(|i| base + if i < rem { 1 } else { 0 })
        .collect()
}

/// Sanity constant: HDFS block size used throughout the paper.
pub const HDFS_BLOCK: f64 = 128.0 * MB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperion_matches_paper() {
        let c = hyperion();
        c.validate().unwrap();
        assert_eq!(c.workers, 100);
        assert_eq!(c.cores_per_node, 16);
        assert_eq!(c.total_slots(), 1600);
        assert_eq!(c.racks, 2);
        assert!((c.lustre_bandwidth / GB - 47.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_degenerate_topologies() {
        let err = |mutate: fn(&mut ClusterSpec)| -> String {
            let mut c = hyperion();
            mutate(&mut c);
            c.validate().expect_err("should be rejected")
        };
        // More racks than workers ⇒ round-robin striping leaves empty racks.
        assert!(err(|c| c.racks = 200).contains("empty racks"));
        // Zero-capacity links and stores are structured errors, not NaN rates
        // or divide-by-zero panics deep inside the simulation.
        assert!(err(|c| c.nic_bandwidth = 0.0).contains("nic_bandwidth"));
        assert!(err(|c| c.rack_uplink = -1.0).contains("rack_uplink"));
        assert!(err(|c| c.ramdisk_capacity = 0.0).contains("ramdisk_capacity"));
        assert!(err(|c| c.ssd_capacity = f64::NAN).contains("ssd_capacity"));
        assert!(err(|c| c.lustre_bandwidth = f64::INFINITY).contains("lustre_bandwidth"));
        assert!(err(|c| c.lustre_oss_count = 0).contains("OSS"));
    }

    #[test]
    fn racks_stripe_round_robin() {
        let c = hyperion();
        assert_eq!(c.rack_of(NodeId(0)), RackId(0));
        assert_eq!(c.rack_of(NodeId(1)), RackId(1));
        assert_eq!(c.rack_of(NodeId(2)), RackId(0));
        assert!(c.same_rack(NodeId(0), NodeId(4)));
        assert!(!c.same_rack(NodeId(0), NodeId(5)));
    }

    #[test]
    fn scaled_cluster_preserves_per_node_share() {
        let full = hyperion();
        let small = hyperion().scaled_workers(10);
        let per_node_full = full.lustre_bandwidth / full.workers as f64;
        let per_node_small = small.lustre_bandwidth / small.workers as f64;
        assert!((per_node_full - per_node_small).abs() / per_node_full < 1e-9);
    }

    #[test]
    fn split_bytes_conserves_total() {
        let parts = split_bytes(1001, 10);
        assert_eq!(parts.len(), 10);
        assert_eq!(parts.iter().sum::<u64>(), 1001);
        assert_eq!(parts[0], 101); // remainder goes to the head
        assert_eq!(parts[9], 100);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = tiny(4);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = tiny(4);
        c.nic_bandwidth = 0.0;
        assert!(c.validate().is_err());
    }
}
