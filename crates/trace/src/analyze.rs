//! Critical-path attribution over a trace (DESIGN.md §4.11).
//!
//! The job window `[job_start, job_end]` is partitioned into elementary
//! integer-nanosecond segments at every interval boundary; each segment is
//! assigned to exactly one bucket by a fixed priority rule:
//!
//! `lock-wait > gc-stall > fetch > store > compute > retry-waste > other`
//!
//! Because the segments partition the window and the rule is total, the
//! buckets sum to the job time *exactly* (integer arithmetic, no float
//! accumulation) — the acceptance bar for `repro explain`.

use crate::{TaskClass, TimedEvent, TraceEvent};
use memres_des::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One task attempt reconstructed from launch/finish/retry events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attempt {
    pub task: u32,
    pub class: TaskClass,
    pub node: u32,
    pub attempt: u32,
    pub start: SimTime,
    pub end: SimTime,
    pub outcome: Outcome,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Finished and its output was used.
    Completed,
    /// Failed (fault-doomed, crashed node, failed fetch): pure waste.
    Failed,
    /// Ghost recompute: recovery work redoing lost output.
    Ghost,
}

impl Attempt {
    pub fn dur(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Reconstruct every task attempt interval from the event log. Attempts
/// still open at the end of the log are closed at the last event time.
pub fn attempts(events: &[TimedEvent]) -> Vec<Attempt> {
    let mut open: BTreeMap<(u32, u32), (SimTime, u32, TaskClass, bool)> = BTreeMap::new();
    let mut done: Vec<Attempt> = Vec::new();
    let mut last = SimTime::ZERO;
    for e in events {
        last = last.max(e.at);
        match e.ev {
            TraceEvent::TaskLaunched {
                task,
                node,
                class,
                attempt,
                speculative,
                ..
            } => {
                open.insert((task, attempt), (e.at, node, class, speculative));
            }
            TraceEvent::TaskFinished {
                task,
                attempt,
                ghost,
                ..
            } => {
                if let Some((start, node, class, _)) = open.remove(&(task, attempt)) {
                    done.push(Attempt {
                        task,
                        class,
                        node,
                        attempt,
                        start,
                        end: e.at,
                        outcome: if ghost {
                            Outcome::Ghost
                        } else {
                            Outcome::Completed
                        },
                    });
                }
            }
            TraceEvent::TaskRetried { task, attempt, .. } => {
                if let Some((start, node, class, _)) = open.remove(&(task, attempt)) {
                    done.push(Attempt {
                        task,
                        class,
                        node,
                        attempt,
                        start,
                        end: e.at,
                        outcome: Outcome::Failed,
                    });
                }
            }
            _ => {}
        }
    }
    for ((task, attempt), (start, node, class, _)) in open {
        done.push(Attempt {
            task,
            class,
            node,
            attempt,
            start,
            end: last.max(start),
            outcome: Outcome::Completed,
        });
    }
    done.sort_by_key(|a| (a.start, a.task, a.attempt));
    done
}

/// End-to-end job-time attribution. All values are integer-nanosecond
/// [`SimDuration`]s; the buckets partition `job` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    pub job: SimDuration,
    pub compute: SimDuration,
    pub store: SimDuration,
    pub fetch: SimDuration,
    pub lock_wait: SimDuration,
    pub gc_stall: SimDuration,
    pub retry_waste: SimDuration,
    pub other: SimDuration,
}

impl Attribution {
    pub fn buckets(&self) -> [(&'static str, SimDuration); 7] {
        [
            ("compute", self.compute),
            ("store", self.store),
            ("fetch", self.fetch),
            ("lock-wait", self.lock_wait),
            ("gc-stall", self.gc_stall),
            ("retry-waste", self.retry_waste),
            ("other", self.other),
        ]
    }

    /// Sum of all buckets — equals `job` by construction (exact integer
    /// addition over a fixed-size array, so order is immaterial).
    pub fn sum(&self) -> SimDuration {
        self.buckets()
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, v)| acc + v)
    }
}

/// Sweep-line counter categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Cat {
    Lock,
    GcDevice,
    Fetch,
    Store,
    Compute,
    Waste,
}

pub fn attribute(events: &[TimedEvent]) -> Attribution {
    let Some((job_start, job_end)) = job_window(events) else {
        return Attribution::default();
    };
    let mut deltas: Vec<(u64, Cat, i64)> = Vec::new();
    let mut span = |s: u64, e: u64, cat: Cat| {
        let (s, e) = (s.clamp(job_start, job_end), e.clamp(job_start, job_end));
        if e > s {
            deltas.push((s, cat, 1));
            deltas.push((e, cat, -1));
        }
    };

    // Task attempts: successful ones count toward their phase; failed and
    // ghost attempts are retry-waste. A retry backoff window is waste too.
    for a in attempts(events) {
        let cat = match a.outcome {
            Outcome::Completed => match a.class {
                TaskClass::Compute => Cat::Compute,
                TaskClass::Store => Cat::Store,
                TaskClass::Fetch => Cat::Fetch,
            },
            Outcome::Failed | Outcome::Ghost => Cat::Waste,
        };
        span(a.start.as_nanos(), a.end.as_nanos(), cat);
    }

    // Lock waits, retry backoffs, and SSD device stalls.
    let mut lock_open: BTreeMap<u32, u64> = BTreeMap::new();
    let mut gc_open: BTreeMap<u32, u64> = BTreeMap::new();
    let mut buf_open: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        let t = e.at.as_nanos();
        match e.ev {
            TraceEvent::TaskRetried { backoff, .. } if backoff > SimDuration::ZERO => {
                span(t, t.saturating_add(backoff.as_nanos()), Cat::Waste);
            }
            TraceEvent::LockWaitStart { task } => {
                lock_open.insert(task, t);
            }
            TraceEvent::LockWaitEnd { task } => {
                if let Some(s) = lock_open.remove(&task) {
                    span(s, t, Cat::Lock);
                }
            }
            TraceEvent::LockWaitFor { dur, .. } => {
                span(t, t.saturating_add(dur.as_nanos()), Cat::Lock);
            }
            TraceEvent::GcStart { node } => {
                gc_open.entry(node).or_insert(t);
            }
            TraceEvent::GcEnd { node } => {
                if let Some(s) = gc_open.remove(&node) {
                    span(s, t, Cat::GcDevice);
                }
            }
            TraceEvent::BufFull { node } => {
                buf_open.entry(node).or_insert(t);
            }
            TraceEvent::BufDrained { node } => {
                if let Some(s) = buf_open.remove(&node) {
                    span(s, t, Cat::GcDevice);
                }
            }
            _ => {}
        }
    }
    for (_, s) in lock_open {
        span(s, job_end, Cat::Lock);
    }
    for (_, s) in gc_open {
        span(s, job_end, Cat::GcDevice);
    }
    for (_, s) in buf_open {
        span(s, job_end, Cat::GcDevice);
    }

    // Sweep the elementary segments between boundary points.
    let mut bounds: Vec<u64> = deltas.iter().map(|&(t, _, _)| t).collect();
    bounds.push(job_start);
    bounds.push(job_end);
    bounds.sort_unstable();
    bounds.dedup();
    deltas.sort_by_key(|&(t, cat, d)| (t, cat, d));

    // Per-bucket integer accumulators (lock, gc-stall, fetch, store,
    // compute, waste, other); wrapped into `SimDuration`s at the end.
    let mut acc = [0u64; 7];
    let mut counts = [0i64; 6]; // indexed by Cat order
    let mut di = 0usize;
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        while di < deltas.len() && deltas[di].0 <= a {
            let (_, cat, d) = deltas[di];
            counts[cat as usize] += d;
            di += 1;
        }
        let len = b - a;
        let active = |c: Cat| counts[c as usize] > 0;
        let bucket = if active(Cat::Lock) {
            0
        } else if active(Cat::GcDevice) && active(Cat::Store) {
            1
        } else if active(Cat::Fetch) {
            2
        } else if active(Cat::Store) {
            3
        } else if active(Cat::Compute) {
            4
        } else if active(Cat::Waste) {
            5
        } else {
            6
        };
        acc[bucket] += len;
    }
    Attribution {
        job: SimDuration::from_nanos(job_end - job_start),
        lock_wait: SimDuration::from_nanos(acc[0]),
        gc_stall: SimDuration::from_nanos(acc[1]),
        fetch: SimDuration::from_nanos(acc[2]),
        store: SimDuration::from_nanos(acc[3]),
        compute: SimDuration::from_nanos(acc[4]),
        retry_waste: SimDuration::from_nanos(acc[5]),
        other: SimDuration::from_nanos(acc[6]),
    }
}

/// `[first JobStart, last JobEnd]`, falling back to the full event span.
fn job_window(events: &[TimedEvent]) -> Option<(u64, u64)> {
    if events.is_empty() {
        return None;
    }
    let mut start = None;
    let mut end = None;
    for e in events {
        match e.ev {
            TraceEvent::JobStart { .. } if start.is_none() => start = Some(e.at.as_nanos()),
            TraceEvent::JobEnd { .. } => end = Some(e.at.as_nanos()),
            _ => {}
        }
    }
    let lo = start.unwrap_or_else(|| events.iter().map(|e| e.at.as_nanos()).min().unwrap_or(0));
    let hi = end.unwrap_or_else(|| events.iter().map(|e| e.at.as_nanos()).max().unwrap_or(0));
    (hi >= lo).then_some((lo, hi))
}

/// Top-K straggler attempts: the longest successfully-completed attempts,
/// ties broken by (task, attempt) for determinism.
pub fn stragglers(events: &[TimedEvent], k: usize) -> Vec<Attempt> {
    let mut good: Vec<Attempt> = attempts(events)
        .into_iter()
        .filter(|a| a.outcome == Outcome::Completed)
        .collect();
    good.sort_by(|x, y| {
        y.dur()
            .cmp(&x.dur())
            .then(x.task.cmp(&y.task))
            .then(x.attempt.cmp(&y.attempt))
    });
    good.truncate(k);
    good
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, seq: u64, ev: TraceEvent) -> TimedEvent {
        TimedEvent {
            at: SimTime::from_nanos(at_ns),
            seq,
            ev,
        }
    }

    fn launch(at: u64, seq: u64, task: u32, class: TaskClass, attempt: u32) -> TimedEvent {
        ev(
            at,
            seq,
            TraceEvent::TaskLaunched {
                task,
                node: 0,
                class,
                attempt,
                queue_delay: SimDuration::ZERO,
                speculative: false,
            },
        )
    }

    fn finish(at: u64, seq: u64, task: u32, class: TaskClass, attempt: u32) -> TimedEvent {
        ev(
            at,
            seq,
            TraceEvent::TaskFinished {
                task,
                node: 0,
                class,
                attempt,
                ghost: false,
            },
        )
    }

    #[test]
    fn buckets_partition_job_time_exactly() {
        // Job 0..100. Compute 10..40, store 40..60 with GC 50..70 on the
        // store's node, fetch 60..90, lock wait 85..95.
        let evs = vec![
            ev(0, 0, TraceEvent::JobStart { job: 0 }),
            launch(10, 1, 1, TaskClass::Compute, 0),
            finish(40, 2, 1, TaskClass::Compute, 0),
            launch(40, 3, 2, TaskClass::Store, 0),
            ev(50, 4, TraceEvent::GcStart { node: 0 }),
            finish(60, 5, 2, TaskClass::Store, 0),
            launch(60, 6, 3, TaskClass::Fetch, 0),
            ev(70, 7, TraceEvent::GcEnd { node: 0 }),
            ev(85, 8, TraceEvent::LockWaitStart { task: 3 }),
            finish(90, 9, 3, TaskClass::Fetch, 0),
            ev(95, 10, TraceEvent::LockWaitEnd { task: 3 }),
            ev(
                100,
                11,
                TraceEvent::JobEnd {
                    job: 0,
                    aborted: false,
                },
            ),
        ];
        let att = attribute(&evs);
        let ns = SimDuration::from_nanos;
        assert_eq!(att.job, ns(100));
        assert_eq!(att.sum(), att.job, "buckets must partition the job");
        assert_eq!(att.compute, ns(30));
        assert_eq!(att.store, ns(10)); // 40..50 (GC takes 50..60)
        assert_eq!(att.gc_stall, ns(10)); // GC active while store runs
        assert_eq!(att.fetch, ns(25)); // 60..85 (lock wait takes 85..90)
        assert_eq!(att.lock_wait, ns(10)); // 85..95
        assert_eq!(att.retry_waste, SimDuration::ZERO);
        assert_eq!(att.other, ns(15)); // 0..10 and 95..100
    }

    #[test]
    fn failed_attempts_and_backoff_are_waste() {
        let evs = vec![
            ev(0, 0, TraceEvent::JobStart { job: 0 }),
            launch(0, 1, 1, TaskClass::Fetch, 0),
            ev(
                20,
                2,
                TraceEvent::TaskRetried {
                    task: 1,
                    node: 0,
                    attempt: 0,
                    wasted: SimDuration::from_nanos(20),
                    backoff: SimDuration::from_nanos(10),
                },
            ),
            launch(30, 3, 1, TaskClass::Fetch, 1),
            finish(50, 4, 1, TaskClass::Fetch, 1),
            ev(
                50,
                5,
                TraceEvent::JobEnd {
                    job: 0,
                    aborted: false,
                },
            ),
        ];
        let att = attribute(&evs);
        assert_eq!(att.sum(), att.job);
        assert_eq!(att.retry_waste, SimDuration::from_nanos(30)); // failed attempt + backoff
        assert_eq!(att.fetch, SimDuration::from_nanos(20));
        assert_eq!(att.other, SimDuration::ZERO);
    }

    #[test]
    fn stragglers_are_longest_completed_attempts() {
        let evs = vec![
            launch(0, 0, 1, TaskClass::Compute, 0),
            launch(0, 1, 2, TaskClass::Compute, 0),
            launch(0, 2, 3, TaskClass::Compute, 0),
            finish(30, 3, 2, TaskClass::Compute, 0),
            finish(10, 4, 1, TaskClass::Compute, 0),
            finish(20, 5, 3, TaskClass::Compute, 0),
        ];
        let top = stragglers(&evs, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].task, 2);
        assert_eq!(top[1].task, 3);
    }

    #[test]
    fn empty_trace_attributes_nothing() {
        let att = attribute(&[]);
        assert_eq!(att.job, SimDuration::ZERO);
        assert_eq!(att.sum(), SimDuration::ZERO);
    }
}
