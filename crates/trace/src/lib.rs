//! Deterministic structured event tracing (DESIGN.md §4.11).
//!
//! Every substrate of the simulator — scheduler, network flows, Lustre DLM,
//! SSD write-buffer/GC, fault injection — can emit typed events into one
//! [`TraceSink`], stamped with simulated time and an emission sequence
//! number. The sink never touches the host: no clocks, no I/O, no hashing.
//! Trace bytes are therefore a pure function of (workload, config, seed) and
//! must be identical across executor-thread counts and repeated runs; the
//! determinism tests in `memres-core` compare them byte for byte.
//!
//! The layers on top:
//! * [`analyze`] — critical-path attribution of end-to-end job time into
//!   compute / store / fetch / lock-wait / gc-stall / retry-waste buckets
//!   (exact by construction: integer-nanosecond segments that partition the
//!   job window), plus top-K straggler chains.
//! * [`export`] — Chrome trace-event (Perfetto-loadable) JSON and a compact
//!   `events.jsonl`, built as strings here and written to disk only by the
//!   bench layer (the designated I/O seam).

pub mod analyze;
pub mod export;

use memres_des::time::{SimDuration, SimTime};
use memres_des::Bytes;
use std::cell::RefCell;
use std::rc::Rc;

/// How much to record. `Off` must cost near-zero: the engine holds no sink
/// at all when tracing is off, so the guard is a single `Option` test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    #[default]
    Off,
    /// Task/job/scheduler/fault lifecycle only.
    Lifecycle,
    /// Everything: flows, DLM locks, SSD GC state transitions.
    Full,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    pub level: TraceLevel,
}

impl TraceConfig {
    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }

    pub fn lifecycle() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Lifecycle,
        }
    }

    pub fn full() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Full,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }
}

/// Coarse task classification mirroring `Phase` in memres-core (kept
/// separate so this crate depends only on memres-des).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskClass {
    Compute,
    Store,
    Fetch,
}

impl TaskClass {
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Compute => "compute",
            TaskClass::Store => "store",
            TaskClass::Fetch => "fetch",
        }
    }
}

/// The event taxonomy. Payloads are plain integers plus the unit newtypes
/// ([`SimTime`]/[`SimDuration`]/[`Bytes`], per the `time-units` rule R6 in
/// DESIGN.md §4.15), chosen so the whole record serializes without any
/// host-dependent state. The exporters unwrap to raw nanoseconds at the
/// serialization boundary, so the JSON schema (`*_ns` keys) is unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    // ---- job / stage lifecycle ----
    /// A job entered the multi-tenant arrival stream (before admission).
    JobArrived {
        job: u32,
        tenant: u32,
    },
    /// The admission controller let a queued job into the cluster.
    JobAdmitted {
        job: u32,
        tenant: u32,
    },
    JobStart {
        job: u32,
    },
    JobEnd {
        job: u32,
        aborted: bool,
    },
    StageStart {
        stage: u32,
        tasks: u32,
    },
    // ---- task lifecycle ----
    TaskQueued {
        task: u32,
        stage: u32,
        class: TaskClass,
        attempt: u32,
    },
    TaskLaunched {
        task: u32,
        node: u32,
        class: TaskClass,
        attempt: u32,
        queue_delay: SimDuration,
        speculative: bool,
    },
    TaskFinished {
        task: u32,
        node: u32,
        class: TaskClass,
        attempt: u32,
        ghost: bool,
    },
    TaskRetried {
        task: u32,
        node: u32,
        attempt: u32,
        wasted: SimDuration,
        backoff: SimDuration,
    },
    // ---- scheduler decisions ----
    DelayWait {
        node: u32,
        until: SimTime,
    },
    ElbDecline {
        node: u32,
    },
    CadGate {
        node: u32,
        until: SimTime,
    },
    Speculate {
        task: u32,
        twin: u32,
    },
    // ---- network flows ----
    FlowStart {
        flow: u64,
    },
    FlowEnd {
        flow: u64,
        bytes: Bytes,
        dur: SimDuration,
    },
    // ---- Lustre DLM ----
    LockAcquire {
        file: u64,
        client: u32,
    },
    LockRelease {
        file: u64,
    },
    LockRevoke {
        file: u64,
        dirty_bytes: Bytes,
    },
    LockWaitStart {
        task: u32,
    },
    LockWaitEnd {
        task: u32,
    },
    /// A fixed-latency lock wait known at emission time (revocation round
    /// trip): covers `[at, at + dur]`.
    LockWaitFor {
        task: u32,
        dur: SimDuration,
    },
    // ---- SSD write buffer / GC ----
    GcStart {
        node: u32,
    },
    GcEnd {
        node: u32,
    },
    BufFull {
        node: u32,
    },
    BufDrained {
        node: u32,
    },
    // ---- faults and recovery ----
    FaultInjected {
        kind: &'static str,
        node: u32,
    },
    NodeDown {
        node: u32,
    },
    NodeUp {
        node: u32,
    },
    Blacklisted {
        node: u32,
    },
    BlocksLost {
        node: u32,
        blocks: u64,
    },
    Rehost {
        from: u32,
        to: u32,
    },
    GhostsSpawned {
        node: u32,
        count: u32,
    },
}

impl TraceEvent {
    /// Stable machine name of the variant (events.jsonl `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::JobArrived { .. } => "job_arrived",
            TraceEvent::JobAdmitted { .. } => "job_admitted",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobEnd { .. } => "job_end",
            TraceEvent::StageStart { .. } => "stage_start",
            TraceEvent::TaskQueued { .. } => "task_queued",
            TraceEvent::TaskLaunched { .. } => "task_launched",
            TraceEvent::TaskFinished { .. } => "task_finished",
            TraceEvent::TaskRetried { .. } => "task_retried",
            TraceEvent::DelayWait { .. } => "delay_wait",
            TraceEvent::ElbDecline { .. } => "elb_decline",
            TraceEvent::CadGate { .. } => "cad_gate",
            TraceEvent::Speculate { .. } => "speculate",
            TraceEvent::FlowStart { .. } => "flow_start",
            TraceEvent::FlowEnd { .. } => "flow_end",
            TraceEvent::LockAcquire { .. } => "lock_acquire",
            TraceEvent::LockRelease { .. } => "lock_release",
            TraceEvent::LockRevoke { .. } => "lock_revoke",
            TraceEvent::LockWaitStart { .. } => "lock_wait_start",
            TraceEvent::LockWaitEnd { .. } => "lock_wait_end",
            TraceEvent::LockWaitFor { .. } => "lock_wait_for",
            TraceEvent::GcStart { .. } => "gc_start",
            TraceEvent::GcEnd { .. } => "gc_end",
            TraceEvent::BufFull { .. } => "buf_full",
            TraceEvent::BufDrained { .. } => "buf_drained",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::Blacklisted { .. } => "blacklisted",
            TraceEvent::BlocksLost { .. } => "blocks_lost",
            TraceEvent::Rehost { .. } => "rehost",
            TraceEvent::GhostsSpawned { .. } => "ghosts_spawned",
        }
    }

    /// Does this event belong to the cheap `Lifecycle` level (vs `Full`)?
    fn is_lifecycle(&self) -> bool {
        !matches!(
            self,
            TraceEvent::FlowStart { .. }
                | TraceEvent::FlowEnd { .. }
                | TraceEvent::LockAcquire { .. }
                | TraceEvent::LockRelease { .. }
                | TraceEvent::LockRevoke { .. }
                | TraceEvent::GcStart { .. }
                | TraceEvent::GcEnd { .. }
                | TraceEvent::BufFull { .. }
                | TraceEvent::BufDrained { .. }
        )
    }
}

/// One recorded event: simulated instant + emission sequence number. The
/// sequence number makes equal-time events totally ordered, so sorting the
/// log is a no-op and serialization is reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    pub at: SimTime,
    pub seq: u64,
    pub ev: TraceEvent,
}

/// Append-only in-memory event log. No host I/O, no host clocks.
#[derive(Debug, Default)]
pub struct TraceSink {
    level: TraceLevel,
    seq: u64,
    events: Vec<TimedEvent>,
}

impl TraceSink {
    pub fn new(cfg: TraceConfig) -> TraceSink {
        TraceSink {
            level: cfg.level,
            seq: 0,
            events: Vec::new(),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    pub fn emit(&mut self, at: SimTime, ev: TraceEvent) {
        if self.level == TraceLevel::Off {
            return;
        }
        if self.level == TraceLevel::Lifecycle && !ev.is_lifecycle() {
            return;
        }
        self.events.push(TimedEvent {
            at,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Drain the log (sequence numbering continues across takes).
    pub fn take(&mut self) -> Vec<TimedEvent> {
        std::mem::take(&mut self.events)
    }
}

/// The sink as shared by every substrate of one engine. The simulation event
/// loop is single-threaded (the parallel UDF pool never traces), so a
/// single-threaded shared cell is sufficient and keeps emission cheap.
pub type SharedSink = Rc<RefCell<TraceSink>>;

pub fn shared(cfg: TraceConfig) -> SharedSink {
    Rc::new(RefCell::new(TraceSink::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing() {
        let mut s = TraceSink::new(TraceConfig::off());
        assert!(!s.enabled());
        s.emit(SimTime::ZERO, TraceEvent::JobStart { job: 0 });
        assert!(s.is_empty());
    }

    #[test]
    fn lifecycle_level_drops_substrate_events() {
        let mut s = TraceSink::new(TraceConfig::lifecycle());
        s.emit(SimTime::ZERO, TraceEvent::JobStart { job: 0 });
        s.emit(SimTime::ZERO, TraceEvent::FlowStart { flow: 1 });
        s.emit(SimTime::ZERO, TraceEvent::GcStart { node: 0 });
        assert_eq!(s.len(), 1);
        assert_eq!(s.events()[0].ev.kind(), "job_start");
    }

    #[test]
    fn full_level_keeps_everything_in_emission_order() {
        let mut s = TraceSink::new(TraceConfig::full());
        s.emit(
            SimTime::from_secs_f64(1.0),
            TraceEvent::FlowStart { flow: 7 },
        );
        s.emit(
            SimTime::from_secs_f64(1.0),
            TraceEvent::LockAcquire { file: 3, client: 2 },
        );
        let evs = s.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert!(s.is_empty());
    }
}
