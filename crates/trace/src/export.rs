//! Trace serialization: `events.jsonl` and Chrome trace-event JSON
//! (Perfetto-loadable). Pure string builders — writing the bytes to disk is
//! the bench layer's job (the workspace's designated I/O seam), so this
//! crate stays free of host I/O and passes the determinism linter untouched.

use crate::analyze::{attempts, Outcome};
use crate::{TimedEvent, TraceEvent};

/// Deterministic JSON float: `Display` plus a trailing `.0` for integral
/// values (mirrors `memres-core::export::json_f64`).
fn num_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Microsecond timestamp with fixed 3-decimal nanosecond fraction — integer
/// math only, so the rendering is byte-stable everywhere.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// The event's payload as JSON object members (no braces), fixed key order.
fn payload(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::JobArrived { job, tenant } | TraceEvent::JobAdmitted { job, tenant } => {
            format!("\"job\":{job},\"tenant\":{tenant}")
        }
        TraceEvent::JobStart { job } => format!("\"job\":{job}"),
        TraceEvent::JobEnd { job, aborted } => format!("\"job\":{job},\"aborted\":{aborted}"),
        TraceEvent::StageStart { stage, tasks } => format!("\"stage\":{stage},\"tasks\":{tasks}"),
        TraceEvent::TaskQueued {
            task,
            stage,
            class,
            attempt,
        } => format!(
            "\"task\":{task},\"stage\":{stage},\"class\":\"{}\",\"attempt\":{attempt}",
            class.name()
        ),
        TraceEvent::TaskLaunched {
            task,
            node,
            class,
            attempt,
            queue_delay,
            speculative,
        } => format!(
            "\"task\":{task},\"node\":{node},\"class\":\"{}\",\"attempt\":{attempt},\"queue_delay_ns\":{},\"speculative\":{speculative}",
            class.name(),
            queue_delay.as_nanos()
        ),
        TraceEvent::TaskFinished {
            task,
            node,
            class,
            attempt,
            ghost,
        } => format!(
            "\"task\":{task},\"node\":{node},\"class\":\"{}\",\"attempt\":{attempt},\"ghost\":{ghost}",
            class.name()
        ),
        TraceEvent::TaskRetried {
            task,
            node,
            attempt,
            wasted,
            backoff,
        } => format!(
            "\"task\":{task},\"node\":{node},\"attempt\":{attempt},\"wasted_ns\":{},\"backoff_ns\":{}",
            wasted.as_nanos(),
            backoff.as_nanos()
        ),
        TraceEvent::DelayWait { node, until } => {
            format!("\"node\":{node},\"until_ns\":{}", until.as_nanos())
        }
        TraceEvent::ElbDecline { node } => format!("\"node\":{node}"),
        TraceEvent::CadGate { node, until } => {
            format!("\"node\":{node},\"until_ns\":{}", until.as_nanos())
        }
        TraceEvent::Speculate { task, twin } => format!("\"task\":{task},\"twin\":{twin}"),
        TraceEvent::FlowStart { flow } => format!("\"flow\":{flow}"),
        TraceEvent::FlowEnd { flow, bytes, dur } => format!(
            "\"flow\":{flow},\"bytes\":{},\"dur_ns\":{}",
            num_f64(bytes.get()),
            dur.as_nanos()
        ),
        TraceEvent::LockAcquire { file, client } => {
            format!("\"file\":{file},\"client\":{client}")
        }
        TraceEvent::LockRelease { file } => format!("\"file\":{file}"),
        TraceEvent::LockRevoke { file, dirty_bytes } => format!(
            "\"file\":{file},\"dirty_bytes\":{}",
            num_f64(dirty_bytes.get())
        ),
        TraceEvent::LockWaitStart { task } => format!("\"task\":{task}"),
        TraceEvent::LockWaitEnd { task } => format!("\"task\":{task}"),
        TraceEvent::LockWaitFor { task, dur } => {
            format!("\"task\":{task},\"dur_ns\":{}", dur.as_nanos())
        }
        TraceEvent::GcStart { node }
        | TraceEvent::GcEnd { node }
        | TraceEvent::BufFull { node }
        | TraceEvent::BufDrained { node } => format!("\"node\":{node}"),
        TraceEvent::FaultInjected { kind, node } => {
            format!("\"fault\":\"{kind}\",\"node\":{node}")
        }
        TraceEvent::NodeDown { node }
        | TraceEvent::NodeUp { node }
        | TraceEvent::Blacklisted { node } => format!("\"node\":{node}"),
        TraceEvent::BlocksLost { node, blocks } => {
            format!("\"node\":{node},\"blocks\":{blocks}")
        }
        TraceEvent::Rehost { from, to } => format!("\"from\":{from},\"to\":{to}"),
        TraceEvent::GhostsSpawned { node, count } => {
            format!("\"node\":{node},\"count\":{count}")
        }
    }
}

/// Node lane an event renders on in the timeline (0 when not node-scoped).
fn lane(ev: &TraceEvent) -> u32 {
    match *ev {
        TraceEvent::TaskLaunched { node, .. }
        | TraceEvent::TaskFinished { node, .. }
        | TraceEvent::TaskRetried { node, .. }
        | TraceEvent::DelayWait { node, .. }
        | TraceEvent::ElbDecline { node }
        | TraceEvent::CadGate { node, .. }
        | TraceEvent::GcStart { node }
        | TraceEvent::GcEnd { node }
        | TraceEvent::BufFull { node }
        | TraceEvent::BufDrained { node }
        | TraceEvent::FaultInjected { node, .. }
        | TraceEvent::NodeDown { node }
        | TraceEvent::NodeUp { node }
        | TraceEvent::Blacklisted { node }
        | TraceEvent::BlocksLost { node, .. }
        | TraceEvent::GhostsSpawned { node, .. } => node,
        _ => 0,
    }
}

/// One JSON object per line, in emission order: the compact machine-readable
/// form consumed by downstream tooling and the determinism tests.
pub fn events_jsonl(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"at_ns\":{},\"seq\":{},\"type\":\"{}\",{}}}\n",
            e.at.as_nanos(),
            e.seq,
            e.ev.kind(),
            payload(&e.ev)
        ));
    }
    out
}

/// Chrome trace-event JSON (the `{"traceEvents":[...]}` object form), ready
/// for Perfetto / `chrome://tracing`. Task attempts become complete ("X")
/// events on a per-node lane; everything else becomes an instant ("i").
pub fn chrome_trace_json(events: &[TimedEvent]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for a in attempts(events) {
        let name = match a.outcome {
            Outcome::Completed => a.class.name().to_string(),
            Outcome::Failed => format!("{}.failed", a.class.name()),
            Outcome::Ghost => format!("{}.ghost", a.class.name()),
        };
        rows.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":{},\"attempt\":{}}}}}",
            us(a.start.as_nanos()),
            us(a.dur().as_nanos()),
            a.node,
            a.task,
            a.attempt
        ));
    }
    for e in events {
        if matches!(
            e.ev,
            TraceEvent::TaskLaunched { .. } | TraceEvent::TaskFinished { .. }
        ) {
            continue; // rendered as the "X" rows above
        }
        rows.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
            e.ev.kind(),
            us(e.at.as_nanos()),
            lane(&e.ev),
            payload(&e.ev)
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskClass;
    use memres_des::time::{SimDuration, SimTime};
    use memres_des::Bytes;

    fn sample() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                at: SimTime(0),
                seq: 0,
                ev: TraceEvent::JobStart { job: 1 },
            },
            TimedEvent {
                at: SimTime(1_500),
                seq: 1,
                ev: TraceEvent::TaskLaunched {
                    task: 3,
                    node: 2,
                    class: TaskClass::Compute,
                    attempt: 0,
                    queue_delay: SimDuration::from_nanos(1_500),
                    speculative: false,
                },
            },
            TimedEvent {
                at: SimTime(9_000),
                seq: 2,
                ev: TraceEvent::TaskFinished {
                    task: 3,
                    node: 2,
                    class: TaskClass::Compute,
                    attempt: 0,
                    ghost: false,
                },
            },
            TimedEvent {
                at: SimTime(9_000),
                seq: 3,
                ev: TraceEvent::FlowEnd {
                    flow: 7,
                    bytes: Bytes(1024.0),
                    dur: SimDuration::from_nanos(500),
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line_in_order() {
        let s = events_jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"at_ns\":0,\"seq\":0,\"type\":\"job_start\",\"job\":1}"
        );
        assert!(lines[1].contains("\"type\":\"task_launched\""));
        assert!(lines[3].contains("\"bytes\":1024.0"));
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let s = chrome_trace_json(&sample());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.trim_end().ends_with("}"));
        // The compute attempt: launched at 1.5 µs, 7.5 µs long, on node 2.
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"ts\":1.500,\"dur\":7.500"), "{s}");
        assert!(s.contains("\"tid\":2"), "{s}");
        // Non-task events render as instants.
        assert!(s.contains("\"name\":\"job_start\""));
        assert!(s.contains("\"name\":\"flow_end\""));
        // Launch/finish pairs are folded into the X rows, not duplicated.
        assert!(!s.contains("\"name\":\"task_launched\""));
    }

    #[test]
    fn timestamps_render_with_fixed_nanosecond_fraction() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }
}
