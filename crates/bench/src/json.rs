//! Minimal JSON emission helpers.
//!
//! The build environment has no registry access, so serde_json is not
//! available; the handful of JSON documents this crate writes (table dumps,
//! perf records) are built with these two functions instead.

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as a JSON number (non-finite values become `null`, matching
/// serde_json's behaviour for f64).
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(num(1.0), "1.0");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.0), "2.0");
    }
}
