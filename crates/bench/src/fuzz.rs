//! memres-fuzz — differential fuzzing of the simulator against independent
//! oracles (DESIGN.md §4.13).
//!
//! A [`FuzzSpec`] is a compact, text-encodable point in the engine's config
//! space: cluster topology, workload shape, store/scheduler/queue choices,
//! fault plan and executor threading. [`FuzzSpec::generate`] derives one
//! deterministically from a seed; [`check`] runs it and holds the engine to
//! six cheap independently-implemented oracles:
//!
//! 1. **waterfill** — the incremental max–min solver's rates equal a
//!    from-scratch progressive-filling pass, audited live during the run
//!    (`FlowNet::audit_waterfill` via `Driver::run_audited`).
//! 2. **conserve** — bytes are conserved across every shuffle: reduce-side
//!    fetch totals equal the producing stage's output bytes, including when
//!    fetches ride rack-aggregated flows.
//! 3. **attribution** — critical-path attribution buckets partition the job
//!    window exactly (`sum_ns == job_ns`).
//! 4. **fault-equiv** — a faulted run that completes produces output equal
//!    to the fault-free run (lineage recovery is lossless).
//! 5. **export-determinism** — `job_json`/`tasks_csv` are byte-identical
//!    across 1-vs-N executor threads and calendar-vs-legacy event queue.
//! 6. **stream-isolation / stream-conserve** — a two-tenant job stream
//!    derived from the same spec (DESIGN.md §4.14) retires every arrival,
//!    each job's output equals its isolated single-job run (concurrent
//!    residency shares slots, never data), and bytes are conserved across
//!    every shuffle of every resident job.
//!
//! On failure, [`minimize`] greedily shrinks the spec (fewer nodes, rows,
//! faults; simpler store/scheduler/workload) while the same oracle keeps
//! failing, yielding a smallest reproducer whose `repro fuzz --replay`
//! line is self-contained. Failing specs are checked into
//! `crates/bench/fuzz_corpus/` and replayed by `cargo test`: specs with
//! `defect=0` must pass (fixed regressions stay fixed), specs with
//! `defect=1` carry a deliberately injected engine defect and must keep
//! *failing* (the oracles still catch that class of bug).

use memres_cluster::ClusterSpec;
use memres_core::export;
use memres_core::prelude::*;
use memres_core::{
    ArrivalProcess, Defect, FinishedJob, InterJobPolicy, StreamSpec, TenantSpec, TimedEvent,
};
use memres_des::time::SimDuration;
use memres_des::units::MB;
use memres_workloads::{Grep, GroupBy, WordCount};
use std::fmt::Write as _;

/// Jobs per tenant in the stream oracle's two-tenant mix.
const STREAM_JOBS: u32 = 2;

/// Data seed for tenant `t`, stream job `k`: distinct per job so every job
/// has a distinct correct answer, deterministic so isolated replays match.
fn stream_data_seed(seed: u64, t: u32, k: u32) -> u64 {
    seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(((t as u64) << 32) | (k as u64 + 1))
}

/// Spec-encoding version; bump on any grammar change so stale corpus files
/// fail loudly instead of silently re-interpreting.
const SPEC_VERSION: &str = "v1";

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    Ram,
    Ssd,
    LustreLocal,
    LustreShared,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    Hdfs,
    Lustre,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    Fifo,
    Delay,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    GroupBy,
    Grep,
    WordCount,
}

/// One point in the engine's configuration space, plus the workload run on
/// it. Everything is plain data so the spec round-trips through a single
/// `key=value` line (the replay / corpus format).
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzSpec {
    pub seed: u64,
    pub workers: u32,
    pub racks: u16,
    pub cores: u32,
    pub store: StoreKind,
    pub input: InputKind,
    pub sched: SchedKind,
    /// `rack_agg_threshold` (`u32::MAX` encodes as `off`).
    pub agg: u32,
    pub legacy: bool,
    pub threads: u32,
    pub trace: bool,
    pub elb: bool,
    pub cad: bool,
    /// Per-task compute jitter in [0, 1), ×100 so the spec stays integral.
    pub jitter_pct: u32,
    pub wl: WorkloadKind,
    pub rows: u64,
    pub keys: u64,
    pub parts: u32,
    pub reducers: u32,
    /// Number of seeded fault events composed into the plan (0 = fault-free).
    pub faults: u32,
    /// Deliberate engine defect (oracle demonstrations only).
    pub defect: bool,
}

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FuzzSpec {
    /// Derive a spec from `seed` — deterministic, and constructed to always
    /// satisfy [`FuzzSpec::validate`].
    pub fn generate(seed: u64) -> FuzzSpec {
        let mut s = seed ^ 0x5bf0_3635_ded5_4f6b;
        let mut next = move || splitmix64(&mut s);
        let racks = 1 + (next() % 4) as u16;
        // Enough workers that every rack is populated and small shuffles
        // still cross racks.
        let workers = (racks as u32 * 2) + (next() % 16) as u32;
        let per_rack = (workers / racks as u32) as u64;
        let agg = match next() % 4 {
            // Force aggregation outright, sit just at/below the boundary,
            // keep the default, or disable — the PR 6 exactness boundary is
            // fuzzed from both sides.
            0 => 0,
            1 => (per_rack * per_rack).saturating_sub(next() % 3) as u32,
            2 => 4096,
            _ => u32::MAX,
        };
        FuzzSpec {
            seed,
            workers,
            racks,
            cores: 2 + (next() % 3) as u32,
            store: match next() % 4 {
                0 => StoreKind::Ram,
                1 => StoreKind::Ssd,
                2 => StoreKind::LustreLocal,
                _ => StoreKind::LustreShared,
            },
            input: if next() % 2 == 0 {
                InputKind::Hdfs
            } else {
                InputKind::Lustre
            },
            sched: if next() % 3 == 0 {
                SchedKind::Delay
            } else {
                SchedKind::Fifo
            },
            agg,
            legacy: next() % 2 == 0,
            threads: 1 + (next() % 3) as u32,
            trace: next() % 2 == 0,
            elb: next() % 4 == 0,
            cad: next() % 4 == 0,
            jitter_pct: (next() % 30) as u32,
            wl: match next() % 3 {
                0 => WorkloadKind::GroupBy,
                1 => WorkloadKind::Grep,
                _ => WorkloadKind::WordCount,
            },
            rows: 200 + next() % 1400,
            keys: 5 + next() % 90,
            parts: 2 + (next() % 12) as u32,
            reducers: 2 + (next() % 7) as u32,
            faults: (next() % 4).saturating_sub(1) as u32,
            defect: false,
        }
    }

    /// Structural sanity (what [`memres_core::Driver::try_new`] would reject,
    /// checked cheaply up front so shrink candidates never waste a run).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 || self.racks == 0 || self.cores == 0 {
            return Err("workers, racks and cores must be positive".into());
        }
        if self.racks as u32 > self.workers {
            return Err("more racks than workers".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.jitter_pct >= 100 {
            return Err("jitter_pct must be < 100".into());
        }
        if self.rows == 0 || self.keys == 0 || self.parts == 0 || self.reducers == 0 {
            return Err("workload shape must be positive".into());
        }
        Ok(())
    }

    pub fn cluster(&self) -> ClusterSpec {
        let mut c = memres_cluster::tiny(self.workers);
        c.racks = self.racks;
        c.cores_per_node = self.cores;
        c
    }

    /// The engine configuration this spec describes (fault plan excluded —
    /// the harness attaches it only to the faulted comparison run).
    pub fn config(&self) -> EngineConfig {
        let mut cfg = EngineConfig {
            input: match self.input {
                InputKind::Hdfs => InputSource::HdfsRamDisk,
                InputKind::Lustre => InputSource::Lustre,
            },
            shuffle: match self.store {
                StoreKind::Ram => ShuffleStore::Local(StoreDevice::RamDisk),
                StoreKind::Ssd => ShuffleStore::Local(StoreDevice::Ssd),
                StoreKind::LustreLocal => ShuffleStore::LustreLocal,
                StoreKind::LustreShared => ShuffleStore::LustreShared,
            },
            task_jitter: self.jitter_pct as f64 / 100.0,
            seed: self.seed,
            legacy_event_queue: self.legacy,
            rack_agg_threshold: self.agg,
            ..EngineConfig::default()
        }
        .homogeneous()
        .with_executor_threads(self.threads as usize);
        if let SchedKind::Delay = self.sched {
            cfg = cfg.with_delay_scheduling(SimDuration::from_secs(1));
        }
        if self.trace {
            cfg = cfg.with_trace();
        }
        if self.elb {
            cfg = cfg.with_elb();
        }
        if self.cad {
            cfg = cfg.with_cad();
        }
        if self.defect {
            cfg = cfg.with_defect(Defect::DropAggBytes);
        }
        cfg
    }

    /// Build the workload's lineage graph. Rebuilt fresh for every run —
    /// shared `Rdd` handles would hide instance-keyed nondeterminism.
    pub fn build_rdd(&self) -> (Rdd, Action) {
        self.build_rdd_seeded(self.seed)
    }

    /// [`FuzzSpec::build_rdd`] with an explicit data seed: the stream
    /// oracle gives every job in a tenant's stream distinct data (and
    /// therefore a distinct correct answer).
    pub fn build_rdd_seeded(&self, seed: u64) -> (Rdd, Action) {
        match self.wl {
            WorkloadKind::GroupBy => {
                let g = GroupBy::new(self.parts as f64 * 256.0 * MB).with_reducers(self.reducers);
                (g.build_real(self.rows, self.keys, seed), Action::Count)
            }
            WorkloadKind::Grep => {
                let mut g = Grep::new(self.parts as f64 * 32.0 * MB);
                g.reducers = Some(self.reducers);
                (g.build_real(self.rows, "the", seed), Action::Count)
            }
            WorkloadKind::WordCount => {
                let mut w = WordCount::new(self.parts as f64 * 128.0 * MB);
                w.reducers = Some(self.reducers);
                (w.build_real(self.rows, seed), Action::Count)
            }
        }
    }

    /// The two tenant workload factories of the stream oracle: tenant 0
    /// replays the spec's own workload (data re-seeded per job), tenant 1
    /// runs a small fixed WordCount so the resident mix crosses workload
    /// shapes. Exposed so the oracle replays each job in isolation.
    pub fn stream_factories(&self) -> [memres_core::JobFactory; 2] {
        let own = self.clone();
        let tenant0: memres_core::JobFactory =
            std::sync::Arc::new(move |k| own.build_rdd_seeded(stream_data_seed(own.seed, 0, k)));
        let seed = self.seed;
        let tenant1: memres_core::JobFactory = std::sync::Arc::new(move |k| {
            let mut w = WordCount::new(2.0 * 128.0 * MB);
            w.reducers = Some(2);
            (
                w.build_real(120, stream_data_seed(seed, 1, k)),
                Action::Count,
            )
        });
        [tenant0, tenant1]
    }

    /// The two-tenant stream the multi-job oracle runs. Arrivals are
    /// near-simultaneous so residency genuinely overlaps; the inter-job
    /// policy is derived from the seed so the fuzzer sweeps all three.
    pub fn stream(&self) -> StreamSpec {
        let [tenant0, tenant1] = self.stream_factories();
        let policy = match self.seed % 3 {
            0 => InterJobPolicy::Fifo,
            1 => InterJobPolicy::FairShare,
            _ => InterJobPolicy::Capacity {
                guarantees: vec![1, 1],
            },
        };
        StreamSpec::new(
            vec![
                TenantSpec::new(
                    "own",
                    STREAM_JOBS,
                    ArrivalProcess::Periodic { period_secs: 0.05 },
                    tenant0,
                ),
                TenantSpec::new(
                    "wordcount",
                    STREAM_JOBS,
                    ArrivalProcess::OpenExp { mean_secs: 0.1 },
                    tenant1,
                ),
            ],
            policy,
            self.seed,
        )
    }

    /// One-line `key=value` encoding — the replay and corpus format.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{SPEC_VERSION} seed={} workers={} racks={} cores={} store={} input={} \
             sched={} agg={} legacy={} threads={} trace={} elb={} cad={} jitter={} \
             wl={} rows={} keys={} parts={} reducers={} faults={} defect={}",
            self.seed,
            self.workers,
            self.racks,
            self.cores,
            match self.store {
                StoreKind::Ram => "ram",
                StoreKind::Ssd => "ssd",
                StoreKind::LustreLocal => "lustre-local",
                StoreKind::LustreShared => "lustre-shared",
            },
            match self.input {
                InputKind::Hdfs => "hdfs",
                InputKind::Lustre => "lustre",
            },
            match self.sched {
                SchedKind::Fifo => "fifo",
                SchedKind::Delay => "delay",
            },
            if self.agg == u32::MAX {
                "off".to_string()
            } else {
                self.agg.to_string()
            },
            self.legacy as u8,
            self.threads,
            self.trace as u8,
            self.elb as u8,
            self.cad as u8,
            self.jitter_pct,
            match self.wl {
                WorkloadKind::GroupBy => "groupby",
                WorkloadKind::Grep => "grep",
                WorkloadKind::WordCount => "wordcount",
            },
            self.rows,
            self.keys,
            self.parts,
            self.reducers,
            self.faults,
            self.defect as u8,
        );
        s
    }

    /// Parse the [`FuzzSpec::encode`] form. Unknown keys and missing fields
    /// are hard errors — a corpus line must mean exactly one spec.
    pub fn parse(line: &str) -> Result<FuzzSpec, String> {
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some(v) if v == SPEC_VERSION => {}
            Some(v) => return Err(format!("unsupported spec version '{v}'")),
            None => return Err("empty spec".into()),
        }
        // Start from a filler spec and require every field to be present.
        let mut spec = FuzzSpec::generate(0);
        let mut seen: Vec<&str> = Vec::new();
        for tok in tokens {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed token '{tok}' (want key=value)"))?;
            let intval = || -> Result<u64, String> {
                val.parse::<u64>()
                    .map_err(|_| format!("{key} wants an integer, got '{val}'"))
            };
            let boolval = || -> Result<bool, String> {
                match val {
                    "0" => Ok(false),
                    "1" => Ok(true),
                    _ => Err(format!("{key} wants 0 or 1, got '{val}'")),
                }
            };
            match key {
                "seed" => spec.seed = intval()?,
                "workers" => spec.workers = intval()? as u32,
                "racks" => spec.racks = intval()? as u16,
                "cores" => spec.cores = intval()? as u32,
                "store" => {
                    spec.store = match val {
                        "ram" => StoreKind::Ram,
                        "ssd" => StoreKind::Ssd,
                        "lustre-local" => StoreKind::LustreLocal,
                        "lustre-shared" => StoreKind::LustreShared,
                        _ => return Err(format!("unknown store '{val}'")),
                    }
                }
                "input" => {
                    spec.input = match val {
                        "hdfs" => InputKind::Hdfs,
                        "lustre" => InputKind::Lustre,
                        _ => return Err(format!("unknown input '{val}'")),
                    }
                }
                "sched" => {
                    spec.sched = match val {
                        "fifo" => SchedKind::Fifo,
                        "delay" => SchedKind::Delay,
                        _ => return Err(format!("unknown sched '{val}'")),
                    }
                }
                "agg" => {
                    spec.agg = if val == "off" {
                        u32::MAX
                    } else {
                        intval()? as u32
                    }
                }
                "legacy" => spec.legacy = boolval()?,
                "threads" => spec.threads = intval()? as u32,
                "trace" => spec.trace = boolval()?,
                "elb" => spec.elb = boolval()?,
                "cad" => spec.cad = boolval()?,
                "jitter" => spec.jitter_pct = intval()? as u32,
                "wl" => {
                    spec.wl = match val {
                        "groupby" => WorkloadKind::GroupBy,
                        "grep" => WorkloadKind::Grep,
                        "wordcount" => WorkloadKind::WordCount,
                        _ => return Err(format!("unknown workload '{val}'")),
                    }
                }
                "rows" => spec.rows = intval()?,
                "keys" => spec.keys = intval()?,
                "parts" => spec.parts = intval()? as u32,
                "reducers" => spec.reducers = intval()? as u32,
                "faults" => spec.faults = intval()? as u32,
                "defect" => spec.defect = boolval()?,
                _ => return Err(format!("unknown key '{key}'")),
            }
            seen.push(key);
        }
        const REQUIRED: [&str; 21] = [
            "seed", "workers", "racks", "cores", "store", "input", "sched", "agg", "legacy",
            "threads", "trace", "elb", "cad", "jitter", "wl", "rows", "keys", "parts", "reducers",
            "faults", "defect",
        ];
        for r in REQUIRED {
            if !seen.contains(&r) {
                return Err(format!("spec is missing '{r}'"));
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The self-contained reproducer command line.
    pub fn replay_line(&self) -> String {
        format!("repro fuzz --replay '{}'", self.encode())
    }
}

/// An oracle violation: which oracle, and what it saw.
#[derive(Clone, Debug)]
pub struct Failure {
    pub oracle: &'static str,
    pub message: String,
}

impl Failure {
    fn new(oracle: &'static str, message: impl Into<String>) -> Failure {
        Failure {
            oracle,
            message: message.into(),
        }
    }
}

/// How often `run_audited` cross-checks live engine state (oracle 1).
const AUDIT_EVERY: u64 = 2048;

fn run_spec(
    spec: &FuzzSpec,
    budget: u64,
    faults: Option<FaultPlan>,
) -> Result<(memres_core::world::JobOutput, JobMetrics, Vec<TimedEvent>), String> {
    let mut cfg = spec.config();
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let mut d = Driver::try_new(spec.cluster(), cfg)?;
    // Strict event discipline: scheduling before `now` panics instead of
    // clamping, even in release fuzz runs (the dynamic `event-past` check).
    d.set_strict_schedule(true);
    d.set_max_steps(budget);
    let (rdd, action) = spec.build_rdd();
    let (out, metrics) = d.run_audited(&rdd, action, AUDIT_EVERY)?;
    Ok((out, metrics, d.take_trace()))
}

/// Oracle 2: bytes are conserved across every shuffle boundary — the
/// reduce side fetches exactly what the producing stage deposited, whether
/// the fetches ride per-node flows or rack-aggregated ones. Computed from
/// the public task metrics, independent of the engine's bucket accounting.
/// Valid for fault-free, speculation-off runs (ghost attempts and killed
/// speculative copies deposit partial bytes by design).
pub fn check_conservation(m: &JobMetrics) -> Result<(), String> {
    let max_stage = m.tasks.iter().map(|t| t.stage).max().unwrap_or(0);
    for s in 1..=max_stage {
        let fetched: f64 = m
            .tasks
            .iter()
            .filter(|t| t.stage == s && t.phase == Phase::Shuffling)
            .map(|t| t.input_bytes)
            .sum();
        let has_fetch = m
            .tasks
            .iter()
            .any(|t| t.stage == s && t.phase == Phase::Shuffling);
        if !has_fetch {
            continue;
        }
        // Producers: compute tasks of the prior stage (and fetch tasks of
        // iterative jobs); Store tasks mirror their producer's bytes and
        // must not be double-counted.
        let produced: f64 = m
            .tasks
            .iter()
            .filter(|t| t.stage + 1 == s && t.phase != Phase::Storing)
            .map(|t| t.output_bytes)
            .sum();
        let tol = 1e-6 * produced.max(1.0);
        if (fetched - produced).abs() > tol {
            return Err(format!(
                "stage {s}: fetched {fetched:.3} bytes but stage {} produced {produced:.3}",
                s - 1
            ));
        }
    }
    Ok(())
}

/// Run every oracle against `spec`. `budget` caps simulator events per run.
pub fn check(spec: &FuzzSpec, budget: u64) -> Result<(), Failure> {
    spec.validate().map_err(|e| Failure::new("validate", e))?;

    // Clean run, audited: oracle 1 fires inside `run_audited`; deadlocks
    // and event storms surface as errors here instead of panics.
    let (clean_out, clean_m, clean_trace) =
        run_spec(spec, budget, None).map_err(|e| Failure::new("waterfill", e))?;
    if clean_out.aborted {
        return Err(Failure::new("waterfill", "fault-free run aborted"));
    }

    // Oracle 2: byte conservation across the shuffle.
    check_conservation(&clean_m).map_err(|e| Failure::new("conserve", e))?;

    // Oracle 3: attribution buckets partition the job window exactly.
    if spec.trace {
        let att = memres_trace::analyze::attribute(&clean_trace);
        if att.sum() != att.job {
            return Err(Failure::new(
                "attribution",
                format!(
                    "buckets sum to {} ns but the job window is {} ns",
                    att.sum().as_nanos(),
                    att.job.as_nanos()
                ),
            ));
        }
    }

    // Oracle 4: a faulted run that completes matches the fault-free output.
    if spec.faults > 0 {
        let horizon = SimDuration::from_secs_f64(clean_m.job_time().max(1.0));
        let plan = FaultPlan::seeded(spec.seed, spec.workers, spec.faults as usize, horizon);
        let (fault_out, _, _) =
            run_spec(spec, budget, Some(plan)).map_err(|e| Failure::new("fault-equiv", e))?;
        if !fault_out.aborted && fault_out.count != clean_out.count {
            return Err(Failure::new(
                "fault-equiv",
                format!(
                    "faulted run output {} != fault-free output {}",
                    fault_out.count, clean_out.count
                ),
            ));
        }
    }

    // Oracle 5: exports are byte-identical across executor-thread counts
    // and across the two event-queue implementations.
    let base_json = export::job_json(&clean_m);
    let base_csv = export::tasks_csv(&clean_m);
    let mut variants: Vec<(&'static str, FuzzSpec)> = Vec::new();
    let mut flipped_queue = spec.clone();
    flipped_queue.legacy = !spec.legacy;
    variants.push(("calendar-vs-legacy queue", flipped_queue));
    if spec.threads != 1 {
        let mut one_thread = spec.clone();
        one_thread.threads = 1;
        variants.push(("1-vs-N executor threads", one_thread));
    }
    for (what, v) in variants {
        let (_, m, _) = run_spec(&v, budget, None)
            .map_err(|e| Failure::new("export-determinism", format!("{what}: {e}")))?;
        if export::job_json(&m) != base_json || export::tasks_csv(&m) != base_csv {
            return Err(Failure::new(
                "export-determinism",
                format!("{what}: exports differ"),
            ));
        }
    }

    // Oracle 6: a two-tenant stream derived from the spec retires every
    // arrival; each job's output equals the same job run alone on a fresh
    // cluster, and bytes are conserved across every shuffle of every
    // resident job (concurrent residency shares slots, never data).
    let mut d = Driver::try_new(spec.cluster(), spec.config())
        .map_err(|e| Failure::new("stream-isolation", e))?;
    d.set_strict_schedule(true);
    d.set_max_steps(budget);
    let finished = d
        .run_stream_audited(spec.stream(), AUDIT_EVERY)
        .map_err(|e| Failure::new("stream-isolation", e))?;
    let want = 2 * STREAM_JOBS as usize;
    if finished.len() != want {
        return Err(Failure::new(
            "stream-isolation",
            format!("stream retired {} of {want} jobs", finished.len()),
        ));
    }
    // Per tenant, stream job `k` is the k-th admission (admission is FIFO
    // per tenant), so sort by admission to recover each job's factory index.
    let mut by_admission: Vec<&FinishedJob> = finished.iter().collect();
    by_admission.sort_by(|a, b| a.admitted.cmp(&b.admitted).then(a.id.cmp(&b.id)));
    let factories = spec.stream_factories();
    let mut seen = [0u32; 2];
    for j in by_admission {
        let t = j.tenant as usize;
        let k = seen[t];
        seen[t] += 1;
        if j.output.aborted {
            return Err(Failure::new(
                "stream-isolation",
                format!("tenant {t} job {k} aborted in a fault-free stream"),
            ));
        }
        check_conservation(&j.metrics)
            .map_err(|e| Failure::new("stream-conserve", format!("tenant {t} job {k}: {e}")))?;
        let (rdd, action) = factories[t](k);
        let mut iso = Driver::try_new(spec.cluster(), spec.config())
            .map_err(|e| Failure::new("stream-isolation", e))?;
        iso.set_strict_schedule(true);
        iso.set_max_steps(budget);
        let (iso_out, _) = iso
            .run_audited(&rdd, action, 0)
            .map_err(|e| Failure::new("stream-isolation", format!("isolated replay: {e}")))?;
        if format!("{:?}", j.output) != format!("{iso_out:?}") {
            return Err(Failure::new(
                "stream-isolation",
                format!(
                    "tenant {t} job {k}: stream output {:?} != isolated output {iso_out:?}",
                    j.output
                ),
            ));
        }
    }
    Ok(())
}

/// Shrink candidates, most-impactful first. Each is one simplification of
/// `spec`; the minimizer keeps a candidate only when the same oracle still
/// fails on it.
fn shrink_candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzSpec)| {
        let mut s = spec.clone();
        f(&mut s);
        if s != *spec && s.validate().is_ok() {
            out.push(s);
        }
    };
    push(&|s| s.rows = (s.rows / 2).max(50));
    push(&|s| s.workers = (s.workers / 2).max(s.racks as u32).max(2));
    push(&|s| s.faults = 0);
    push(&|s| s.faults /= 2);
    push(&|s| s.parts = (s.parts / 2).max(2));
    push(&|s| s.reducers = (s.reducers / 2).max(2));
    push(&|s| s.keys = (s.keys / 2).max(3));
    push(&|s| s.threads = 1);
    push(&|s| s.cores = 2);
    push(&|s| s.racks = (s.racks / 2).max(1));
    push(&|s| s.jitter_pct = 0);
    push(&|s| s.trace = false);
    push(&|s| s.legacy = false);
    push(&|s| s.elb = false);
    push(&|s| s.cad = false);
    push(&|s| s.sched = SchedKind::Fifo);
    push(&|s| s.store = StoreKind::Ram);
    push(&|s| s.input = InputKind::Hdfs);
    out
}

/// Greedily shrink a failing spec while the *same oracle* keeps failing.
/// Returns the smallest reproducer found and its failure, plus how many
/// candidate runs were spent. Bounded: at most `max_checks` re-runs.
pub fn minimize(
    spec: &FuzzSpec,
    failure: &Failure,
    budget: u64,
    max_checks: u32,
) -> (FuzzSpec, u32) {
    let mut best = spec.clone();
    let mut spent = 0u32;
    'outer: loop {
        for cand in shrink_candidates(&best) {
            if spent >= max_checks {
                break 'outer;
            }
            spent += 1;
            match check(&cand, budget) {
                Err(f) if f.oracle == failure.oracle => {
                    best = cand;
                    continue 'outer;
                }
                _ => {}
            }
        }
        break;
    }
    (best, spent)
}

/// Result of fuzzing one seed.
pub struct Outcome {
    pub seed: u64,
    pub spec: FuzzSpec,
    pub failure: Option<Failure>,
    /// Minimized reproducer when the seed failed.
    pub minimized: Option<FuzzSpec>,
}

/// Fuzz a contiguous seed range. `inject_defect` plants the deliberate
/// rack-aggregation byte-drop into every generated spec (oracle
/// demonstration mode). Failures are minimized before being reported.
pub fn run_range(
    start: u64,
    end: u64,
    budget: u64,
    inject_defect: bool,
    mut progress: impl FnMut(&Outcome),
) -> Vec<Outcome> {
    let mut outcomes = Vec::new();
    for seed in start..end {
        let mut spec = FuzzSpec::generate(seed);
        if inject_defect {
            spec.defect = true;
        }
        let outcome = match check(&spec, budget) {
            Ok(()) => Outcome {
                seed,
                spec,
                failure: None,
                minimized: None,
            },
            Err(failure) => {
                let (minimized, _) = minimize(&spec, &failure, budget, 64);
                Outcome {
                    seed,
                    spec,
                    failure: Some(failure),
                    minimized: Some(minimized),
                }
            }
        };
        progress(&outcome);
        outcomes.push(outcome);
    }
    outcomes
}

/// Machine-readable summary (written as `fuzz.json` by `repro fuzz --json`).
pub fn to_json(outcomes: &[Outcome], budget: u64) -> String {
    use crate::json::escape;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"budget\": {budget},");
    let _ = writeln!(out, "  \"seeds\": {},", outcomes.len());
    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| o.failure.is_some()).collect();
    let _ = writeln!(out, "  \"failures\": {},", failures.len());
    out.push_str("  \"cases\": [");
    for (i, o) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let f = o.failure.as_ref().expect("filtered on is_some");
        let _ = write!(
            out,
            "\n    {{\"seed\": {}, \"oracle\": \"{}\", \"message\": \"{}\", \
             \"spec\": \"{}\", \"minimized\": \"{}\"}}",
            o.seed,
            escape(f.oracle),
            escape(&f.message),
            escape(&o.spec.encode()),
            escape(&o.minimized.as_ref().unwrap_or(&o.spec).encode()),
        );
    }
    if !failures.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_encoding() {
        for seed in 0..50 {
            let spec = FuzzSpec::generate(seed);
            spec.validate().expect("generated specs are valid");
            let parsed = FuzzSpec::parse(&spec.encode()).expect("parses");
            assert_eq!(parsed, spec, "seed {seed}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FuzzSpec::parse("").is_err());
        assert!(FuzzSpec::parse("v0 seed=1").is_err());
        let spec = FuzzSpec::generate(1).encode();
        assert!(FuzzSpec::parse(&spec.replace("store=", "shop=")).is_err());
        assert!(FuzzSpec::parse(&spec.replace(" seed=1", "")).is_err());
        // Degenerate topology: parse applies structural validation.
        let mut degenerate = FuzzSpec::generate(1);
        degenerate.workers = 0;
        assert!(FuzzSpec::parse(&degenerate.encode()).is_err());
    }

    #[test]
    fn generated_specs_cover_the_config_space() {
        let specs: Vec<FuzzSpec> = (0..64).map(FuzzSpec::generate).collect();
        assert!(specs.iter().any(|s| s.agg == u32::MAX));
        assert!(specs.iter().any(|s| s.agg == 0));
        assert!(specs.iter().any(|s| s.legacy));
        assert!(specs.iter().any(|s| !s.legacy));
        assert!(specs.iter().any(|s| s.faults > 0));
        assert!(specs.iter().any(|s| s.wl == WorkloadKind::GroupBy));
        assert!(specs.iter().any(|s| s.wl == WorkloadKind::Grep));
        assert!(specs.iter().any(|s| s.wl == WorkloadKind::WordCount));
        assert!(specs.iter().any(|s| s.store == StoreKind::LustreShared));
        assert!(specs.iter().any(|s| s.threads > 1));
    }
}
