//! `repro report <cell>` / `repro diff <a> <b>`: run one benchmark cell
//! with the time-series metrics plane on, and export the sampled telemetry
//! as OpenMetrics text, a long-format `timeseries.csv`, a self-contained
//! HTML dashboard, and a `bucket,seconds` attribution CSV; then join two
//! such exports (or two BENCH_*.json baseline files) into a ranked
//! regression report with per-layer attribution (DESIGN.md §4.16).
//!
//! All report bytes are built here as strings; writing them to disk is the
//! `repro` binary's job — the workspace's designated I/O seam.

use crate::experiments::Setup;
use crate::perf;
use memres_core::prelude::*;
use memres_des::time::SimDuration;
use memres_metrics::{diff, export};
use memres_trace::analyze::attribute;
use std::fmt::Write as _;

/// One metered run of a benchmark cell: the four export artifacts plus the
/// cross-check scalars.
pub struct ReportRun {
    pub cell: String,
    /// OpenMetrics text exposition (ends in `# EOF`).
    pub openmetrics: String,
    /// Long-format `series,instance,t_s,value` CSV.
    pub timeseries_csv: String,
    /// Self-contained dashboard with inline SVG sparklines.
    pub dashboard_html: String,
    /// `bucket,seconds` critical-path attribution (includes a `job` row).
    pub attrib_csv: String,
    /// Simulated job time in seconds (from metrics, for cross-checking).
    pub job_s: f64,
    /// Sampler ticks taken over the run.
    pub ticks: u64,
}

/// Run `cell` with the periodic sampler and full tracing; `None` when the
/// name is not a known cell. `slow_ssd` injects an [`FaultKind::SsdDegrade`]
/// on every worker one simulated second in — the known-regression fixture
/// the `repro diff` acceptance check flags (storage-layer attribution).
pub fn run_cell(setup: Setup, cell: &str, slow_ssd: Option<f64>) -> Option<ReportRun> {
    let (spec, cfg, gb) = perf::cell(setup, cell)?;
    let mut cfg = cfg.with_metrics().with_trace();
    if let Some(factor) = slow_ssd {
        let mut plan = FaultPlan::new();
        for node in 0..spec.workers {
            plan = plan.after(
                SimDuration::from_secs(1),
                FaultKind::SsdDegrade { node, factor },
            );
        }
        cfg = cfg.with_faults(plan);
    }
    let mut d = Driver::new(spec, cfg);
    let m = d.run_for_metrics(&gb.build(), gb.action());
    let events = d.take_trace();
    let attribution = attribute(&events);
    let rec = d.recorder().expect("with_metrics() was set above"); // lint:allow(panic): enabled two lines up
    let attrib_pairs: Vec<(String, f64)> = attribution
        .buckets()
        .iter()
        .map(|(name, dur)| (name.to_string(), dur.as_secs_f64()))
        .collect();
    let mut attrib_csv = String::from("bucket,seconds\n");
    let _ = writeln!(attrib_csv, "job,{}", attribution.job.as_secs_f64());
    for (name, secs) in &attrib_pairs {
        let _ = writeln!(attrib_csv, "{name},{secs}");
    }
    let title = format!("memres report: {cell}");
    Some(ReportRun {
        cell: cell.to_string(),
        openmetrics: export::openmetrics(rec),
        timeseries_csv: export::timeseries_csv(rec),
        dashboard_html: export::dashboard_html(&title, rec, &attrib_pairs),
        attrib_csv,
        job_s: m.job_time(),
        ticks: rec.ticks(),
    })
}

/// Diff two report exports (timeseries + attribution CSVs) into the ranked
/// regression report. Thin naming wrapper over [`diff::diff_runs`] so the
/// binary and the shell gate share one code path.
pub fn diff_reports(
    name_a: &str,
    ts_a: &str,
    attrib_a: &str,
    name_b: &str,
    ts_b: &str,
    attrib_b: &str,
    threshold: f64,
) -> diff::DiffReport {
    diff::diff_runs(name_a, ts_a, attrib_a, name_b, ts_b, attrib_b, threshold)
}

/// Extract `(path, sim_job_s)` rows from a `BENCH_*.json` / `bench.json`
/// baseline file. The path is the brace/bracket key stack joined with `/`
/// plus the record's `"name"` field (e.g. `paper_cells/after/fig8a_600gb_ssd`),
/// so the same cell appearing under `before` and `after` stays distinct.
/// Hand-rolled line scanner over our own pretty-printed emitter's output —
/// unknown lines are skipped, never a parse error.
pub fn parse_bench_sim_times(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    let mut pending_name: Option<String> = None;
    for line in json.lines() {
        let t = line.trim().trim_end_matches(',');
        // Closers first: `}` / `]` (possibly `},`) pop the key stack.
        if t == "}" || t == "]" {
            stack.pop();
            continue;
        }
        let Some((key, val)) = t.split_once(':') else {
            // `{` / `[` openers without a key (top level, array elements).
            if t == "{" || t == "[" {
                stack.push(String::new());
            }
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let val = val.trim();
        if val == "{" || val == "[" {
            stack.push(key);
            pending_name = None;
        } else if key == "name" {
            pending_name = Some(val.trim_matches('"').to_string());
        } else if key == "sim_job_s" {
            if let (Some(name), Ok(v)) = (&pending_name, val.parse::<f64>()) {
                let path: Vec<&str> = stack
                    .iter()
                    .filter(|s| !s.is_empty())
                    .map(String::as_str)
                    .collect();
                out.push((format!("{}/{}", path.join("/"), name), v));
            }
        }
    }
    out
}

/// Regression diff between two benchmark baseline JSON files, keyed on the
/// deterministic `sim_job_s` of every named record present in both.
pub struct BenchDiff {
    pub name_a: String,
    pub name_b: String,
    pub threshold: f64,
    /// `(path, sim_a, sim_b)` for records present in both files, ranked by
    /// relative slowdown, worst first.
    pub rows: Vec<(String, f64, f64)>,
    /// Record paths present in only one of the two files (informational).
    pub only_a: Vec<String>,
    pub only_b: Vec<String>,
}

impl BenchDiff {
    /// Relative change of one row's simulated job time.
    fn rel(a: f64, b: f64) -> f64 {
        (b - a) / f64::max(a.abs(), 1e-12)
    }

    /// Did any shared record slow down past the threshold?
    pub fn regressed(&self) -> bool {
        self.rows
            .iter()
            .any(|&(_, a, b)| a > 0.0 && b > a * (1.0 + self.threshold))
    }

    /// Human-readable ranked report (same shape as `DiffReport::render`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bench diff: {} -> {}", self.name_a, self.name_b);
        let _ = writeln!(
            out,
            "sim_job_s per record (threshold {:.2}%):",
            self.threshold * 100.0
        );
        for (path, a, b) in &self.rows {
            let mark = if *a > 0.0 && *b > *a * (1.0 + self.threshold) {
                "  REGRESSED"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<44} {:>12.6} -> {:>12.6}  ({:+.2}%){mark}",
                path,
                a,
                b,
                Self::rel(*a, *b) * 100.0
            );
        }
        for p in &self.only_a {
            let _ = writeln!(out, "  {p:<44} only in {}", self.name_a);
        }
        for p in &self.only_b {
            let _ = writeln!(out, "  {p:<44} only in {}", self.name_b);
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.regressed() { "REGRESSED" } else { "ok" }
        );
        out
    }
}

/// Diff two benchmark baseline JSON files (`BENCH_*.json` / `bench.json`).
pub fn diff_bench_json(
    name_a: &str,
    json_a: &str,
    name_b: &str,
    json_b: &str,
    threshold: f64,
) -> BenchDiff {
    let a = parse_bench_sim_times(json_a);
    let b = parse_bench_sim_times(json_b);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut only_a = Vec::new();
    for (path, va) in &a {
        match b.iter().find(|(p, _)| p == path) {
            Some(&(_, vb)) => rows.push((path.clone(), *va, vb)),
            None => only_a.push(path.clone()),
        }
    }
    let only_b: Vec<String> = b
        .iter()
        .filter(|(p, _)| !a.iter().any(|(q, _)| q == p))
        .map(|(p, _)| p.clone())
        .collect();
    rows.sort_by(|x, y| {
        let rx = BenchDiff::rel(x.1, x.2);
        let ry = BenchDiff::rel(y.1, y.2);
        ry.partial_cmp(&rx)
            // lint:allow(float-order): rel is finite by construction; ties broken by path
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.0.cmp(&y.0))
    });
    BenchDiff {
        name_a: name_a.to_string(),
        name_b: name_b.to_string(),
        threshold,
        rows,
        only_a,
        only_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_cell_is_rejected() {
        assert!(run_cell(Setup::smoke(), "not_a_cell", None).is_none());
    }

    #[test]
    fn report_artifacts_are_structurally_sane() {
        let run = run_cell(Setup::smoke(), "fig7a_400gb_ramdisk", None).expect("known cell");
        assert!(run.ticks > 0, "sampler never fired");
        assert!(run.openmetrics.ends_with("# EOF\n"));
        assert!(run.openmetrics.contains("memres_core_busy_slots"));
        assert!(run
            .timeseries_csv
            .starts_with("series,instance,t_s,value\n"));
        assert!(run.dashboard_html.contains("fig7a_400gb_ramdisk"));
        assert!(run.dashboard_html.contains("<svg"));
        assert!(run.attrib_csv.starts_with("bucket,seconds\njob,"));
        assert!(run.attrib_csv.contains("\ncompute,"));
        assert!(run.job_s > 0.0);
    }

    #[test]
    fn self_diff_is_clean() {
        // A run diffed against itself: zero regressions, zero moved series.
        let run = run_cell(Setup::smoke(), "fig7a_400gb_ramdisk", None).expect("known cell");
        let d = diff_reports(
            "a",
            &run.timeseries_csv,
            &run.attrib_csv,
            "b",
            &run.timeseries_csv,
            &run.attrib_csv,
            0.05,
        );
        assert!(!d.regressed());
        assert!(d.series.iter().all(|s| s.first_divergence_s.is_none()));
        assert!(d.render().contains("verdict: ok"));
    }

    #[test]
    fn injected_ssd_degrade_is_flagged_with_storage_attribution() {
        // The acceptance fixture: slow every SSD 4x mid-run; the diff must
        // exit REGRESSED and the dominant attribution mover must land on
        // the storage layer (store or gc-stall bucket).
        let base = run_cell(Setup::smoke(), "fig8a_600gb_ssd", None).expect("known cell");
        let slow = run_cell(Setup::smoke(), "fig8a_600gb_ssd", Some(0.25)).expect("known cell");
        assert!(
            slow.job_s > base.job_s * 1.05,
            "degraded run must be measurably slower ({} vs {})",
            slow.job_s,
            base.job_s
        );
        let d = diff_reports(
            "base",
            &base.timeseries_csv,
            &base.attrib_csv,
            "slow-ssd",
            &slow.timeseries_csv,
            &slow.attrib_csv,
            0.05,
        );
        assert!(d.regressed(), "injected slowdown must be flagged");
        let dom = d.dominant_bucket().expect("some bucket must have grown");
        assert_eq!(dom.layer, "storage", "dominant mover: {}", dom.bucket);
        let text = d.render();
        assert!(text.contains("verdict: REGRESSED"));
        assert!(text.contains("layer storage"));
    }

    #[test]
    fn bench_json_parser_reads_nested_records() {
        let json = r#"{
  "issue": 9,
  "paper_cells": {
    "before": [
      {
        "name": "cell_x",
        "wall_s": 1.5,
        "sim_job_s": 4.25,
        "events": 10
      }
    ],
    "after": [
      {
        "name": "cell_x",
        "sim_job_s": 4.5
      }
    ]
  }
}"#;
        let rows = parse_bench_sim_times(json);
        assert_eq!(
            rows,
            vec![
                ("paper_cells/before/cell_x".to_string(), 4.25),
                ("paper_cells/after/cell_x".to_string(), 4.5),
            ]
        );
    }

    #[test]
    fn bench_json_diff_flags_slowdown() {
        let a = "{\n  \"cells\": [\n    {\n      \"name\": \"c\",\n      \"sim_job_s\": 10.0\n    }\n  ]\n}";
        let b = "{\n  \"cells\": [\n    {\n      \"name\": \"c\",\n      \"sim_job_s\": 12.0\n    }\n  ]\n}";
        let d = diff_bench_json("a.json", a, "b.json", b, 0.05);
        assert!(d.regressed());
        assert!(d.render().contains("REGRESSED"));
        // Within threshold: ok.
        let d2 = diff_bench_json("a.json", a, "b.json", b, 0.5);
        assert!(!d2.regressed());
        // Self-diff: ok and byte-stable.
        let d3 = diff_bench_json("a.json", a, "a.json", a, 0.05);
        assert!(!d3.regressed());
        assert_eq!(d3.rows, vec![("cells/c".to_string(), 10.0, 10.0)]);
    }
}
