//! Experiment functions — one per table/figure of the paper's evaluation.
//!
//! Every function runs real engine jobs on the simulated Hyperion cluster
//! and reports the series the corresponding figure plots. `Setup::paper()`
//! reproduces the full 100-node, TB-scale sweeps; `Setup::smoke()` shrinks
//! both cluster and data proportionally for tests and Criterion benches.

use crate::{improvement_pct, ratio, Table};
use memres_cluster::{hyperion, ClusterSpec};
use memres_core::prelude::*;
use memres_core::rdd::Action;
use memres_des::stats::Cdf;
use memres_des::time::SimDuration;
use memres_des::units::{GB, MB};
use memres_workloads::{Grep, GroupBy, LogisticRegression};

#[derive(Clone, Copy, Debug)]
pub struct Setup {
    /// Fraction of the paper's cluster and data sizes (1.0 = Hyperion).
    pub scale: f64,
    pub seed: u64,
}

impl Setup {
    pub fn paper() -> Setup {
        Setup {
            scale: 1.0,
            seed: 1,
        }
    }

    /// ~8-node cluster with proportionally shrunk data: same mechanisms,
    /// seconds-fast.
    pub fn smoke() -> Setup {
        Setup {
            scale: 0.08,
            seed: 1,
        }
    }

    pub fn cluster(&self) -> ClusterSpec {
        let workers = ((100.0 * self.scale).round() as u32).max(4);
        hyperion().scaled_workers(workers)
    }

    fn cluster_n(&self, workers: u32) -> ClusterSpec {
        hyperion().scaled_workers(workers)
    }

    /// Scale a paper-quoted data size.
    pub fn bytes(&self, gb: f64) -> f64 {
        gb * GB * self.scale
    }

    fn base(&self) -> EngineConfig {
        EngineConfig {
            seed: self.seed,
            ..EngineConfig::default()
        }
    }

    /// `hdfs_cfg` with 2-way input replication: affordable for the smaller
    /// compute-bound LR dataset, and what gives locality scheduling any
    /// placement choice.
    pub fn hdfs_cfg_replicated(&self) -> EngineConfig {
        EngineConfig {
            input_replication: 2,
            ..self.hdfs_cfg()
        }
    }

    /// The data-centric configuration: HDFS on RAMDisk, delay scheduling
    /// (Spark's default locality wait), local RAMDisk shuffle store.
    pub fn hdfs_cfg(&self) -> EngineConfig {
        EngineConfig {
            input: InputSource::HdfsRamDisk,
            shuffle: ShuffleStore::Local(StoreDevice::RamDisk),
            ..self.base()
        }
        .with_delay_scheduling(SimDuration::from_secs(3))
    }

    /// The compute-centric configuration: Lustre input, immediate dispatch.
    pub fn lustre_cfg(&self) -> EngineConfig {
        EngineConfig {
            input: InputSource::Lustre,
            shuffle: ShuffleStore::Local(StoreDevice::RamDisk),
            scheduler: SchedulerKind::Fifo,
            ..self.base()
        }
    }
}

fn run(spec: ClusterSpec, cfg: EngineConfig, rdd: &Rdd, action: Action) -> JobMetrics {
    let mut d = Driver::new(spec, cfg);
    d.run_for_metrics(rdd, action)
}

/// Run the 3-iteration LR benchmark; returns summed job metrics time and the
/// per-iteration times.
fn run_lr(spec: ClusterSpec, cfg: EngineConfig, lr: &LogisticRegression) -> (f64, Vec<f64>) {
    let (points, iter, action) = lr.build();
    let mut d = Driver::new(spec, cfg);
    let mut times = Vec::new();
    for _ in 0..lr.iterations {
        let m = d.run_for_metrics(&iter(&points), action.clone());
        times.push(m.job_time());
    }
    (times.iter().sum(), times)
}

// ---------------------------------------------------------------- Table I

pub fn table1() -> Table {
    let cfg = EngineConfig::default();
    let mut t = Table::new("table1", "Key Spark configuration parameters", &["value"]);
    for (k, v) in cfg.table1() {
        // Numeric column unusable for strings; encode in the label.
        t.row(format!("{k} = {v}"), vec![0.0]);
    }
    t.note("parameters mirror the paper's tuned Spark 0.7 deployment".to_string());
    t
}

// ------------------------------------------------------------- Fig 3 & 4

/// Render the execution plans of the three benchmarks (paper Fig 3/Fig 4).
pub fn plans(setup: Setup) -> String {
    let spec = setup.cluster();
    let mut out = String::new();
    let gb = GroupBy::new(setup.bytes(64.0));
    let d = Driver::new(spec.clone(), setup.hdfs_cfg());
    out.push_str("--- GroupBy (Fig 4a) ---\n");
    out.push_str(&d.explain(&gb.build(), gb.action()));
    let grep = Grep::new(setup.bytes(64.0));
    out.push_str("--- Grep (Fig 4b) ---\n");
    out.push_str(&d.explain(&grep.build(), grep.action()));
    let lr = LogisticRegression::new(setup.bytes(16.0));
    let (points, iter, action) = lr.build();
    out.push_str("--- Logistic Regression (Fig 4c), one iteration ---\n");
    out.push_str(&d.explain(&iter(&points), action));
    out
}

// ---------------------------------------------------------------- Fig 5a

/// Grep: job execution time retrieving input from HDFS vs Lustre.
pub fn fig5a(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig5a",
        "Grep job time (s): input from HDFS vs Lustre, 32 MB and 128 MB splits",
        &[
            "hdfs-32",
            "lustre-32",
            "ratio-32",
            "hdfs-128",
            "lustre-128",
            "ratio-128",
        ],
    );
    let spec = setup.cluster();
    let mut ratios32 = Vec::new();
    let mut lustre_gain = Vec::new();
    for gb_in in [50.0, 100.0, 200.0] {
        let bytes = setup.bytes(gb_in);
        let mut vals = Vec::new();
        let mut by_split = Vec::new();
        for split in [32.0 * MB, 128.0 * MB] {
            let grep = Grep::new(bytes).with_split(split);
            let h = run(spec.clone(), setup.hdfs_cfg(), &grep.build(), grep.action());
            let l = run(
                spec.clone(),
                setup.lustre_cfg(),
                &grep.build(),
                grep.action(),
            );
            vals.push(h.job_time());
            vals.push(l.job_time());
            vals.push(ratio(l.job_time(), h.job_time()));
            by_split.push(l.job_time());
        }
        ratios32.push(vals[2]);
        lustre_gain.push(improvement_pct(by_split[0], by_split[1]));
        t.row(format!("{gb_in:.0} GB"), vals);
    }
    let avg_ratio = ratios32.iter().sum::<f64>() / ratios32.len() as f64;
    let avg_gain = lustre_gain.iter().sum::<f64>() / lustre_gain.len() as f64;
    t.note(format!(
        "Lustre/HDFS at 32 MB split: {avg_ratio:.1}x (paper: up to 5.7x)"
    ));
    t.note(format!(
        "Lustre 32->128 MB split improvement: {avg_gain:.1}% (paper: 15.9%)"
    ));
    t
}

// ---------------------------------------------------------------- Fig 5b

/// Logistic Regression: input from HDFS vs Lustre (3 iterations).
pub fn fig5b(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig5b",
        "LR total time over 3 iterations (s): HDFS vs Lustre input",
        &["hdfs-32", "lustre-32", "lustre-gain-%"],
    );
    let spec = setup.cluster();
    let mut gains = Vec::new();
    // LR is compute-bound; the paper sizes it for ~a wave of tasks.
    for gb_in in [30.0, 48.0, 60.0] {
        let lr = LogisticRegression::new(setup.bytes(gb_in)).with_split(32.0 * MB);
        let (h, _) = run_lr(spec.clone(), setup.hdfs_cfg_replicated(), &lr);
        let (l, _) = run_lr(spec.clone(), setup.lustre_cfg(), &lr);
        let gain = improvement_pct(h, l);
        gains.push(gain);
        t.row(format!("{gb_in:.0} GB"), vec![h, l, gain]);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    t.note(format!(
        "Lustre outperforms HDFS(+delay scheduling) by {avg:.1}% (paper: 12.7%)"
    ));
    t
}

// ---------------------------------------------------------------- Fig 7

fn groupby_cfg(setup: Setup, shuffle: ShuffleStore) -> EngineConfig {
    EngineConfig {
        input: InputSource::Lustre, // input source held fixed; §IV-B varies the store
        shuffle,
        scheduler: SchedulerKind::Fifo,
        ..EngineConfig {
            seed: setup.seed,
            ..EngineConfig::default()
        }
    }
}

/// GroupBy job time with intermediate data on HDFS(RAMDisk) vs
/// Lustre-local vs Lustre-shared.
pub fn fig7a(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig7a",
        "GroupBy job time (s) by intermediate-data location",
        &[
            "hdfs-ram",
            "lustre-local",
            "lustre-shared",
            "LL/ram",
            "LS/LL",
        ],
    );
    let spec = setup.cluster();
    let mut ll_ram = Vec::new();
    let mut ls_ll = Vec::new();
    for gb_in in [100.0, 200.0, 400.0, 800.0, 1200.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let ram = run(
            spec.clone(),
            groupby_cfg(setup, ShuffleStore::Local(StoreDevice::RamDisk)),
            &gb.build(),
            gb.action(),
        );
        let ll = run(
            spec.clone(),
            groupby_cfg(setup, ShuffleStore::LustreLocal),
            &gb.build(),
            gb.action(),
        );
        let ls = run(
            spec.clone(),
            groupby_cfg(setup, ShuffleStore::LustreShared),
            &gb.build(),
            gb.action(),
        );
        ll_ram.push(ratio(ll.job_time(), ram.job_time()));
        ls_ll.push(ratio(ls.job_time(), ll.job_time()));
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                ram.job_time(),
                ll.job_time(),
                ls.job_time(),
                ratio(ll.job_time(), ram.job_time()),
                ratio(ls.job_time(), ll.job_time()),
            ],
        );
    }
    t.note(format!(
        "Lustre-local / HDFS-RAMDisk grows to {:.1}x (paper: up to 6.5x, growing with size)",
        ll_ram.last().unwrap()
    ));
    t.note(format!(
        "Lustre-shared / Lustre-local up to {:.1}x (paper: up to 3.8x)",
        ls_ll.iter().cloned().fold(0.0, f64::max)
    ));
    t
}

/// Dissection of the two Lustre cases (storing vs shuffling phases).
pub fn fig7b(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig7b",
        "GroupBy phase dissection (s): Lustre-local vs Lustre-shared",
        &[
            "LL-store",
            "LL-shuffle",
            "LS-store",
            "LS-shuffle",
            "shuffle-ratio",
        ],
    );
    let spec = setup.cluster();
    let mut worst = 0.0f64;
    for gb_in in [200.0, 400.0, 800.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let ll = run(
            spec.clone(),
            groupby_cfg(setup, ShuffleStore::LustreLocal),
            &gb.build(),
            gb.action(),
        );
        let ls = run(
            spec.clone(),
            groupby_cfg(setup, ShuffleStore::LustreShared),
            &gb.build(),
            gb.action(),
        );
        let r = ratio(
            ls.phase_time(Phase::Shuffling),
            ll.phase_time(Phase::Shuffling),
        );
        worst = worst.max(r);
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                ll.phase_time(Phase::Storing),
                ll.phase_time(Phase::Shuffling),
                ls.phase_time(Phase::Storing),
                ls.phase_time(Phase::Shuffling),
                r,
            ],
        );
    }
    t.note(format!(
        "storing phases comparable; Lustre-shared shuffling up to {worst:.1}x slower \
         (paper: up to one order of magnitude)"
    ));
    t
}

// ---------------------------------------------------------------- Fig 8

fn store_cfg(setup: Setup, dev: StoreDevice) -> EngineConfig {
    EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(dev),
        scheduler: SchedulerKind::Fifo,
        ..EngineConfig {
            seed: setup.seed,
            ..EngineConfig::default()
        }
    }
}

pub const FIG8_SIZES: [f64; 8] = [100.0, 300.0, 500.0, 600.0, 700.0, 900.0, 1200.0, 1500.0];

/// GroupBy job time: intermediate data on RAMDisk vs SSD.
pub fn fig8a(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig8a",
        "GroupBy job time (s): RAMDisk vs SSD intermediate storage",
        &["ramdisk", "ssd", "ssd/ram"],
    );
    let spec = setup.cluster();
    for gb_in in FIG8_SIZES {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let ram = run(
            spec.clone(),
            store_cfg(setup, StoreDevice::RamDisk),
            &gb.build(),
            gb.action(),
        );
        let ssd = run(
            spec.clone(),
            store_cfg(setup, StoreDevice::Ssd),
            &gb.build(),
            gb.action(),
        );
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                ram.job_time(),
                ssd.job_time(),
                ratio(ssd.job_time(), ram.job_time()),
            ],
        );
    }
    t.note(
        "paper: comparable up to ~600 GB (page-cache effects), SSD degrades beyond 700 GB"
            .to_string(),
    );
    t
}

/// Dissection of the SSD case.
pub fn fig8b(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig8b",
        "GroupBy on SSD: phase dissection (s)",
        &["compute", "storing", "shuffling"],
    );
    let spec = setup.cluster();
    for gb_in in FIG8_SIZES {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let m = run(
            spec.clone(),
            store_cfg(setup, StoreDevice::Ssd),
            &gb.build(),
            gb.action(),
        );
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                m.phase_time(Phase::Compute),
                m.phase_time(Phase::Storing),
                m.phase_time(Phase::Shuffling),
            ],
        );
    }
    t.note(
        "paper: shuffling network-bound <=600 GB; storing becomes the bottleneck past 900 GB"
            .to_string(),
    );
    t
}

/// Variation among ShuffleMapTasks writing the SSD.
pub fn fig8c(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig8c",
        "ShuffleMapTask (storing) time spread on SSD (s)",
        &["min", "mean", "max", "max/min"],
    );
    let spec = setup.cluster();
    for gb_in in [500.0, 900.0, 1200.0, 1500.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let m = run(
            spec.clone(),
            store_cfg(setup, StoreDevice::Ssd),
            &gb.build(),
            gb.action(),
        );
        let (min, mean, max) = m.duration_spread(Phase::Storing);
        t.row(
            format!("{gb_in:.0} GB"),
            vec![min, mean, max, ratio(max, min)],
        );
    }
    t.note("paper: gap widens to ~18x at 1.5 TB".to_string());
    t
}

/// Per-task execution time in launch order for the largest run.
pub fn fig8d(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig8d",
        "Storing-task time (s) by launch order, 1.5 TB on SSD",
        &["task-time"],
    );
    let spec = setup.cluster();
    let gb = GroupBy::new(setup.bytes(1500.0));
    let m = run(
        spec,
        store_cfg(setup, StoreDevice::Ssd),
        &gb.build(),
        gb.action(),
    );
    let mut tasks: Vec<(f64, f64)> = m
        .tasks_in(Phase::Storing)
        .map(|x| (x.launched_at, x.duration()))
        .collect();
    tasks.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Downsample to ~30 rows for printing.
    let n = tasks.len();
    let step = (n / 30).max(1);
    for (i, (_, d)) in tasks.iter().enumerate().step_by(step) {
        t.row(format!("task {i}"), vec![*d]);
    }
    let early: f64 = tasks.iter().take(n / 10).map(|x| x.1).sum::<f64>() / (n / 10).max(1) as f64;
    let late: f64 =
        tasks.iter().skip(n * 9 / 10).map(|x| x.1).sum::<f64>() / (n - n * 9 / 10).max(1) as f64;
    t.note(format!(
        "early tasks {early:.2}s vs late tasks {late:.2}s — buffer/clean-block regimes \
         then GC interference (paper Fig 8d shape)"
    ));
    t
}

// ---------------------------------------------------------------- Fig 9

/// Delay scheduling on/off for Grep (HDFS input).
pub fn fig9a(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig9a",
        "Grep on HDFS: job time (s), delay scheduling vs immediate",
        &["no-delay", "delay", "degradation-%"],
    );
    let spec = setup.cluster();
    let mut degs = Vec::new();
    for split_mb in [32.0, 64.0, 128.0] {
        let grep = Grep::new(setup.bytes(100.0)).with_split(split_mb * MB);
        let no_delay = EngineConfig {
            input: InputSource::HdfsRamDisk,
            scheduler: SchedulerKind::Fifo,
            ..EngineConfig {
                seed: setup.seed,
                ..EngineConfig::default()
            }
        };
        let f = run(spec.clone(), no_delay, &grep.build(), grep.action());
        let d = run(spec.clone(), setup.hdfs_cfg(), &grep.build(), grep.action());
        let deg = -improvement_pct(f.job_time(), d.job_time());
        degs.push(deg);
        t.row(
            format!("{split_mb:.0} MB split"),
            vec![f.job_time(), d.job_time(), deg],
        );
    }
    t.note(format!(
        "delay scheduling degrades Grep by {:.1}% at 32 MB (paper: 42.7%)",
        degs[0]
    ));
    t
}

/// Delay scheduling on/off for LR.
pub fn fig9b(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig9b",
        "LR on HDFS: total time (s), delay scheduling vs immediate",
        &["no-delay", "delay", "degradation-%"],
    );
    let spec = setup.cluster();
    let mut degs = Vec::new();
    for split_mb in [32.0, 64.0] {
        let lr = LogisticRegression::new(setup.bytes(48.0)).with_split(split_mb * MB);
        let no_delay = EngineConfig {
            input: InputSource::HdfsRamDisk,
            scheduler: SchedulerKind::Fifo,
            input_replication: 2,
            ..EngineConfig {
                seed: setup.seed,
                ..EngineConfig::default()
            }
        };
        let (f, _) = run_lr(spec.clone(), no_delay, &lr);
        let (d, _) = run_lr(spec.clone(), setup.hdfs_cfg_replicated(), &lr);
        let deg = -improvement_pct(f, d);
        degs.push(deg);
        t.row(format!("{split_mb:.0} MB split"), vec![f, d, deg]);
    }
    t.note(format!(
        "delay scheduling degrades LR by {:.1}% at 32 MB (paper: 9.9%)",
        degs[0]
    ));
    t
}

// ---------------------------------------------------------------- Fig 10

/// Task execution time with local vs remote input, three benchmarks.
pub fn fig10(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig10",
        "Compute-task time (s): local vs remote input data",
        &["min", "mean", "max"],
    );
    let spec = setup.cluster();
    // FIFO on HDFS yields a mix of local and remote tasks.
    let cfg = EngineConfig {
        input: InputSource::HdfsRamDisk,
        scheduler: SchedulerKind::Fifo,
        ..EngineConfig {
            seed: setup.seed,
            ..EngineConfig::default()
        }
    };
    let mut add = |name: &str, m: &JobMetrics| {
        for (label, local) in [("local", true), ("remote", false)] {
            let durs: Vec<f64> = m
                .tasks_in(Phase::Compute)
                .filter(|x| (x.locality == memres_core::TaskLocality::NodeLocal) == local)
                .map(|x| x.duration())
                .collect();
            if durs.is_empty() {
                t.row(format!("{name} {label}"), vec![0.0, 0.0, 0.0]);
                continue;
            }
            let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = durs.iter().cloned().fold(0.0, f64::max);
            let mean = durs.iter().sum::<f64>() / durs.len() as f64;
            t.row(format!("{name} {label}"), vec![min, mean, max]);
        }
    };
    // 32 MB splits => several waves per node, so FIFO actually produces a
    // population of remote (stolen) tasks to compare against. For this
    // figure GroupBy reads its input from HDFS (locality must exist).
    let gb_rdd = Rdd::source(memres_core::Dataset::synthetic(
        setup.bytes(100.0),
        32.0 * MB,
        100.0,
    ))
    .map(
        "genKV",
        SizeModel::new(1.0, 1.0, memres_workloads::rates::GROUPBY_GEN),
        |r| r,
    )
    .group_by_key(None, memres_workloads::rates::GROUP_AGG);
    let m = run(spec.clone(), cfg.clone(), &gb_rdd, Action::Count);
    add("GroupBy", &m);
    let grep = Grep::new(setup.bytes(100.0)).with_split(32.0 * MB);
    let m = run(spec.clone(), cfg.clone(), &grep.build(), grep.action());
    add("Grep", &m);
    let lr = LogisticRegression::new(setup.bytes(100.0)).with_split(32.0 * MB);
    let (points, iter, action) = lr.build();
    let mut d = Driver::new(spec, cfg);
    let m = d.run_for_metrics(&iter(&points), action);
    add("LR", &m);
    t.note(
        "paper: enforcing 100% locality provides little gain — input is pipelined          with compute. (Remote tasks here are FIFO's stolen tail tasks, which also          makes them land on lightly loaded nodes.)"
            .to_string(),
    );
    t
}

// ---------------------------------------------------------------- Fig 12

/// Task/intermediate distribution CDFs across cluster sizes.
fn fig12(setup: Setup, data: bool) -> Table {
    let id: &'static str = if data { "fig12b" } else { "fig12a" };
    let title = if data {
        "CDF of intermediate data per node (GB)"
    } else {
        "CDF of tasks per node"
    };
    let mut t = Table::new(id, title, &["n50", "n100", "n150"]);
    // Paper: 2500 tasks on 50 nodes, 5000 on 100, 7500 on 150; 256 MB split.
    let mut series: Vec<Vec<f64>> = Vec::new();
    let mut notes = Vec::new();
    for (nodes, tasks) in [(50u32, 2500u32), (100, 5000), (150, 7500)] {
        let workers = ((nodes as f64 * setup.scale).round() as u32).max(4);
        let per_node_tasks = tasks as f64 / nodes as f64;
        let total = per_node_tasks * workers as f64 * 256.0 * MB;
        let spec = setup.cluster_n(workers);
        // Fig 12 characterizes the COMPUTE-phase distribution; a small
        // reducer count keeps the (irrelevant) shuffle phase cheap.
        let gb = GroupBy::new(total).with_split(256.0 * MB).with_reducers(64);
        let cfg = EngineConfig {
            input: InputSource::Lustre,
            scheduler: SchedulerKind::Fifo,
            speed_sigma: 0.25,
            ..EngineConfig {
                seed: setup.seed,
                ..EngineConfig::default()
            }
        };
        let m = run(spec, cfg, &gb.build(), gb.action());
        // Drop the trailing overflow bucket: the CDF is over real nodes.
        let values: Vec<f64> = if data {
            m.intermediate_per_node(workers)
                .iter()
                .take(workers as usize)
                .map(|b| b / GB)
                .collect()
        } else {
            m.tasks_per_node(Phase::Compute, workers)
                .iter()
                .take(workers as usize)
                .map(|&c| c as f64)
                .collect()
        };
        let cdf = Cdf::from_values(&values);
        let head = cdf.value_at(0.05).max(1e-9);
        let tail = cdf.value_at(0.95);
        notes.push(format!("{nodes} nodes: p95/p5 = {:.2}", tail / head));
        series.push((0..=10).map(|q| cdf.value_at(q as f64 / 10.0)).collect());
    }
    for q in 0..=10 {
        t.row(
            format!("p{:3}", q * 10),
            series.iter().map(|s| s[q]).collect(),
        );
    }
    for n in notes {
        t.note(n);
    }
    t.note("paper: ~2x workload difference between head and tail nodes".to_string());
    t
}

pub fn fig12a(setup: Setup) -> Table {
    fig12(setup, false)
}

pub fn fig12b(setup: Setup) -> Table {
    fig12(setup, true)
}

// ---------------------------------------------------------------- Fig 13

/// ELB vs plain Spark under a storage bottleneck (SSD store).
pub fn fig13a(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig13a",
        "GroupBy on SSD: Spark vs ELB (s)",
        &["spark", "elb", "improvement-%", "store-spark", "store-elb"],
    );
    let spec = setup.cluster();
    let mut improvements = Vec::new();
    for gb_in in [400.0, 700.0, 1000.0, 1200.0, 1500.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let base = store_cfg(setup, StoreDevice::Ssd);
        let plain = run(spec.clone(), base.clone(), &gb.build(), gb.action());
        let elb = run(spec.clone(), base.with_elb(), &gb.build(), gb.action());
        let imp = improvement_pct(plain.job_time(), elb.job_time());
        if gb_in >= 1000.0 {
            improvements.push(imp);
        }
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                plain.job_time(),
                elb.job_time(),
                imp,
                plain.phase_time(Phase::Storing),
                elb.phase_time(Phase::Storing),
            ],
        );
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    t.note(format!(
        "ELB improves job time by {avg:.1}% on 1-1.5 TB (paper: 26% average)"
    ));
    t
}

/// ELB vs plain Spark under a network bottleneck (128 KB FetchRequests).
pub fn fig13b(setup: Setup) -> Table {
    let mut t = Table::new(
        "fig13b",
        "GroupBy, 128 KB FetchRequests: Spark vs ELB (s)",
        &[
            "spark",
            "elb",
            "improvement-%",
            "shuffle-spark",
            "shuffle-elb",
        ],
    );
    let spec = setup.cluster();
    let mut job_imps = Vec::new();
    let mut shuffle_imps = Vec::new();
    for gb_in in [400.0, 800.0, 1200.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let mut base = store_cfg(setup, StoreDevice::RamDisk);
        base.spark.reducer_max_bytes_in_flight = 128.0 * 1024.0;
        let plain = run(spec.clone(), base.clone(), &gb.build(), gb.action());
        let elb = run(spec.clone(), base.with_elb(), &gb.build(), gb.action());
        job_imps.push(improvement_pct(plain.job_time(), elb.job_time()));
        shuffle_imps.push(improvement_pct(
            plain.phase_time(Phase::Shuffling),
            elb.phase_time(Phase::Shuffling),
        ));
        t.row(
            format!("{gb_in:.0} GB"),
            vec![
                plain.job_time(),
                elb.job_time(),
                *job_imps.last().unwrap(),
                plain.phase_time(Phase::Shuffling),
                elb.phase_time(Phase::Shuffling),
            ],
        );
    }
    t.note(format!(
        "job improvement {:.1}% avg (paper: 14.8%); shuffle {:.1}% avg (paper: 29.1%)",
        job_imps.iter().sum::<f64>() / job_imps.len() as f64,
        shuffle_imps.iter().sum::<f64>() / shuffle_imps.len() as f64
    ));
    t
}

// ---------------------------------------------------------------- Fig 14

/// CAD vs plain Spark on the SSD store.
pub fn fig14(setup: Setup) -> (Table, Table) {
    let mut a = Table::new(
        "fig14a",
        "GroupBy on SSD: Spark vs CAD job time (s)",
        &["spark", "cad", "improvement-%"],
    );
    let mut b = Table::new(
        "fig14b",
        "GroupBy on SSD: phase dissection under CAD (s)",
        &[
            "store-spark",
            "store-cad",
            "store-improvement-%",
            "shuffle-spark",
            "shuffle-cad",
        ],
    );
    let spec = setup.cluster();
    let mut job_imps = Vec::new();
    let mut store_imps = Vec::new();
    for gb_in in [400.0, 700.0, 1000.0, 1200.0, 1500.0] {
        let gb = GroupBy::new(setup.bytes(gb_in));
        let base = store_cfg(setup, StoreDevice::Ssd);
        let plain = run(spec.clone(), base.clone(), &gb.build(), gb.action());
        let cad = run(spec.clone(), base.with_cad(), &gb.build(), gb.action());
        let jimp = improvement_pct(plain.job_time(), cad.job_time());
        let simp = improvement_pct(
            plain.phase_time(Phase::Storing),
            cad.phase_time(Phase::Storing),
        );
        if gb_in >= 700.0 {
            job_imps.push(jimp);
            store_imps.push(simp);
        }
        a.row(
            format!("{gb_in:.0} GB"),
            vec![plain.job_time(), cad.job_time(), jimp],
        );
        b.row(
            format!("{gb_in:.0} GB"),
            vec![
                plain.phase_time(Phase::Storing),
                cad.phase_time(Phase::Storing),
                simp,
                plain.phase_time(Phase::Shuffling),
                cad.phase_time(Phase::Shuffling),
            ],
        );
    }
    a.note(format!(
        "CAD improves job time by {:.1}% avg on >=700 GB (paper: 19.8%)",
        job_imps.iter().sum::<f64>() / job_imps.len().max(1) as f64
    ));
    b.note(format!(
        "CAD accelerates the storing phase by {:.1}% avg (paper: up to 41.2%)",
        store_imps.iter().sum::<f64>() / store_imps.len().max(1) as f64
    ));
    (a, b)
}

// ------------------------------------------------------------- Ablations

/// ELB threshold sweep: the paper fixes 25%; how sensitive is the gain?
pub fn ablation_elb_threshold(setup: Setup) -> Table {
    let mut t = Table::new(
        "ablation-elb",
        "ELB threshold sweep (GroupBy 1 TB on SSD): job time (s)",
        &["job", "improvement-%"],
    );
    let spec = setup.cluster();
    let gb = GroupBy::new(setup.bytes(1000.0));
    let base = store_cfg(setup, StoreDevice::Ssd);
    let plain = run(spec.clone(), base.clone(), &gb.build(), gb.action()).job_time();
    t.row("no ELB".to_string(), vec![plain, 0.0]);
    for threshold in [1.1, 1.25, 1.5, 2.0] {
        let cfg = EngineConfig {
            elb: Some(memres_core::ElbConfig { threshold }),
            ..base.clone()
        };
        let m = run(spec.clone(), cfg, &gb.build(), gb.action());
        t.row(
            format!("threshold {threshold:.2}"),
            vec![m.job_time(), improvement_pct(plain, m.job_time())],
        );
    }
    t.note("paper picks 25% (1.25); the gain should be robust nearby".to_string());
    t
}

/// CAD step sweep: the paper empirically chose +50 ms per detected jump.
pub fn ablation_cad_step(setup: Setup) -> Table {
    let mut t = Table::new(
        "ablation-cad",
        "CAD dispatch-interval step sweep (GroupBy 1.2 TB on SSD): storing (s)",
        &["storing", "improvement-%"],
    );
    let spec = setup.cluster();
    let gb = GroupBy::new(setup.bytes(1200.0));
    let base = store_cfg(setup, StoreDevice::Ssd);
    let plain =
        run(spec.clone(), base.clone(), &gb.build(), gb.action()).phase_time(Phase::Storing);
    t.row("no CAD".to_string(), vec![plain, 0.0]);
    for ms in [10u64, 25, 50, 100, 200] {
        let cfg = EngineConfig {
            cad: Some(memres_core::CadConfig {
                step: SimDuration::from_millis(ms),
                ..Default::default()
            }),
            ..base.clone()
        };
        let m = run(spec.clone(), cfg, &gb.build(), gb.action());
        let s = m.phase_time(Phase::Storing);
        t.row(format!("step {ms} ms"), vec![s, improvement_pct(plain, s)]);
    }
    t.note("paper: +50 ms per 2x jump, empirically tuned".to_string());
    t
}

/// Delay-scheduling wait sweep on the Grep workload (Fig 9a's knob).
pub fn ablation_delay_wait(setup: Setup) -> Table {
    let mut t = Table::new(
        "ablation-delay",
        "Locality-wait sweep (Grep 100 GB, 32 MB splits): job time (s)",
        &["job", "degradation-%"],
    );
    let spec = setup.cluster();
    let grep = Grep::new(setup.bytes(100.0)).with_split(32.0 * MB);
    let fifo = EngineConfig {
        input: InputSource::HdfsRamDisk,
        scheduler: SchedulerKind::Fifo,
        ..EngineConfig {
            seed: setup.seed,
            ..EngineConfig::default()
        }
    };
    let base = run(spec.clone(), fifo.clone(), &grep.build(), grep.action()).job_time();
    t.row("fifo (no wait)".to_string(), vec![base, 0.0]);
    for secs in [1u64, 3, 5, 10] {
        let cfg = fifo
            .clone()
            .with_delay_scheduling(SimDuration::from_secs(secs));
        let m = run(spec.clone(), cfg, &grep.build(), grep.action());
        t.row(
            format!("wait {secs} s"),
            vec![m.job_time(), -improvement_pct(base, m.job_time())],
        );
    }
    t.note("short jobs never outlast the wait: degradation saturates".to_string());
    t
}

// ------------------------------------------------------- Fault tolerance

/// Fault injection & lineage recovery (DESIGN.md §4.9): GroupBy over real
/// records under a clean run, a task failure, a node crash, a fetch failure
/// and a seeded mixed plan. Every faulted run must reproduce the clean
/// output exactly (`output_equal` = 1) while reporting non-zero recovery
/// work in the counter columns.
pub fn faults(setup: Setup) -> Table {
    let mut t = Table::new(
        "faults",
        "GroupBy (real records) under injected faults: output must match the clean run",
        &[
            "wall_s",
            "output_count",
            "output_equal",
            "tasks_retried",
            "recomputed_partitions",
            "failed_fetches",
            "node_crashes",
            "wasted_s",
            "aborted_jobs",
        ],
    );
    let spec = setup.cluster();
    let bytes = setup.bytes(2.0);
    // 32 map partitions at any scale so faults always have work to hit.
    let gb = GroupBy::new(bytes)
        .with_split(bytes / 32.0)
        .with_reducers(16);
    let rdd = gb.build_real(120_000, 1_000, setup.seed);
    let cfg = setup.hdfs_cfg_replicated();
    let run_out = |cfg: EngineConfig| {
        let mut d = Driver::new(spec.clone(), cfg);
        d.run(&rdd, gb.action())
    };

    let (clean, cm) = run_out(cfg.clone());
    let horizon = cm.job_time();
    let shuffle_mid = {
        let start = cm
            .tasks_in(Phase::Shuffling)
            .map(|x| x.launched_at)
            .fold(f64::INFINITY, f64::min);
        let end = cm
            .tasks_in(Phase::Shuffling)
            .map(|x| x.finished_at)
            .fold(0.0, f64::max);
        (start + end) * 0.5 - cm.started_at
    };
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::new()),
        (
            "task-failure",
            FaultPlan::new().after(SimDuration::ZERO, FaultKind::TaskFail { nth_launch: 5 }),
        ),
        (
            "node-crash+restart",
            FaultPlan::new().after(
                SimDuration::from_secs_f64(horizon * 0.4),
                FaultKind::NodeCrash {
                    node: 1,
                    restart: Some(SimDuration::from_secs_f64(horizon * 0.2)),
                },
            ),
        ),
        (
            "fetch-failure",
            FaultPlan::new().after(
                SimDuration::from_secs_f64(shuffle_mid),
                FaultKind::FetchFail { src: 0 },
            ),
        ),
        (
            "seeded-mix",
            FaultPlan::seeded(
                setup.seed,
                spec.workers,
                3,
                SimDuration::from_secs_f64(horizon),
            ),
        ),
    ];
    for (name, plan) in plans {
        let (out, m) = if plan.is_empty() {
            (clean.clone(), cm.clone())
        } else {
            run_out(cfg.clone().with_faults(plan))
        };
        let r = &m.recovery;
        t.row(
            name.to_string(),
            vec![
                m.job_time(),
                out.count as f64,
                (out.count == clean.count && !out.aborted) as u64 as f64,
                r.tasks_retried as f64,
                r.recomputed_partitions as f64,
                r.failed_fetches as f64,
                r.node_crashes as f64,
                r.wasted_secs,
                r.aborted_jobs as f64,
            ],
        );
    }
    t.note(format!(
        "clean output: {} groups; every faulted run must report output_equal = 1",
        clean.count
    ));
    t.note(
        "recovery is exact by lineage: lost rows are re-hosted and recomputed, \
         so Count matches while wall time absorbs the wasted work"
            .to_string(),
    );
    t
}

/// Negative control for the recovery machinery: doom every task launch so
/// one task exhausts `max_task_attempts` and the job *must* abort. Exercised
/// by the `faults-abort` repro target, whose non-zero exit code CI asserts —
/// an abort that slipped through as exit 0 would let a silently-failing run
/// pass the reproduction gate.
pub fn faults_abort(setup: Setup) -> Table {
    let mut t = Table::new(
        "faults_abort",
        "GroupBy with every launch doomed: the job must abort, not hang or lie",
        &["wall_s", "output_count", "tasks_retried", "aborted_jobs"],
    );
    let spec = setup.cluster();
    let bytes = setup.bytes(0.5);
    let gb = GroupBy::new(bytes).with_split(bytes / 8.0).with_reducers(4);
    let rdd = gb.build_real(20_000, 500, setup.seed);
    // Dooming launches 1..=10_000 covers every retry of every task at this
    // scale, so the first task to burn through `max_task_attempts` aborts
    // the job deterministically.
    let mut plan = FaultPlan::new();
    for nth in 1..=10_000u64 {
        plan = plan.after(SimDuration::ZERO, FaultKind::TaskFail { nth_launch: nth });
    }
    let mut d = Driver::new(spec, setup.hdfs_cfg_replicated().with_faults(plan));
    let (out, m) = d.run(&rdd, gb.action());
    let r = &m.recovery;
    t.row(
        "all-launches-doomed".to_string(),
        vec![
            m.job_time(),
            out.count as f64,
            r.tasks_retried as f64,
            r.aborted_jobs as f64,
        ],
    );
    t.note("aborted_jobs must be 1 and repro must exit non-zero".to_string());
    t
}

/// Baseline comparison (§VIII related work): LATE-style speculative
/// execution duplicates straggling *tasks*, but "none of them considers the
/// imbalanced intermediate data distribution" — so it cannot fix the
/// storing/shuffling stragglers ELB targets.
pub fn baseline_speculation(setup: Setup) -> Table {
    let mut t = Table::new(
        "baseline-late",
        "Imbalanced GroupBy (1 TB, SSD store): plain vs LATE speculation vs ELB",
        &["job", "compute", "storing", "shuffling"],
    );
    let spec = setup.cluster();
    let gb = GroupBy::new(setup.bytes(1000.0));
    let base = EngineConfig {
        speed_sigma: 0.35,
        ..store_cfg(setup, StoreDevice::Ssd)
    };
    for (name, cfg) in [
        ("plain spark", base.clone()),
        ("LATE speculation", base.clone().with_speculation()),
        ("ELB", base.clone().with_elb()),
        (
            "ELB + speculation",
            base.clone().with_elb().with_speculation(),
        ),
    ] {
        let m = run(spec.clone(), cfg, &gb.build(), gb.action());
        t.row(
            name.to_string(),
            vec![
                m.job_time(),
                m.phase_time(Phase::Compute),
                m.phase_time(Phase::Storing),
                m.phase_time(Phase::Shuffling),
            ],
        );
    }
    t.note(
        "speculation trims compute-phase stragglers but leaves the intermediate \
         data where the fast nodes deposited it; ELB attacks the storing/shuffle \
         imbalance itself (the paper's §VIII argument)"
            .to_string(),
    );
    t
}
