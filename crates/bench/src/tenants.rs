//! `repro tenants` — the paper's questions re-asked under contention
//! (DESIGN.md §4.14).
//!
//! The single-job evaluation characterizes each optimization in isolation;
//! a long-lived resident engine serves a *stream* of jobs from several
//! tenants at once. These cells run two-tenant streams under a seeded
//! arrival process and report per-tenant SLOs (queueing delay, p50/p99
//! latency, slowdown vs the isolated run), then revisit two paper results:
//!
//! - **ELB under interleaving** — does shuffle-side load balancing still
//!   pay off for the shuffle-heavy tenant when a scan tenant competes for
//!   the same slots?
//! - **CAD and starvation** — CAD throttles the storing phase of the
//!   shuffle-heavy tenant; does the backpressure starve the other tenant
//!   (visible as inflated p99 / queueing delay) or free slots for it?
//!
//! Arrival rates are calibrated from the isolated run so the streams
//! genuinely overlap at every `--scale`: tenant A submits every quarter of an
//! isolated job time, tenant B with exponential gaps at 30% of it.

use crate::experiments::Setup;
use crate::{improvement_pct, ratio, Table};
use memres_cluster::ClusterSpec;
use memres_core::prelude::*;
use memres_core::{
    ArrivalProcess, FinishedJob, InterJobPolicy, JobFactory, StreamSpec, TenantSlo, TenantSpec,
};
use memres_workloads::{Grep, GroupBy};

/// Jobs per tenant in each stream cell.
const JOBS: u32 = 2;

/// Tenant A: shuffle-heavy GroupBy at the sizes where Fig 13/14 show ELB
/// and CAD effects; `k` varies the input so jobs in the stream differ.
fn groupby_tenant(setup: Setup) -> JobFactory {
    std::sync::Arc::new(move |k| {
        let gb = GroupBy::new(setup.bytes(700.0 + 100.0 * k as f64));
        (gb.build(), gb.action())
    })
}

/// Tenant B: scan-dominated Grep — narrow, latency-sensitive, and the
/// natural victim if the inter-job scheduler lets tenant A hog slots.
fn grep_tenant(setup: Setup) -> JobFactory {
    std::sync::Arc::new(move |k| {
        let g = Grep::new(setup.bytes(64.0 + 16.0 * k as f64));
        (g.build(), g.action())
    })
}

/// Shared store/input shape: Lustre input, SSD shuffle store — the
/// configuration where ELB and CAD matter (Fig 13/14).
fn base_cfg(setup: Setup) -> EngineConfig {
    EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(StoreDevice::Ssd),
        scheduler: SchedulerKind::Fifo,
        ..EngineConfig {
            seed: setup.seed,
            ..EngineConfig::default()
        }
    }
}

/// Mean isolated job time per tenant under `cfg` — the slowdown
/// denominator, and what the arrival rates are calibrated from.
fn isolated_means(spec: &ClusterSpec, cfg: &EngineConfig, tenants: &[JobFactory]) -> Vec<f64> {
    tenants
        .iter()
        .map(|make| {
            let mut sum = 0.0;
            for k in 0..JOBS {
                let (rdd, action) = make(k);
                let mut d = Driver::new(spec.clone(), cfg.clone());
                sum += d.run_for_metrics(&rdd, action).job_time();
            }
            sum / JOBS as f64
        })
        .collect()
}

/// Run one two-tenant stream; arrivals outpace the isolated job time so
/// residency overlaps regardless of `--scale`.
fn run_stream(
    spec: &ClusterSpec,
    cfg: &EngineConfig,
    tenants: &[JobFactory],
    iso: &[f64],
    policy: InterJobPolicy,
    seed: u64,
    cap: Option<usize>,
) -> Vec<FinishedJob> {
    // Both tenants are calibrated against the LONG tenant's isolated time:
    // grep jobs must land inside groupby's execution window, or the mix
    // never contends and every cell degenerates to back-to-back jobs.
    let ts = vec![
        TenantSpec::new(
            "groupby",
            JOBS,
            ArrivalProcess::Periodic {
                period_secs: (iso[0] * 0.25).max(1e-3),
            },
            tenants[0].clone(),
        ),
        TenantSpec::new(
            "grep",
            JOBS,
            ArrivalProcess::OpenExp {
                mean_secs: (iso[0] * 0.3).max(1e-3),
            },
            tenants[1].clone(),
        ),
    ];
    let mut stream = StreamSpec::new(ts, policy, seed);
    if let Some(m) = cap {
        stream = stream.with_max_concurrent(m);
    }
    let mut d = Driver::new(spec.clone(), cfg.clone());
    d.run_stream(stream)
}

/// Fraction of jobs whose execution window overlapped another resident job.
fn overlap_fraction(jobs: &[FinishedJob]) -> f64 {
    let overlapping = jobs
        .iter()
        .filter(|a| {
            jobs.iter()
                .any(|b| b.id != a.id && b.admitted < a.finished && a.admitted < b.finished)
        })
        .count();
    ratio(overlapping as f64, jobs.len() as f64)
}

fn slo_rows(t: &mut Table, prefix: &str, jobs: &[FinishedJob], iso: &[f64]) {
    let slo = TenantSlo::compute(jobs, iso.len());
    for (name, s) in ["groupby", "grep"].iter().zip(&slo) {
        t.row(
            format!("{prefix}/{name}"),
            vec![
                s.jobs as f64,
                s.mean_queue_delay,
                s.p50_latency,
                s.p99_latency,
                ratio(s.mean_latency, iso[s.tenant as usize]),
                s.aborted as f64,
            ],
        );
    }
}

const SLO_COLUMNS: [&str; 6] = [
    "jobs",
    "mean-qdelay-s",
    "p50-lat-s",
    "p99-lat-s",
    "slowdown",
    "aborted_jobs",
];

/// Main `repro tenants` table: per-tenant SLOs under each inter-job policy.
pub fn policies(setup: Setup) -> Table {
    let mut t = Table::new(
        "tenants",
        "Two-tenant stream: per-tenant SLOs by inter-job policy",
        &SLO_COLUMNS,
    );
    let spec = setup.cluster();
    let cfg = base_cfg(setup);
    let tenants = [groupby_tenant(setup), grep_tenant(setup)];
    let iso = isolated_means(&spec, &cfg, &tenants);
    let mut overlaps = Vec::new();
    for (label, policy) in [
        ("fifo", InterJobPolicy::Fifo),
        ("fair", InterJobPolicy::FairShare),
        (
            "capacity",
            InterJobPolicy::Capacity {
                guarantees: vec![1, 1],
            },
        ),
    ] {
        // Cap residency at the tenant count: both tenants can hold a job,
        // and a tenant's next arrival queues behind its running one — the
        // queueing-delay column measures real admission waits.
        let jobs = run_stream(&spec, &cfg, &tenants, &iso, policy, setup.seed, Some(2));
        overlaps.push(overlap_fraction(&jobs));
        slo_rows(&mut t, label, &jobs, &iso);
    }
    t.note(format!(
        "{:.0}% of jobs overlapped another resident job (arrivals calibrated \
         to 0.25x/0.3x the long tenant's isolated job time; residency capped at 2)",
        overlaps.iter().sum::<f64>() / overlaps.len() as f64 * 100.0
    ));
    t.note(format!(
        "isolated means: groupby {:.1}s, grep {:.1}s (slowdown denominator)",
        iso[0], iso[1]
    ));
    t
}

/// Does ELB still help when tenants interleave? Stream the same two-tenant
/// mix with ELB off/on and compare the shuffle-heavy tenant's latency; the
/// isolated Fig 13 improvement is the reference point.
pub fn elb_interleaved(setup: Setup) -> Table {
    let mut t = Table::new(
        "tenants_elb",
        "ELB under tenant interleaving: per-tenant SLOs, ELB off vs on",
        &SLO_COLUMNS,
    );
    let spec = setup.cluster();
    let tenants = [groupby_tenant(setup), grep_tenant(setup)];
    let base = base_cfg(setup);
    // Calibrate arrivals once, from the non-ELB isolated runs, so both
    // streams see identical arrival instants and differ only in ELB.
    let iso = isolated_means(&spec, &base, &tenants);
    let mut mean_gb = Vec::new();
    for (label, cfg) in [("spark", base.clone()), ("elb", base.with_elb())] {
        let jobs = run_stream(
            &spec,
            &cfg,
            &tenants,
            &iso,
            InterJobPolicy::FairShare,
            setup.seed,
            None,
        );
        let slo = TenantSlo::compute(&jobs, 2);
        mean_gb.push(slo[0].mean_latency);
        slo_rows(&mut t, label, &jobs, &iso);
    }
    t.note(format!(
        "ELB changes the shuffle-heavy tenant's mean latency by {:.1}% under \
         interleaving (Fig 13a isolated reference: ~26%)",
        improvement_pct(mean_gb[0], mean_gb[1])
    ));
    t
}

/// Does CAD on one tenant starve the other? CAD throttles tenant A's
/// storing phase; the grep tenant's p99 and queueing delay say whether the
/// freed device bandwidth helps it or the backpressure holds its slots.
pub fn cad_starvation(setup: Setup) -> Table {
    let mut t = Table::new(
        "tenants_cad",
        "CAD under tenant interleaving: per-tenant SLOs, CAD off vs on",
        &SLO_COLUMNS,
    );
    let spec = setup.cluster();
    let tenants = [groupby_tenant(setup), grep_tenant(setup)];
    let base = base_cfg(setup);
    let iso = isolated_means(&spec, &base, &tenants);
    let mut grep_p99 = Vec::new();
    let mut grep_qd = Vec::new();
    for (label, cfg) in [("spark", base.clone()), ("cad", base.with_cad())] {
        let jobs = run_stream(
            &spec,
            &cfg,
            &tenants,
            &iso,
            InterJobPolicy::FairShare,
            setup.seed,
            None,
        );
        let slo = TenantSlo::compute(&jobs, 2);
        grep_p99.push(slo[1].p99_latency);
        grep_qd.push(slo[1].mean_queue_delay);
        slo_rows(&mut t, label, &jobs, &iso);
    }
    let p99_delta = improvement_pct(grep_p99[0], grep_p99[1]);
    t.note(if p99_delta >= -5.0 {
        format!(
            "no starvation: CAD moves the grep tenant's p99 by {p99_delta:.1}% \
             (queueing delay {:.2}s -> {:.2}s)",
            grep_qd[0], grep_qd[1]
        )
    } else {
        format!(
            "starvation signal: CAD inflates the grep tenant's p99 by {:.1}% \
             (queueing delay {:.2}s -> {:.2}s)",
            -p99_delta, grep_qd[0], grep_qd[1]
        )
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_cell_reports_all_slos_and_overlaps() {
        let t = policies(Setup::smoke());
        // 3 policies x 2 tenants.
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.column("jobs"), vec![JOBS as f64; 6]);
        assert_eq!(t.column("aborted_jobs"), vec![0.0; 6]);
        for v in t.column("slowdown") {
            assert!(v > 0.95, "contended stream should not beat isolated: {v}");
        }
        for (p50, p99) in t.column("p50-lat-s").iter().zip(t.column("p99-lat-s")) {
            assert!(*p50 <= p99 + 1e-12);
        }
        // The calibrated arrival process must actually interleave.
        let overlap_note = &t.notes[0];
        assert!(
            !overlap_note.starts_with("0%"),
            "streams did not overlap: {overlap_note}"
        );
    }

    #[test]
    fn elb_and_cad_cells_keep_both_tenants_running() {
        for t in [
            elb_interleaved(Setup::smoke()),
            cad_starvation(Setup::smoke()),
        ] {
            assert_eq!(t.rows.len(), 4, "{}", t.id);
            assert_eq!(t.column("aborted_jobs"), vec![0.0; 4], "{}", t.id);
            assert!(t.column("p99-lat-s").iter().all(|&v| v > 0.0), "{}", t.id);
        }
    }
}
