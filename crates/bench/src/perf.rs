//! Engine wall-clock benchmark: `repro bench [--json DIR]`.
//!
//! Times the *simulator itself* (host wall-clock, not simulated seconds) on
//! the mid-size Fig 7a / Fig 8a GroupBy cells, the repository's hottest
//! end-to-end paths: tens of thousands of shuffle flows through the max–min
//! fair network plus the real-partition executor. The JSON output is the
//! baseline/after evidence for performance PRs (see EXPERIMENTS.md
//! "Performance").

use crate::experiments::Setup;
use crate::json::{escape, num};
use crate::Table;
use memres_core::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed run: host wall-clock seconds plus the simulated job time (the
/// latter is a determinism check — optimizations must not change it).
#[derive(Clone, Debug)]
pub struct PerfRecord {
    pub name: &'static str,
    pub wall_s: f64,
    pub sim_s: f64,
}

fn time_run(
    spec: memres_cluster::ClusterSpec,
    cfg: EngineConfig,
    gb: &memres_workloads::GroupBy,
) -> (f64, f64) {
    let t0 = Instant::now();
    let mut d = Driver::new(spec, cfg);
    let m = d.run_for_metrics(&gb.build(), gb.action());
    (t0.elapsed().as_secs_f64(), m.job_time())
}

/// The mid-size Fig 7a / Fig 8a cells (400 GB and 600 GB paper-scale,
/// shrunk by `setup.scale` like every other experiment).
pub fn suite(setup: Setup) -> Vec<PerfRecord> {
    use memres_workloads::GroupBy;
    let spec = setup.cluster();
    let mut out = Vec::new();

    let gb7 = GroupBy::new(setup.bytes(400.0));
    for (name, shuffle) in [
        (
            "fig7a_400gb_ramdisk",
            ShuffleStore::Local(StoreDevice::RamDisk),
        ),
        ("fig7a_400gb_lustre_local", ShuffleStore::LustreLocal),
        ("fig7a_400gb_lustre_shared", ShuffleStore::LustreShared),
    ] {
        let cfg = EngineConfig {
            input: InputSource::Lustre,
            shuffle,
            scheduler: SchedulerKind::Fifo,
            seed: setup.seed,
            ..EngineConfig::default()
        };
        let (wall, sim) = time_run(spec.clone(), cfg, &gb7);
        out.push(PerfRecord {
            name,
            wall_s: wall,
            sim_s: sim,
        });
    }

    let gb8 = GroupBy::new(setup.bytes(600.0));
    for (name, dev) in [
        ("fig8a_600gb_ramdisk", StoreDevice::RamDisk),
        ("fig8a_600gb_ssd", StoreDevice::Ssd),
    ] {
        let cfg = EngineConfig {
            input: InputSource::Lustre,
            shuffle: ShuffleStore::Local(dev),
            scheduler: SchedulerKind::Fifo,
            seed: setup.seed,
            ..EngineConfig::default()
        };
        let (wall, sim) = time_run(spec.clone(), cfg, &gb8);
        out.push(PerfRecord {
            name,
            wall_s: wall,
            sim_s: sim,
        });
    }
    out
}

pub fn table(records: &[PerfRecord]) -> Table {
    let mut t = Table::new(
        "bench",
        "engine wall-clock (host seconds) on mid-size Fig 7a/8a cells",
        &["wall_s", "sim_job_s"],
    );
    for r in records {
        t.row(r.name, vec![r.wall_s, r.sim_s]);
    }
    let total: f64 = records.iter().map(|r| r.wall_s).sum();
    t.note(format!("total wall-clock {total:.3}s"));
    t
}

/// Machine-readable record: `{"target", "scale", "seed", "runs": [...],
/// "total_wall_s"}`.
pub fn to_json(setup: Setup, records: &[PerfRecord]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"target\": \"bench\",");
    let _ = writeln!(out, "  \"scale\": {},", num(setup.scale));
    let _ = writeln!(out, "  \"seed\": {},", setup.seed);
    out.push_str("  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"wall_s\": {}, \"sim_job_s\": {}}}",
            escape(r.name),
            num(r.wall_s),
            num(r.sim_s)
        );
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let total: f64 = records.iter().map(|r| r.wall_s).sum();
    let _ = write!(out, "  \"total_wall_s\": {}\n}}", num(total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let recs = vec![
            PerfRecord {
                name: "a",
                wall_s: 0.25,
                sim_s: 100.0,
            },
            PerfRecord {
                name: "b",
                wall_s: 0.75,
                sim_s: 200.0,
            },
        ];
        let j = to_json(
            Setup {
                scale: 0.05,
                seed: 1,
            },
            &recs,
        );
        assert!(j.contains("\"total_wall_s\": 1.0"));
        assert!(j.contains("{\"name\": \"a\", \"wall_s\": 0.25, \"sim_job_s\": 100.0}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&recs);
        assert_eq!(t.column("wall_s"), vec![0.25, 0.75]);
    }
}
