//! Engine wall-clock benchmark: `repro bench [--json DIR]`.
//!
//! Times the *simulator itself* (host wall-clock, not simulated seconds) on
//! the mid-size Fig 7a / Fig 8a GroupBy cells, the repository's hottest
//! end-to-end paths: tens of thousands of shuffle flows through the max–min
//! fair network plus the real-partition executor. The JSON output is the
//! baseline/after evidence for performance PRs (see EXPERIMENTS.md
//! "Performance").

use crate::experiments::Setup;
use crate::json::{escape, num};
use crate::Table;
use memres_core::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed run: host wall-clock seconds plus the simulated job time (the
/// latter is a determinism check — optimizations must not change it), plus
/// engine self-profiling counters (events processed, rough peak heap).
#[derive(Clone, Debug)]
pub struct PerfRecord {
    pub name: &'static str,
    pub wall_s: f64,
    pub sim_s: f64,
    /// Simulation events processed end to end.
    pub events: u64,
    /// Rough peak-heap estimate (arena capacities; see `heap_estimate_bytes`).
    pub heap_bytes: u64,
}

impl PerfRecord {
    /// Engine throughput: simulation events per host wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// The benchmark (and `repro trace` / `repro explain`) cell names, in suite
/// order: the mid-size Fig 7a / Fig 8a GroupBy cells.
pub const CELL_NAMES: [&str; 5] = [
    "fig7a_400gb_ramdisk",
    "fig7a_400gb_lustre_local",
    "fig7a_400gb_lustre_shared",
    "fig8a_600gb_ramdisk",
    "fig8a_600gb_ssd",
];

/// Resolve one named cell to its engine inputs (cluster spec, config,
/// workload); `None` for an unknown name. `suite`, `repro trace`, and
/// `repro explain` all construct cells through here so they cannot drift.
pub fn cell(
    setup: Setup,
    name: &str,
) -> Option<(
    memres_cluster::ClusterSpec,
    EngineConfig,
    memres_workloads::GroupBy,
)> {
    let (gb, shuffle) = match name {
        "fig7a_400gb_ramdisk" => (400.0, ShuffleStore::Local(StoreDevice::RamDisk)),
        "fig7a_400gb_lustre_local" => (400.0, ShuffleStore::LustreLocal),
        "fig7a_400gb_lustre_shared" => (400.0, ShuffleStore::LustreShared),
        "fig8a_600gb_ramdisk" => (600.0, ShuffleStore::Local(StoreDevice::RamDisk)),
        "fig8a_600gb_ssd" => (600.0, ShuffleStore::Local(StoreDevice::Ssd)),
        _ => return None,
    };
    let cfg = EngineConfig {
        input: InputSource::Lustre,
        shuffle,
        scheduler: SchedulerKind::Fifo,
        seed: setup.seed,
        ..EngineConfig::default()
    };
    Some((
        setup.cluster(),
        cfg,
        memres_workloads::GroupBy::new(setup.bytes(gb)),
    ))
}

fn time_run(
    name: &'static str,
    spec: memres_cluster::ClusterSpec,
    cfg: EngineConfig,
    gb: &memres_workloads::GroupBy,
) -> PerfRecord {
    let t0 = Instant::now();
    let mut d = Driver::new(spec, cfg);
    let m = d.run_for_metrics(&gb.build(), gb.action());
    PerfRecord {
        name,
        wall_s: t0.elapsed().as_secs_f64(),
        sim_s: m.job_time(),
        events: d.engine_steps(),
        heap_bytes: d.heap_estimate_bytes(),
    }
}

/// The mid-size Fig 7a / Fig 8a cells (400 GB and 600 GB paper-scale,
/// shrunk by `setup.scale` like every other experiment).
pub fn suite(setup: Setup) -> Vec<PerfRecord> {
    suite_baseline(setup, false)
}

/// Same cells with `baseline = true` re-running on the legacy binary-heap
/// event queue with rack aggregation disabled — the before/after record in
/// BENCH_6.json. (At 100 nodes the aggregation threshold is never crossed,
/// so the paper cells isolate the queue swap.)
pub fn suite_baseline(setup: Setup, baseline: bool) -> Vec<PerfRecord> {
    CELL_NAMES
        .iter()
        .map(|name| {
            let (spec, mut cfg, gb) = cell(setup, name).expect("suite cell must resolve");
            if baseline {
                cfg = cfg
                    .with_legacy_event_queue()
                    .with_rack_agg_threshold(u32::MAX);
            }
            time_run(name, spec, cfg, &gb)
        })
        .collect()
}

pub fn table(records: &[PerfRecord]) -> Table {
    let mut t = Table::new(
        "bench",
        "engine wall-clock (host seconds) on mid-size Fig 7a/8a cells",
        &["wall_s", "sim_job_s", "events", "events_per_s", "heap_mb"],
    );
    for r in records {
        t.row(
            r.name,
            vec![
                r.wall_s,
                r.sim_s,
                r.events as f64,
                r.events_per_sec(),
                r.heap_bytes as f64 / (1024.0 * 1024.0),
            ],
        );
    }
    let total: f64 = records.iter().map(|r| r.wall_s).sum();
    t.note(format!("total wall-clock {total:.3}s"));
    t
}

/// Machine-readable record: `{"target", "scale", "seed", "runs": [...],
/// "total_wall_s"}`.
pub fn to_json(setup: Setup, records: &[PerfRecord]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"target\": \"bench\",");
    let _ = writeln!(out, "  \"scale\": {},", num(setup.scale));
    let _ = writeln!(out, "  \"seed\": {},", setup.seed);
    out.push_str("  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"wall_s\": {}, \"sim_job_s\": {}, \"events\": {}, \"events_per_s\": {}, \"heap_bytes\": {}}}",
            escape(r.name),
            num(r.wall_s),
            num(r.sim_s),
            r.events,
            num(r.events_per_sec()),
            r.heap_bytes
        );
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let total: f64 = records.iter().map(|r| r.wall_s).sum();
    let _ = write!(out, "  \"total_wall_s\": {}\n}}", num(total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let recs = vec![
            PerfRecord {
                name: "a",
                wall_s: 0.25,
                sim_s: 100.0,
                events: 1000,
                heap_bytes: 2 * 1024 * 1024,
            },
            PerfRecord {
                name: "b",
                wall_s: 0.75,
                sim_s: 200.0,
                events: 3000,
                heap_bytes: 1024,
            },
        ];
        let j = to_json(
            Setup {
                scale: 0.05,
                seed: 1,
            },
            &recs,
        );
        assert!(j.contains("\"total_wall_s\": 1.0"));
        assert!(j.contains(
            "{\"name\": \"a\", \"wall_s\": 0.25, \"sim_job_s\": 100.0, \"events\": 1000, \"events_per_s\": 4000.0, \"heap_bytes\": 2097152}"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = table(&recs);
        assert_eq!(t.column("wall_s"), vec![0.25, 0.75]);
        assert_eq!(t.column("events_per_s"), vec![4000.0, 4000.0]);
        assert_eq!(t.column("heap_mb"), vec![2.0, 1024.0 / (1024.0 * 1024.0)]);
    }

    #[test]
    fn zero_wall_clock_reports_zero_throughput() {
        // Sub-resolution timers (or a clamped clock) must not divide by
        // zero: events_per_sec is defined as 0 when no wall time elapsed.
        let r = PerfRecord {
            name: "instant",
            wall_s: 0.0,
            sim_s: 1.0,
            events: 12345,
            heap_bytes: 0,
        };
        assert_eq!(r.events_per_sec(), 0.0);
        assert!(r.events_per_sec().is_finite());
    }

    #[test]
    fn every_cell_name_resolves() {
        let setup = Setup::smoke();
        for name in CELL_NAMES {
            assert!(cell(setup, name).is_some(), "cell {name} must resolve");
        }
        assert!(cell(setup, "fig99_bogus").is_none());
    }
}
