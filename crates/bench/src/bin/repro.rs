//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!   repro [--smoke] [--scale X] [--json DIR] `<target>`...
//!   targets: table1 plans fig5a fig5b fig7a fig7b fig8a fig8b fig8c fig8d
//!            fig9a fig9b fig10 fig12a fig12b fig13a fig13b fig14 ablations
//!            baselines faults faults-abort tenants bench trace `<cell>`
//!            explain `<cell>` all
//!
//! `tenants` runs the multi-tenant job-stream cells (DESIGN.md §4.14): two
//! tenants under a seeded arrival process with per-tenant queueing delay,
//! p50/p99 latency and slowdown-vs-isolated, plus the ELB-under-
//! interleaving and CAD-starvation revisits of Fig 13/14.
//!
//! Exit codes: 0 on success, 1 when any simulated job aborted (the tables
//! printed are then not a faithful reproduction), 2 on usage errors.
//! Unknown targets are rejected up front (exit 2) with the usage line, so a
//! typo can't burn hours of experiments first.
//!
//! `bench` times the simulator itself (host wall-clock) on the mid-size
//! Fig 7a/8a cells and, with `--json DIR`, writes `DIR/bench.json` — the
//! machine-readable before/after record used by performance PRs. It runs
//! at paper scale (100 nodes) by default; pass `--smoke` for a quick CI run.
//!
//! `trace <cell>` re-runs one bench cell with full event tracing and, with
//! `--json DIR`, writes `DIR/<cell>.trace.json` (Chrome trace-event form,
//! loadable in Perfetto) plus `DIR/<cell>.events.jsonl` (compact log).
//! `explain <cell>` prints the critical-path attribution table and the
//! top straggler attempts instead (see DESIGN.md §4.11).
//!
//! `report <cell>` re-runs one bench cell with the sim-time periodic
//! sampler on (DESIGN.md §4.16) and, with `--json DIR`, writes
//! `DIR/<cell>.openmetrics`, `DIR/<cell>.timeseries.csv`,
//! `DIR/<cell>.dashboard.html` and `DIR/<cell>.attrib.csv`. All four are
//! byte-deterministic. `--slow-ssd F` injects an SSD degradation (speed
//! factor F) one simulated second in — the known-regression fixture.
//!
//! `diff <a> <b> [--threshold X]` joins two runs into a ranked regression
//! report: either two `report` output directories (time-series join +
//! critical-path attribution of what moved) or two `BENCH_*.json` baseline
//! files (per-record `sim_job_s`). Exit 1 when run B regressed past the
//! threshold (default 5%).
//!
//! `fuzz` is the differential fuzzer (DESIGN.md §4.13):
//!   repro fuzz --seed-range A..B [--budget N] [--json DIR] [--inject-defect]
//!   repro fuzz --replay '<spec>'
//! Each seed deterministically generates a config/workload point and checks
//! it against six independent oracles; failures are shrunk to a minimal
//! reproducer and printed as a `--replay` line. Exit 1 on any failure.

use memres_bench::experiments as ex;
use memres_bench::{fuzz, perf, report, scale, tenants, trace, Table};
use std::io::Write;

/// Every runnable target, in `all` order (`bench` is opt-in, not in `all`).
const ALL_TARGETS: [&str; 22] = [
    "table1",
    "plans",
    "fig5a",
    "fig5b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "fig9a",
    "fig9b",
    "fig10",
    "fig12a",
    "fig12b",
    "fig13a",
    "fig13b",
    "fig14",
    "ablations",
    "baselines",
    "faults",
    "tenants",
];

fn valid_target(t: &str) -> bool {
    t == "all"
        || t == "bench"
        || t == "scale"
        || t == "fig14a"
        || t == "fig14b"
        || t == "faults-abort"
        || ALL_TARGETS.contains(&t)
}

fn usage() -> String {
    format!(
        "usage: repro [--smoke] [--scale X] [--seed N] [--json DIR] <target>...\n\
         targets: {} fig14a fig14b faults-abort bench scale all\n\
         \u{20}        trace <cell> | explain <cell> | report <cell> [--slow-ssd F],\n\
         \u{20}        cell one of: {}\n\
         \u{20}      repro diff <a> <b> [--threshold X]   (two report dirs or two BENCH_*.json)\n\
         \u{20}      repro fuzz --seed-range A..B [--budget N] [--json DIR] [--inject-defect]\n\
         \u{20}      repro fuzz --replay '<spec>'",
        ALL_TARGETS.join(" "),
        perf::CELL_NAMES.join(" ")
    )
}

/// `repro fuzz ...` — differential fuzzing against independent oracles.
/// Returns the process exit code.
fn fuzz_main(args: &[String]) -> i32 {
    let mut seed_range: Option<(u64, u64)> = None;
    let mut budget: u64 = 20_000_000;
    let mut replay: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut inject_defect = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed-range" => {
                i += 1;
                let v = operand(args, i, "--seed-range", "a range A..B");
                let parsed = v
                    .split_once("..")
                    .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<u64>().ok()?)));
                match parsed {
                    Some((a, b)) if a < b => seed_range = Some((a, b)),
                    _ => usage_error("--seed-range", "a range A..B with A < B"),
                }
            }
            "--budget" => {
                i += 1;
                budget = operand(args, i, "--budget", "an event count")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--budget", "an event count"));
            }
            "--replay" => {
                i += 1;
                replay = Some(operand(args, i, "--replay", "a spec line").to_string());
            }
            "--json" => {
                i += 1;
                json_dir = Some(operand(args, i, "--json", "a directory").to_string());
            }
            "--inject-defect" => inject_defect = true,
            other => {
                eprintln!("error: unknown fuzz argument '{other}'");
                eprintln!("{}", usage());
                return 2;
            }
        }
        i += 1;
    }

    if let Some(line) = replay {
        let spec = match fuzz::FuzzSpec::parse(&line) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: bad spec: {e}");
                return 2;
            }
        };
        println!("replaying: {}", spec.encode());
        return match fuzz::check(&spec, budget) {
            Ok(()) => {
                println!("PASS: all oracles hold");
                0
            }
            Err(f) => {
                println!("FAIL [{}]: {}", f.oracle, f.message);
                1
            }
        };
    }

    let Some((start, end)) = seed_range else {
        eprintln!("error: fuzz needs --seed-range A..B or --replay '<spec>'");
        eprintln!("{}", usage());
        return 2;
    };
    let t0 = std::time::Instant::now();
    let outcomes = fuzz::run_range(start, end, budget, inject_defect, |o| {
        if let Some(f) = &o.failure {
            println!("seed {}: FAIL [{}] {}", o.seed, f.oracle, f.message);
            println!("  spec:      {}", o.spec.encode());
            if let Some(m) = &o.minimized {
                println!("  minimized: {}", m.replay_line());
            }
        }
    });
    let failures = outcomes.iter().filter(|o| o.failure.is_some()).count();
    println!(
        "fuzz: {} seeds, {} failures ({:.1}s)",
        outcomes.len(),
        failures,
        t0.elapsed().as_secs_f64()
    );
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/fuzz.json");
        std::fs::write(&path, fuzz::to_json(&outcomes, budget)).expect("write fuzz json");
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

/// `repro diff <a> <b> [--threshold X]` — regression diff of two runs.
/// `<a>`/`<b>` are either two `repro report --json` output directories or
/// two benchmark baseline JSON files (`.json` suffix on both). Returns the
/// process exit code: 1 when run B regressed past the threshold.
fn diff_main(args: &[String]) -> i32 {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.05f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = operand(args, i, "--threshold", "a float")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threshold", "a float"));
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [a, b] = paths.as_slice() else {
        eprintln!("error: diff takes exactly two runs (report dirs or BENCH_*.json files)");
        eprintln!("{}", usage());
        return 2;
    };
    if !(0.0..=10.0).contains(&threshold) {
        usage_error("--threshold", "a float in [0, 10]");
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };

    if a.ends_with(".json") && b.ends_with(".json") {
        let d = report::diff_bench_json(a, &read(a), b, &read(b), threshold);
        if d.rows.is_empty() {
            eprintln!("error: no shared sim_job_s records between {a} and {b}");
            return 2;
        }
        print!("{}", d.render());
        return i32::from(d.regressed());
    }

    // Report-directory mode: every `<cell>.timeseries.csv` present in A is
    // diffed against the same cell in B (sorted, so output order is stable).
    let mut cells: Vec<String> = match std::fs::read_dir(a) {
        Ok(entries) => entries
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter_map(|f| Some(f.strip_suffix(".timeseries.csv")?.to_string()))
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read directory {a}: {e}");
            return 2;
        }
    };
    cells.sort();
    if cells.is_empty() {
        eprintln!("error: {a} contains no *.timeseries.csv (run `repro report <cell> --json {a}`)");
        return 2;
    }
    let mut regressed = false;
    for cell in &cells {
        let d = report::diff_reports(
            &format!("{a}/{cell}"),
            &read(&format!("{a}/{cell}.timeseries.csv")),
            &read(&format!("{a}/{cell}.attrib.csv")),
            &format!("{b}/{cell}"),
            &read(&format!("{b}/{cell}.timeseries.csv")),
            &read(&format!("{b}/{cell}.attrib.csv")),
            threshold,
        );
        print!("{}", d.render());
        regressed |= d.regressed();
    }
    i32::from(regressed)
}

fn operand<'a>(args: &'a [String], i: usize, flag: &str, what: &str) -> &'a str {
    args.get(i)
        .map(String::as_str)
        .unwrap_or_else(|| usage_error(flag, what))
}

fn usage_error(flag: &str, what: &str) -> ! {
    eprintln!("error: {flag} takes {what}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(fuzz_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("diff") {
        std::process::exit(diff_main(&args[1..]));
    }
    let mut setup = ex::Setup::paper();
    let mut smoke = false;
    let mut baseline = false;
    let mut json_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    // `(subcommand, cell)` pairs for `trace`/`explain`/`report <cell>`.
    let mut cell_cmds: Vec<(String, String)> = Vec::new();
    let mut slow_ssd: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            cmd @ ("trace" | "explain" | "report") => {
                let cmd = cmd.to_string();
                i += 1;
                let cell = operand(&args, i, &cmd, "a cell name").to_string();
                if !perf::CELL_NAMES.contains(&cell.as_str()) {
                    eprintln!("error: unknown cell '{cell}'");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                }
                cell_cmds.push((cmd, cell));
            }
            "--smoke" => {
                setup = ex::Setup::smoke();
                smoke = true;
            }
            "--baseline" => baseline = true,
            "--slow-ssd" => {
                i += 1;
                let f: f64 = operand(&args, i, "--slow-ssd", "a speed factor in (0, 1]")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--slow-ssd", "a speed factor in (0, 1]"));
                if !(f > 0.0 && f <= 1.0) {
                    usage_error("--slow-ssd", "a speed factor in (0, 1]");
                }
                slow_ssd = Some(f);
            }
            "--scale" => {
                i += 1;
                setup.scale = operand(&args, i, "--scale", "a float")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale", "a float"));
            }
            "--seed" => {
                i += 1;
                setup.seed = operand(&args, i, "--seed", "an integer")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed", "an integer"));
            }
            "--json" => {
                i += 1;
                json_dir = Some(operand(&args, i, "--json", "a directory").to_string());
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() && cell_cmds.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    // Reject unknown targets before running anything: a typo at position N
    // must not cost N-1 experiments of wasted wall-clock first.
    let unknown: Vec<&String> = targets.iter().filter(|t| !valid_target(t)).collect();
    if !unknown.is_empty() {
        for t in unknown {
            eprintln!("error: unknown target '{t}'");
        }
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_TARGETS.iter().map(|s| s.to_string()).collect();
    }

    // Render a table (and its JSON, when requested); report whether any run
    // inside it aborted so main can turn that into a non-zero exit code.
    let emit = |t: &Table, json_dir: &Option<String>| -> bool {
        println!("{}", t.render());
        if let Some(dir) = json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{}.json", t.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            let _ = writeln!(f, "{}", t.to_json());
            eprintln!("wrote {path}");
        }
        t.try_column("aborted_jobs")
            .is_some_and(|col| col.iter().any(|&v| v > 0.0))
    };

    // An aborted job means the experiment did not actually reproduce the
    // paper's result; the process must say so in its exit code, not just in
    // a table cell nobody greps.
    let mut job_aborted = false;

    for target in &targets {
        let start = std::time::Instant::now();
        match target.as_str() {
            "table1" => job_aborted |= emit(&ex::table1(), &json_dir),
            "plans" => println!("{}", ex::plans(setup)),
            "fig5a" => job_aborted |= emit(&ex::fig5a(setup), &json_dir),
            "fig5b" => job_aborted |= emit(&ex::fig5b(setup), &json_dir),
            "fig7a" => job_aborted |= emit(&ex::fig7a(setup), &json_dir),
            "fig7b" => job_aborted |= emit(&ex::fig7b(setup), &json_dir),
            "fig8a" => job_aborted |= emit(&ex::fig8a(setup), &json_dir),
            "fig8b" => job_aborted |= emit(&ex::fig8b(setup), &json_dir),
            "fig8c" => job_aborted |= emit(&ex::fig8c(setup), &json_dir),
            "fig8d" => job_aborted |= emit(&ex::fig8d(setup), &json_dir),
            "fig9a" => job_aborted |= emit(&ex::fig9a(setup), &json_dir),
            "fig9b" => job_aborted |= emit(&ex::fig9b(setup), &json_dir),
            "fig10" => job_aborted |= emit(&ex::fig10(setup), &json_dir),
            "fig12a" => job_aborted |= emit(&ex::fig12a(setup), &json_dir),
            "fig12b" => job_aborted |= emit(&ex::fig12b(setup), &json_dir),
            "fig13a" => job_aborted |= emit(&ex::fig13a(setup), &json_dir),
            "fig13b" => job_aborted |= emit(&ex::fig13b(setup), &json_dir),
            "baselines" => job_aborted |= emit(&ex::baseline_speculation(setup), &json_dir),
            "faults" => job_aborted |= emit(&ex::faults(setup), &json_dir),
            "faults-abort" => job_aborted |= emit(&ex::faults_abort(setup), &json_dir),
            "scale" => {
                // `--smoke` runs only the CI-sized cell; `--baseline` turns
                // the scale optimizations off (where feasible) for the
                // before/after record in BENCH_6.json.
                let mut records = Vec::new();
                for c in scale::selected(smoke) {
                    if baseline && !scale::baseline_feasible(c.name) {
                        eprintln!(
                            "skipping {} baseline: per-node flows at {} nodes are \
                             infeasible (see DESIGN.md, rack aggregation)",
                            c.name, c.workers
                        );
                        continue;
                    }
                    let t0 = std::time::Instant::now();
                    let r = scale::run(c, setup.seed, baseline);
                    eprintln!("[{} took {:.1}s]", c.name, t0.elapsed().as_secs_f64());
                    records.push(r);
                }
                println!("{}", scale::table(&records, baseline).render());
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let suffix = if baseline { "scale_baseline" } else { "scale" };
                    let path = format!("{dir}/{suffix}.json");
                    let mut f = std::fs::File::create(&path).expect("create json file");
                    let _ = writeln!(f, "{}", scale::to_json(setup.seed, baseline, &records));
                    eprintln!("wrote {path}");
                }
            }
            "bench" => {
                let records = perf::suite_baseline(setup, baseline);
                println!("{}", perf::table(&records).render());
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let suffix = if baseline { "bench_baseline" } else { "bench" };
                    let path = format!("{dir}/{suffix}.json");
                    let mut f = std::fs::File::create(&path).expect("create json file");
                    let _ = writeln!(f, "{}", perf::to_json(setup, &records));
                    eprintln!("wrote {path}");
                }
            }
            "ablations" => {
                job_aborted |= emit(&ex::ablation_elb_threshold(setup), &json_dir);
                job_aborted |= emit(&ex::ablation_cad_step(setup), &json_dir);
                job_aborted |= emit(&ex::ablation_delay_wait(setup), &json_dir);
            }
            "tenants" => {
                job_aborted |= emit(&tenants::policies(setup), &json_dir);
                job_aborted |= emit(&tenants::elb_interleaved(setup), &json_dir);
                job_aborted |= emit(&tenants::cad_starvation(setup), &json_dir);
            }
            "fig14" | "fig14a" | "fig14b" => {
                let (a, b) = ex::fig14(setup);
                job_aborted |= emit(&a, &json_dir);
                job_aborted |= emit(&b, &json_dir);
            }
            other => unreachable!("target '{other}' passed validation but has no handler"),
        }
        eprintln!("[{target} took {:.1}s]", start.elapsed().as_secs_f64());
    }

    for (cmd, cell) in &cell_cmds {
        let start = std::time::Instant::now();
        if cmd == "report" {
            let run = report::run_cell(setup, cell, slow_ssd).expect("cell validated above");
            println!(
                "report {}: {} sampler ticks over {:.3}s simulated job time",
                run.cell, run.ticks, run.job_s
            );
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                for (suffix, bytes) in [
                    ("openmetrics", &run.openmetrics),
                    ("timeseries.csv", &run.timeseries_csv),
                    ("dashboard.html", &run.dashboard_html),
                    ("attrib.csv", &run.attrib_csv),
                ] {
                    let path = format!("{dir}/{cell}.{suffix}");
                    std::fs::write(&path, bytes).expect("write report artifact");
                    eprintln!("wrote {path}");
                }
            } else {
                eprintln!(
                    "hint: pass --json DIR to write {cell}.openmetrics, \
                     {cell}.timeseries.csv, {cell}.dashboard.html, {cell}.attrib.csv"
                );
            }
            eprintln!("[{cmd} {cell} took {:.1}s]", start.elapsed().as_secs_f64());
            continue;
        }
        let run = trace::run_cell(setup, cell).expect("cell validated above");
        println!("{}", trace::report(&run, 5));
        if cmd == "trace" {
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                let tj = format!("{dir}/{cell}.trace.json");
                std::fs::write(&tj, run.chrome_json()).expect("write trace json");
                eprintln!("wrote {tj}");
                let jl = format!("{dir}/{cell}.events.jsonl");
                std::fs::write(&jl, run.events_jsonl()).expect("write events jsonl");
                eprintln!("wrote {jl}");
            } else {
                eprintln!("hint: pass --json DIR to write {cell}.trace.json (Perfetto) and {cell}.events.jsonl");
            }
        }
        eprintln!("[{cmd} {cell} took {:.1}s]", start.elapsed().as_secs_f64());
    }
    if job_aborted {
        eprintln!("error: a job aborted after exhausting task retries; results above are not a reproduction");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_all_target_is_valid() {
        for t in ALL_TARGETS {
            assert!(valid_target(t), "{t}");
        }
        for t in ["all", "bench", "scale", "fig14a", "fig14b"] {
            assert!(valid_target(t), "{t}");
        }
    }

    #[test]
    fn typos_are_invalid() {
        for t in ["fig5", "figure5a", "fault", "", "tables", "benchh"] {
            assert!(!valid_target(t), "'{t}' should be rejected");
        }
    }

    #[test]
    fn usage_lists_every_target() {
        let u = usage();
        for t in ALL_TARGETS {
            assert!(u.contains(t), "usage is missing {t}");
        }
        assert!(u.contains("bench scale all"));
    }
}
