use memres_bench::experiments::Setup;
use memres_core::prelude::*;
use memres_workloads::GroupBy;

fn main() {
    let setup = Setup::smoke();
    let spec = setup.cluster();
    let gb = GroupBy::new(setup.bytes(1500.0));
    let base = EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(StoreDevice::Ssd),
        scheduler: SchedulerKind::Fifo,
        seed: 1,
        ..EngineConfig::default()
    };
    for (name, cfg) in [("plain", base.clone()), ("cad", base.clone().with_cad())] {
        let mut d = Driver::new(spec.clone(), cfg);
        let m = d.run_for_metrics(&gb.build(), gb.action());
        let durs = m.task_durations(Phase::Storing);
        let n = durs.len();
        let mean = durs.iter().sum::<f64>() / n as f64;
        println!("{name}: storing={:.2}s tasks={} mean={:.2} first16={:.2} last16={:.2} interval_final={:?}",
            m.phase_time(Phase::Storing), n, mean,
            durs[..16].iter().sum::<f64>()/16.0,
            durs[n-16..].iter().sum::<f64>()/16.0,
            d.world().cad_interval_secs());
    }
}
