//! Scale-out cells: `repro scale [--smoke] [--baseline] [--json DIR]`.
//!
//! Where `repro bench` times the paper-scale cells (100 nodes), this family
//! pushes the engine to 100× that — thousands of nodes, hundreds of
//! thousands to millions of tasks — and reports engine throughput
//! (simulation events per host second) and the rough peak-heap estimate.
//! The workload is the synthetic GroupBy DAG from `memres-workloads` with
//! no real records, so every byte of cost is engine bookkeeping: the
//! calendar event queue, rack-level flow aggregation, and the SoA task
//! arena are exactly what these cells exercise (DESIGN.md "Scaling the
//! engine 100× past the paper").
//!
//! `--baseline` re-runs with the optimizations off (`legacy_event_queue`
//! plus `rack_agg_threshold = u32::MAX`): the before/after evidence in
//! BENCH_6.json. Only the smoke cell is baseline-feasible — per-node fetch
//! flows at thousands of nodes put the max–min water-filler in
//! O(flows²·links) territory, which is precisely why the aggregation tier
//! exists; the larger baselines would run for hours.

use crate::json::{escape, num};
use crate::perf::PerfRecord;
use crate::Table;
use memres_core::prelude::*;
use memres_des::units::MB;
use std::fmt::Write as _;
use std::time::Instant;

/// One synthetic scale cell: nominal node and task counts are in the name;
/// exact producer/reducer counts below.
#[derive(Clone, Copy, Debug)]
pub struct ScaleCell {
    pub name: &'static str,
    pub workers: u32,
    pub reducers: u32,
    pub split_mb: f64,
    pub producers: u64,
}

impl ScaleCell {
    pub fn input_bytes(&self) -> f64 {
        self.producers as f64 * self.split_mb * MB
    }

    /// Total tasks the job creates (producers + reducers + one store task
    /// per node in the flush phase).
    pub fn tasks(&self) -> u64 {
        self.producers + self.reducers as u64 + self.workers as u64
    }
}

/// The family, smallest first. The smoke cell is sized to cross the rack
/// aggregation threshold ((192/2)² = 9216 > 4096) while staying CI-fast.
pub const SCALE_CELLS: [ScaleCell; 5] = [
    ScaleCell {
        name: "scale_smoke",
        workers: 192,
        reducers: 512,
        split_mb: 256.0,
        producers: 1_536,
    },
    ScaleCell {
        name: "scale_1k_100k",
        workers: 1_000,
        reducers: 8_192,
        split_mb: 256.0,
        producers: 90_000,
    },
    ScaleCell {
        name: "scale_4k_1m",
        workers: 4_096,
        reducers: 8_192,
        split_mb: 64.0,
        producers: 990_000,
    },
    ScaleCell {
        name: "scale_10k_1m",
        workers: 10_000,
        reducers: 8_192,
        split_mb: 64.0,
        producers: 990_000,
    },
    ScaleCell {
        name: "scale_10k_4m",
        workers: 10_000,
        reducers: 16_384,
        split_mb: 32.0,
        producers: 3_980_000,
    },
];

pub fn cell(name: &str) -> Option<ScaleCell> {
    SCALE_CELLS.iter().copied().find(|c| c.name == name)
}

/// Whether the un-optimized configuration finishes in sane wall-clock.
/// Per-node fetch flows are quadratic in nodes inside the water-filler, so
/// only the 192-node smoke cell gets a measured baseline; the larger cells'
/// baseline column stays empty (that infeasibility *is* the result).
pub fn baseline_feasible(name: &str) -> bool {
    name == "scale_smoke"
}

fn config(seed: u64, baseline: bool) -> EngineConfig {
    let cfg = EngineConfig {
        input: InputSource::Lustre,
        shuffle: ShuffleStore::Local(StoreDevice::RamDisk),
        scheduler: SchedulerKind::Fifo,
        seed,
        ..EngineConfig::default()
    }
    // Homogeneous nodes: no periodic SpeedResample events, so the event
    // count measures job structure, not sampling cadence.
    .homogeneous();
    if baseline {
        cfg.with_legacy_event_queue()
            .with_rack_agg_threshold(u32::MAX)
    } else {
        cfg
    }
}

/// Run one cell; `baseline` turns the optimizations off.
pub fn run(c: ScaleCell, seed: u64, baseline: bool) -> PerfRecord {
    let spec = memres_cluster::hyperion().scaled_workers(c.workers);
    let gb = memres_workloads::GroupBy::new(c.input_bytes())
        .with_split(c.split_mb * MB)
        .with_reducers(c.reducers);
    let t0 = Instant::now();
    let mut d = Driver::new(spec, config(seed, baseline));
    let m = d.run_for_metrics(&gb.build(), gb.action());
    PerfRecord {
        name: c.name,
        wall_s: t0.elapsed().as_secs_f64(),
        sim_s: m.job_time(),
        events: d.engine_steps(),
        heap_bytes: d.heap_estimate_bytes(),
    }
}

/// The cells a given invocation runs: the smoke cell alone under
/// `--smoke`, everything else otherwise.
pub fn selected(smoke: bool) -> Vec<ScaleCell> {
    SCALE_CELLS
        .iter()
        .copied()
        .filter(|c| (c.name == "scale_smoke") == smoke)
        .collect()
}

pub fn table(records: &[PerfRecord], baseline: bool) -> Table {
    let mut t = Table::new(
        "scale",
        if baseline {
            "scale cells, optimizations OFF (legacy heap queue, per-node flows)"
        } else {
            "scale cells: engine throughput at 100x paper scale"
        },
        &["wall_s", "sim_job_s", "events", "events_per_s", "heap_mb"],
    );
    for r in records {
        t.row(
            r.name,
            vec![
                r.wall_s,
                r.sim_s,
                r.events as f64,
                r.events_per_sec(),
                r.heap_bytes as f64 / (1024.0 * 1024.0),
            ],
        );
    }
    t
}

/// Machine-readable record, the shape checked into BENCH_6.json.
pub fn to_json(seed: u64, baseline: bool, records: &[PerfRecord]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"target\": \"scale\",");
    let _ = writeln!(out, "  \"baseline\": {baseline},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    out.push_str("  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"wall_s\": {}, \"sim_job_s\": {}, \"events\": {}, \"events_per_s\": {}, \"heap_bytes\": {}}}",
            escape(r.name),
            num(r.wall_s),
            num(r.sim_s),
            r.events,
            num(r.events_per_sec()),
            r.heap_bytes
        );
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let total: f64 = records.iter().map(|r| r.wall_s).sum();
    let _ = write!(out, "  \"total_wall_s\": {}\n}}", num(total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_resolve_and_fit_node_memory() {
        for c in SCALE_CELLS {
            assert!(cell(c.name).is_some());
            // RAMDisk deposits must fit the per-node 32 GB store.
            let per_node = c.input_bytes() / c.workers as f64;
            assert!(
                per_node < 30e9,
                "{}: {per_node:.2e} B/node would overflow the RAMDisk store",
                c.name
            );
            // Every non-smoke cell must exceed the dense-bucket limit so the
            // Uniform arm (O(workers) heap) is actually exercised.
            let entries = c.workers as usize * c.reducers as usize;
            if c.name != "scale_smoke" {
                assert!(entries > 1 << 20, "{} stays dense", c.name);
            }
            // And all of them must cross the rack-aggregation threshold.
            let per_rack = (c.workers / 2) as u64;
            assert!(per_rack * per_rack > 4096, "{} never aggregates", c.name);
        }
        assert!(cell("scale_bogus").is_none());
    }

    #[test]
    fn selection_splits_on_smoke() {
        assert_eq!(selected(true).len(), 1);
        assert_eq!(selected(true)[0].name, "scale_smoke");
        assert_eq!(selected(false).len(), SCALE_CELLS.len() - 1);
    }

    #[test]
    fn smoke_cell_runs_and_aggregates() {
        let c = cell("scale_smoke").unwrap();
        let r = run(c, 1, false);
        assert!(r.events > 0 && r.sim_s > 0.0);
        assert!(r.heap_bytes > 0);
    }

    #[test]
    fn json_shape() {
        let r = PerfRecord {
            name: "scale_smoke",
            wall_s: 0.5,
            sim_s: 10.0,
            events: 5000,
            heap_bytes: 1024,
        };
        let j = to_json(1, false, &[r]);
        assert!(j.contains("\"target\": \"scale\""));
        assert!(j.contains("\"baseline\": false"));
        assert!(j.contains("\"events_per_s\": 10000.0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
