//! # memres-bench — the paper-reproduction harness
//!
//! One experiment function per table/figure of the IPDPS'14 evaluation.
//! Each returns a [`Table`] whose rows mirror the series the paper plots;
//! the `repro` binary prints them and EXPERIMENTS.md records paper-vs-
//! measured shapes. A `scale` parameter shrinks cluster and data sizes
//! proportionally so the same experiments run as quick smoke tests and
//! Criterion benches.

pub mod experiments;
pub mod fuzz;
pub mod json;
pub mod perf;
pub mod report;
pub mod scale;
pub mod tenants;
pub mod trace;

use std::fmt::Write as _;

/// A printable result table: one labelled row per x-axis point.
pub struct Table {
    pub id: &'static str,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<(String, Vec<f64>)>,
    /// Headline observations, printed under the table and asserted on by
    /// integration tests (shape checks).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Column values by header name.
    pub fn column(&self, name: &str) -> Vec<f64> {
        self.try_column(name)
            .unwrap_or_else(|| panic!("no column {name} in {}", self.id))
    }

    /// Column values by header name; `None` when the table has no such
    /// column (for callers probing tables of mixed shapes).
    pub fn try_column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, v)| v[idx]).collect())
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap();
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, " {c:>14}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in vals {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    let _ = write!(out, " {v:>14.3e}");
                } else {
                    let _ = write!(out, " {v:>14.3}");
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }

    /// Machine-readable dump for EXPERIMENTS.md tooling (pretty JSON).
    pub fn to_json(&self) -> String {
        use crate::json::{escape, num};
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": \"{}\",", escape(self.id));
        let _ = writeln!(out, "  \"title\": \"{}\",", escape(&self.title));
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("\"{}\"", escape(c)))
            .collect();
        let _ = writeln!(out, "  \"columns\": [{}],", cols.join(", "));
        out.push_str("  \"rows\": [");
        for (i, (label, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let vals: Vec<String> = values.iter().map(|&v| num(v)).collect();
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"values\": [{}]}}",
                escape(label),
                vals.join(", ")
            );
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect();
        let _ = write!(out, "  \"notes\": [{}]\n}}", notes.join(", "));
        out
    }
}

/// Ratio helper that tolerates zero denominators.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// Percent improvement of `new` over `base` (positive = faster).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_queries() {
        let mut t = Table::new("figX", "demo", &["a", "b"]);
        t.row("r1", vec![1.0, 2.0]);
        t.row("r2", vec![3.0, 4.0]);
        t.note("note");
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("r2"));
        assert!(s.contains("* note"));
        assert_eq!(t.column("b"), vec![2.0, 4.0]);
        let j = t.to_json();
        assert!(j.contains("\"id\": \"figX\""));
        assert!(j.contains("{\"label\": \"r2\", \"values\": [3.0, 4.0]}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_handles_nan_and_escapes() {
        let mut t = Table::new("x", "a \"quoted\" title", &["c"]);
        t.row("r", vec![f64::NAN]);
        let j = t.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"values\": [null]"));
    }

    #[test]
    fn helpers() {
        assert!((ratio(6.0, 2.0) - 3.0).abs() < 1e-12);
        assert!(ratio(1.0, 0.0).is_nan());
        assert!((improvement_pct(10.0, 7.4) - 26.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", "y", &["a"]);
        t.row("r", vec![1.0, 2.0]);
    }
}
