//! `repro trace <cell>` / `repro explain <cell>`: run one benchmark cell
//! with full tracing on, and turn the event log into (a) Perfetto-loadable
//! timeline files and (b) a critical-path attribution report.
//!
//! The cells are the same mid-size Fig 7a / Fig 8a constructions the `bench`
//! target times (see [`crate::perf::cell`]). All trace bytes are built here
//! as strings; writing them to disk is the `repro` binary's job — the
//! workspace's designated I/O seam (DESIGN.md §4.11).

use crate::experiments::Setup;
use crate::perf;
use memres_core::prelude::*;
use memres_des::time::SimDuration;
use memres_trace::analyze::{attribute, stragglers, Attribution};
use memres_trace::{export, TimedEvent};
use std::fmt::Write as _;

/// One traced run of a benchmark cell.
pub struct TraceRun {
    pub cell: String,
    /// Full event log in emission order.
    pub events: Vec<TimedEvent>,
    /// Exact integer-nanosecond job-time attribution.
    pub attribution: Attribution,
    /// Simulated job time in seconds (from metrics, for cross-checking).
    pub job_s: f64,
}

impl TraceRun {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    pub fn chrome_json(&self) -> String {
        export::chrome_trace_json(&self.events)
    }

    /// Compact one-object-per-line event log.
    pub fn events_jsonl(&self) -> String {
        export::events_jsonl(&self.events)
    }
}

/// Run `cell` with full tracing; `None` when the name is not a known cell.
pub fn run_cell(setup: Setup, cell: &str) -> Option<TraceRun> {
    let (spec, cfg, gb) = perf::cell(setup, cell)?;
    let cfg = cfg.with_trace();
    let mut d = Driver::new(spec, cfg);
    let m = d.run_for_metrics(&gb.build(), gb.action());
    let events = d.take_trace();
    let attribution = attribute(&events);
    // The analyzer's contract: buckets partition the job window exactly.
    assert_eq!(
        attribution.sum(),
        attribution.job,
        "attribution buckets must sum to the job time"
    );
    Some(TraceRun {
        cell: cell.to_string(),
        events,
        attribution,
        job_s: m.job_time(),
    })
}

/// Human-readable attribution table plus the top-`k` straggler attempts —
/// the output of `repro explain <cell>`.
pub fn report(run: &TraceRun, k: usize) -> String {
    let att = &run.attribution;
    let mut out = String::new();
    let _ = writeln!(out, "== explain {} ==", run.cell);
    let _ = writeln!(
        out,
        "job time {:.3}s  ({} trace events)",
        att.job.as_secs_f64(),
        run.events.len()
    );
    let _ = writeln!(out, "{:>12} {:>12} {:>8}", "bucket", "seconds", "share");
    for (name, dur) in att.buckets() {
        let share = if att.job > SimDuration::ZERO {
            dur.as_nanos() as f64 / att.job.as_nanos() as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>12} {:>12.3} {:>7.1}%",
            name,
            dur.as_secs_f64(),
            share
        );
    }
    let _ = writeln!(
        out,
        "{:>12} {:>12.3} {:>7.1}%  (buckets partition the job window exactly)",
        "sum",
        att.sum().as_secs_f64(),
        if att.job > SimDuration::ZERO {
            100.0
        } else {
            0.0
        }
    );
    let top = stragglers(&run.events, k);
    if !top.is_empty() {
        let _ = writeln!(out, "top {} straggler attempts:", top.len());
        for a in &top {
            let _ = writeln!(
                out,
                "  task {:>5} attempt {} ({:>7}) on node {:>3}: {:.3}s  [start {:.3}s]",
                a.task,
                a.attempt,
                a.class.name(),
                a.node,
                a.dur().as_secs_f64(),
                a.start.as_secs_f64()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_cell_is_rejected() {
        assert!(run_cell(Setup::smoke(), "not_a_cell").is_none());
    }

    #[test]
    fn every_cell_attributes_exactly() {
        // The acceptance bar: on every cell, the attribution buckets sum to
        // the job time (exactly, in integer nanoseconds — stronger than the
        // 1e-6-seconds requirement). `run_cell` itself asserts the equality;
        // this drives it through all five cells at smoke scale.
        for name in perf::CELL_NAMES {
            let run = run_cell(Setup::smoke(), name).expect("suite cell");
            assert!(
                run.attribution.job > SimDuration::ZERO,
                "{name} job window empty"
            );
            assert!(!run.events.is_empty(), "{name} produced no events");
        }
    }

    #[test]
    fn traced_smoke_cell_attributes_exactly() {
        let run = run_cell(Setup::smoke(), "fig7a_400gb_ramdisk").expect("known cell");
        assert!(!run.events.is_empty(), "tracing must record events");
        let att = &run.attribution;
        assert_eq!(att.sum(), att.job);
        assert!(att.job > SimDuration::ZERO);
        // Metrics job time and trace job window agree (both simulated ns).
        assert!((att.job.as_secs_f64() - run.job_s).abs() < 1e-6);
        let text = report(&run, 5);
        assert!(text.contains("== explain fig7a_400gb_ramdisk =="));
        assert!(text.contains("compute"));
        assert!(text.contains("straggler"));
        // Exported forms are non-empty and structurally sane.
        assert!(run.chrome_json().starts_with("{\"traceEvents\":["));
        assert!(run.events_jsonl().lines().count() == run.events.len());
    }
}
