//! The metrics plane's determinism contract (DESIGN.md §4.16), from the
//! consumer's point of view: every export artifact of `repro report` is
//! byte-identical across executor thread counts and across repeated runs,
//! and the export formats themselves are golden-pinned — downstream
//! dashboards and the `repro diff` parser consume these bytes positionally,
//! so a format change must fail here, not in a user's monitoring stack.

use memres_bench::experiments::Setup;
use memres_bench::{perf, report};
use memres_core::prelude::*;
use memres_des::time::{SimDuration, SimTime};
use memres_metrics::{export, MetricsConfig, Recorder};

/// Run one metered smoke cell pinned to `n` executor threads and return
/// its (openmetrics, timeseries.csv) bytes.
fn artifacts_with_threads(cell: &str, n: usize) -> (String, String) {
    let (spec, cfg, gb) = perf::cell(Setup::smoke(), cell).expect("known cell");
    let cfg = cfg.with_metrics().with_executor_threads(n);
    let mut d = Driver::new(spec, cfg);
    let _ = d.run_for_metrics(&gb.build(), gb.action());
    let rec = d.recorder().expect("metrics enabled");
    (export::openmetrics(rec), export::timeseries_csv(rec))
}

#[test]
fn exports_byte_identical_across_thread_counts() {
    // Executor threads only parallelize real-partition UDF wall-clock; the
    // simulated event sequence — and therefore every sampled gauge — must
    // not notice. 1 thread vs 4 threads: byte-equal artifacts.
    let (om1, csv1) = artifacts_with_threads("fig7a_400gb_ramdisk", 1);
    let (om4, csv4) = artifacts_with_threads("fig7a_400gb_ramdisk", 4);
    assert_eq!(om1, om4, "OpenMetrics bytes differ across thread counts");
    assert_eq!(
        csv1, csv4,
        "timeseries.csv bytes differ across thread counts"
    );
    assert!(om1.ends_with("# EOF\n"));
}

#[test]
fn exports_byte_identical_across_double_runs() {
    // Same cell, two fresh processes' worth of state: all four artifacts
    // byte-equal (the shell-level twin of this check lives in check.sh).
    let a = report::run_cell(Setup::smoke(), "fig8a_600gb_ssd", None).expect("known cell");
    let b = report::run_cell(Setup::smoke(), "fig8a_600gb_ssd", None).expect("known cell");
    assert_eq!(a.openmetrics, b.openmetrics);
    assert_eq!(a.timeseries_csv, b.timeseries_csv);
    assert_eq!(a.dashboard_html, b.dashboard_html);
    assert_eq!(a.attrib_csv, b.attrib_csv);
}

/// A hand-fed recorder with two series (one labeled) — small enough to pin
/// the full export byte-for-byte.
fn sample_recorder() -> Recorder {
    let mut rec = Recorder::new(MetricsConfig {
        interval: SimDuration::from_millis(500),
        ring: 8,
    });
    for (i, t_ms) in [(0u32, 500u64), (1, 1000), (2, 1500)] {
        let t = SimTime(t_ms * 1_000_000);
        rec.sample("core_busy_slots", None, t, f64::from(i) * 2.0);
        rec.sample("net_rack_up_util", Some(0), t, 0.25 + f64::from(i) * 0.5);
        rec.tick();
    }
    rec
}

#[test]
fn openmetrics_golden() {
    let expected = "\
# HELP memres_net_rack_up_util Rack uplink utilization (allocated rate / capacity)\n\
# TYPE memres_net_rack_up_util gauge\n\
# UNIT memres_net_rack_up_util ratio\n\
memres_net_rack_up_util{rack=\"0\"} 0.25 0.5\n\
memres_net_rack_up_util{rack=\"0\"} 0.75 1\n\
memres_net_rack_up_util{rack=\"0\"} 1.25 1.5\n\
# HELP memres_core_busy_slots Occupied executor slots\n\
# TYPE memres_core_busy_slots gauge\n\
# UNIT memres_core_busy_slots slots\n\
memres_core_busy_slots 0 0.5\n\
memres_core_busy_slots 2 1\n\
memres_core_busy_slots 4 1.5\n\
# EOF\n";
    assert_eq!(
        export::openmetrics(&sample_recorder()),
        expected,
        "OpenMetrics exposition format changed"
    );
}

#[test]
fn timeseries_csv_golden() {
    let expected = "\
series,instance,t_s,value\n\
net_rack_up_util,0,0.5,0.25\n\
net_rack_up_util,0,1,0.75\n\
net_rack_up_util,0,1.5,1.25\n\
core_busy_slots,,0.5,0\n\
core_busy_slots,,1,2\n\
core_busy_slots,,1.5,4\n";
    assert_eq!(
        export::timeseries_csv(&sample_recorder()),
        expected,
        "timeseries.csv field order/format changed"
    );
}

#[test]
fn csv_golden_round_trips_through_diff() {
    // The pinned CSV is exactly what `repro diff` parses: a self-diff of
    // the golden recorder is clean, and a doubled copy diverges at the
    // first sample with the right series blamed.
    let rec = sample_recorder();
    let csv = export::timeseries_csv(&rec);
    let attrib = "bucket,seconds\njob,2\ncompute,2\n";
    let clean = report::diff_reports("a", &csv, attrib, "b", &csv, attrib, 0.05);
    assert!(!clean.regressed());
    assert!(clean.series.iter().all(|s| s.first_divergence_s.is_none()));

    let doubled = csv.replace("core_busy_slots,,1,2", "core_busy_slots,,1,9");
    let dirty = report::diff_reports("a", &csv, attrib, "b", &doubled, attrib, 0.05);
    let moved: Vec<_> = dirty
        .series
        .iter()
        .filter(|s| s.first_divergence_s.is_some())
        .collect();
    assert_eq!(moved.len(), 1);
    assert_eq!(moved[0].series, "core_busy_slots");
    assert_eq!(moved[0].first_divergence_s, Some(1.0));
}
