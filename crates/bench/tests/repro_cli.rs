//! Exit-code contract of the `repro` binary (built by Cargo for us via
//! `CARGO_BIN_EXE_repro`): 0 on a faithful reproduction, 1 when a simulated
//! job aborted, 2 on usage errors. CI scripts branch on these codes, so they
//! are part of the public interface, not an implementation detail.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn clean_target_exits_zero() {
    let out = repro(&["--smoke", "table1"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("table1"));
}

#[test]
fn aborted_job_exits_one() {
    let out = repro(&["--smoke", "faults-abort"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aborted_jobs"), "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("aborted after exhausting task retries"),
        "stderr: {stderr}"
    );
}

#[test]
fn unknown_target_exits_two_before_running_anything() {
    let out = repro(&["--smoke", "table1", "bogus-target"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target 'bogus-target'"));
    // Nothing ran: the valid target listed first produced no table.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("table1"));
}

#[test]
fn no_targets_exits_two_with_usage() {
    let out = repro(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: repro"));
}

#[test]
fn explain_prints_attribution_and_stragglers() {
    let out = repro(&["--smoke", "explain", "fig7a_400gb_ramdisk"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("== explain fig7a_400gb_ramdisk =="),
        "{stdout}"
    );
    assert!(stdout.contains("compute"), "{stdout}");
    assert!(stdout.contains("straggler"), "{stdout}");
}

#[test]
fn trace_writes_timeline_files() {
    let dir = std::env::temp_dir().join("memres-repro-trace-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "--smoke",
        "--json",
        dir.to_str().unwrap(),
        "trace",
        "fig8a_600gb_ssd",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tj = std::fs::read_to_string(dir.join("fig8a_600gb_ssd.trace.json")).expect("trace.json");
    assert!(tj.starts_with("{\"traceEvents\":["));
    let jl = std::fs::read_to_string(dir.join("fig8a_600gb_ssd.events.jsonl")).expect("jsonl");
    assert!(jl
        .lines()
        .next()
        .unwrap_or("")
        .contains("\"type\":\"job_start\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_cell_exits_two() {
    let out = repro(&["--smoke", "explain", "not_a_cell"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown cell 'not_a_cell'"));
}
