//! Regression corpus replay + differential-fuzzer self-tests
//! (DESIGN.md §4.13).
//!
//! Every `fuzz_corpus/*.spec` line is replayed on each `cargo test` run:
//! specs with `defect=0` are fixed regressions and must pass all oracles;
//! specs with `defect=1` carry a deliberately planted engine defect and
//! must keep *failing* — they prove the oracles can still see that bug
//! class.

use memres_bench::fuzz::{self, FuzzSpec};

const BUDGET: u64 = 20_000_000;

fn corpus_specs() -> Vec<(String, FuzzSpec)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz_corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "spec"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must not be empty");
    let mut specs = Vec::new();
    for path in files {
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&path).expect("readable spec file");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let spec =
                FuzzSpec::parse(line).unwrap_or_else(|e| panic!("{name}: bad spec line: {e}"));
            specs.push((name.clone(), spec));
        }
    }
    specs
}

#[test]
fn corpus_replays_deterministically() {
    for (name, spec) in corpus_specs() {
        let result = fuzz::check(&spec, BUDGET);
        if spec.defect {
            let f = result.expect_err(&format!(
                "{name}: defective spec passed — the oracles no longer catch this bug class"
            ));
            assert_eq!(
                f.oracle, "conserve",
                "{name}: wrong oracle fired: [{}] {}",
                f.oracle, f.message
            );
        } else if let Err(f) = result {
            panic!(
                "{name}: regression: [{}] {}\n  replay: {}",
                f.oracle,
                f.message,
                spec.replay_line()
            );
        }
    }
}

/// End-to-end acceptance for the harness itself: plant the rack-aggregation
/// byte-drop defect, watch the conserve oracle catch it, shrink it, and
/// confirm the minimized spec's replay line reproduces the same failure.
#[test]
fn injected_defect_is_caught_shrunk_and_replayable() {
    // Seed 1 generates an aggregating config (small threshold, multi-rack).
    let mut spec = FuzzSpec::generate(1);
    spec.defect = true;
    let failure = fuzz::check(&spec, BUDGET).expect_err("defect must trip an oracle");
    assert_eq!(failure.oracle, "conserve", "{}", failure.message);

    let (min, _spent) = fuzz::minimize(&spec, &failure, BUDGET, 64);
    assert!(min.rows <= spec.rows && min.workers <= spec.workers);
    assert!(min.defect, "the defect itself must survive minimization");

    // The printed replay line is self-contained: parse it back and fail again.
    let line = min.replay_line();
    let encoded = line
        .split_once("--replay '")
        .and_then(|(_, rest)| rest.strip_suffix('\''))
        .expect("replay line embeds a quoted spec");
    let replayed = FuzzSpec::parse(encoded).expect("replay spec parses");
    assert_eq!(replayed, min);
    let again = fuzz::check(&replayed, BUDGET).expect_err("replay reproduces the failure");
    assert_eq!(again.oracle, "conserve");
}

/// Byte conservation exactly at and just past the rack-aggregation
/// threshold. tiny(12) stripes 12 workers over 2 racks: per_rack = 6, so
/// per_rack² = 36. The engine aggregates only when per_rack² is *strictly*
/// greater than the threshold: 36 keeps per-node fetch flows, 35 folds
/// them into rack aggregates. Both sides of the boundary must conserve
/// shuffle bytes and compute identical output.
#[test]
fn conservation_holds_across_the_rack_agg_boundary() {
    let base = {
        let mut s = FuzzSpec::generate(0);
        s.workers = 12;
        s.racks = 2;
        s.cores = 2;
        s.store = fuzz::StoreKind::Ram;
        s.input = fuzz::InputKind::Hdfs;
        s.sched = fuzz::SchedKind::Fifo;
        s.legacy = false;
        s.threads = 1;
        s.trace = false;
        s.elb = false;
        s.cad = false;
        s.jitter_pct = 0;
        s.wl = fuzz::WorkloadKind::GroupBy;
        s.rows = 600;
        s.keys = 37;
        s.parts = 8;
        s.reducers = 5;
        s.faults = 0;
        s.defect = false;
        s
    };
    let mut counts = Vec::new();
    // At the threshold (36: per-node flows), just past it (35: aggregated),
    // and with aggregation disabled outright.
    for agg in [36u32, 35, u32::MAX] {
        let mut spec = base.clone();
        spec.agg = agg;
        if let Err(f) = fuzz::check(&spec, BUDGET) {
            panic!("agg={agg}: [{}] {}", f.oracle, f.message);
        }
        let mut d = memres_core::Driver::new(spec.cluster(), spec.config());
        let (rdd, action) = spec.build_rdd();
        let (out, metrics) = d.run(&rdd, action);
        fuzz::check_conservation(&metrics)
            .unwrap_or_else(|e| panic!("agg={agg}: bytes not conserved: {e}"));
        counts.push(out.count);
    }
    assert_eq!(counts[0], counts[1], "aggregation changed job output");
    assert_eq!(counts[0], counts[2], "aggregation changed job output");
}

/// A short clean sweep: the generator must produce specs that pass all
/// oracles (anything else is either an engine bug or a fuzzer bug — both
/// block the merge).
#[test]
fn clean_seeds_pass_all_oracles() {
    let outcomes = fuzz::run_range(0, 8, BUDGET, false, |_| {});
    for o in &outcomes {
        if let Some(f) = &o.failure {
            panic!(
                "seed {}: [{}] {}\n  replay: {}",
                o.seed,
                f.oracle,
                f.message,
                o.spec.replay_line()
            );
        }
    }
}
