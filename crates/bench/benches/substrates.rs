//! Microbenchmarks of the substrate hot paths: event calendar, processor
//! sharing, max-min fair allocation, SSD fluid model.

use criterion::{criterion_group, criterion_main, Criterion};
use memres_des::{Bytes, EventQueue, PsResource, SimTime};
use memres_net::FlowNet;
use memres_storage::{Device, Op, Ssd, SsdConfig};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime(i * 7919 % 10_000), i);
            }
            while q.pop().is_some() {}
        })
    });
}

/// 1e6-event push/pop through both queue implementations: the calendar
/// (default) against the legacy binary heap it replaced. Pushes use a
/// pseudo-random spread over a wide horizon, the access pattern the
/// calendar's bucket sizing has to absorb.
fn bench_event_queue_1m(c: &mut Criterion) {
    const N: u64 = 1_000_000;
    c.bench_function("calendar_push_pop_1m", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..N {
                q.push(SimTime(i.wrapping_mul(6364136223846793005) % (N * 64)), i);
            }
            while q.pop().is_some() {}
        })
    });
    c.bench_function("heap_push_pop_1m", |b| {
        b.iter(|| {
            let mut q = EventQueue::heap();
            for i in 0..N {
                q.push(SimTime(i.wrapping_mul(6364136223846793005) % (N * 64)), i);
            }
            while q.pop().is_some() {}
        })
    });
}

fn bench_ps(c: &mut Criterion) {
    c.bench_function("ps_resource_1k_jobs", |b| {
        b.iter(|| {
            let mut ps = PsResource::new(1e9);
            for i in 0..1000u32 {
                ps.add(SimTime::ZERO, 1e6 + i as f64, i);
            }
            let mut n = 0;
            while let Some(t) = ps.next_completion() {
                n += ps.poll(t).len();
            }
            assert_eq!(n, 1000);
        })
    });
}

fn bench_flownet(c: &mut Criterion) {
    c.bench_function("flownet_200_flows_waterfill", |b| {
        b.iter(|| {
            let mut net: FlowNet<u32> = FlowNet::new();
            let links: Vec<_> = (0..50).map(|_| net.add_link(1e9)).collect();
            for i in 0..200u32 {
                let path = vec![links[(i as usize) % 50], links[(i as usize + 7) % 50]];
                let f = net.open_flow(SimTime::ZERO, path, true);
                net.push_chunk(SimTime::ZERO, f, Bytes(1e6), i);
            }
            let mut n = 0;
            while let Some(t) = net.next_event() {
                n += net.poll(t).len();
            }
            assert_eq!(n, 200);
        })
    });
}

fn bench_ssd(c: &mut Criterion) {
    c.bench_function("ssd_sustained_writes", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(SsdConfig::test_small());
            for i in 0..100u64 {
                ssd.submit(SimTime(i * 1_000_000), Op::Write, 40.0, i);
            }
            while let Some(t) = ssd.next_event() {
                if ssd.poll(t).is_empty() && ssd.queue_depth() == 0 {
                    break;
                }
            }
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_1m,
    bench_ps,
    bench_flownet,
    bench_ssd
);
criterion_main!(benches);
