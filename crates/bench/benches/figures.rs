//! Criterion benchmarks: one micro-scale representative run per paper
//! figure, so `cargo bench` exercises every experiment path and tracks the
//! engine's own performance over time. (The statistically meaningful
//! paper-scale numbers come from the `repro` binary — these benches measure
//! the *harness*, keeping each iteration in the tens of milliseconds.)

use criterion::{criterion_group, criterion_main, Criterion};
use memres_cluster::tiny;
use memres_core::prelude::*;
use memres_des::time::SimDuration;
use memres_des::units::MB;
use memres_workloads::{Grep, GroupBy, LogisticRegression};

fn run_one(cfg: EngineConfig, rdd: &Rdd, action: Action) -> f64 {
    let mut d = Driver::new(tiny(4), cfg);
    d.run_for_metrics(rdd, action).job_time()
}

fn base() -> EngineConfig {
    EngineConfig::default()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig 5a/5b: input from HDFS vs Lustre.
    let grep = Grep::new(256.0 * MB);
    g.bench_function("fig5a_grep_hdfs", |b| {
        b.iter(|| run_one(base(), &grep.build(), grep.action()))
    });
    g.bench_function("fig5a_grep_lustre", |b| {
        b.iter(|| {
            run_one(
                EngineConfig {
                    input: InputSource::Lustre,
                    ..base()
                },
                &grep.build(),
                grep.action(),
            )
        })
    });
    let lr = LogisticRegression::new(64.0 * MB);
    g.bench_function("fig5b_lr_iteration", |b| {
        b.iter(|| {
            let (points, iter, action) = lr.build();
            run_one(base(), &iter(&points), action)
        })
    });

    // Fig 7 / Fig 8: shuffle-store strategies.
    let gb = GroupBy::new(512.0 * MB).with_reducers(8);
    for (name, shuffle) in [
        (
            "fig7_store_ramdisk",
            ShuffleStore::Local(StoreDevice::RamDisk),
        ),
        ("fig7_store_lustre_local", ShuffleStore::LustreLocal),
        ("fig7_store_lustre_shared", ShuffleStore::LustreShared),
        ("fig8_store_ssd", ShuffleStore::Local(StoreDevice::Ssd)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_one(EngineConfig { shuffle, ..base() }, &gb.build(), gb.action()))
        });
    }

    // Fig 9/10: delay scheduling and locality.
    g.bench_function("fig9_grep_delay_sched", |b| {
        b.iter(|| {
            run_one(
                base().with_delay_scheduling(SimDuration::from_secs(3)),
                &grep.build(),
                grep.action(),
            )
        })
    });

    // Fig 12: heterogeneous speeds + FIFO greedy.
    g.bench_function("fig12_skewed_groupby", |b| {
        b.iter(|| {
            run_one(
                EngineConfig {
                    speed_sigma: 0.4,
                    ..base()
                },
                &gb.build(),
                gb.action(),
            )
        })
    });

    // Fig 13/14 + baseline: the optimizations.
    g.bench_function("fig13_elb", |b| {
        b.iter(|| {
            run_one(
                EngineConfig {
                    speed_sigma: 0.4,
                    ..base()
                }
                .with_elb(),
                &gb.build(),
                gb.action(),
            )
        })
    });
    g.bench_function("fig14_cad_ssd", |b| {
        b.iter(|| {
            run_one(
                EngineConfig {
                    shuffle: ShuffleStore::Local(StoreDevice::Ssd),
                    ..base()
                }
                .with_cad(),
                &gb.build(),
                gb.action(),
            )
        })
    });
    g.bench_function("late_speculation", |b| {
        b.iter(|| {
            run_one(
                EngineConfig {
                    speed_sigma: 0.4,
                    ..base()
                }
                .with_speculation(),
                &gb.build(),
                gb.action(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
