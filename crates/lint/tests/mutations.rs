//! Seeded-mutation fixtures: prove the lint engine *would* catch the
//! regressions it exists for, by breaking real workspace files in memory
//! and asserting the expected rule fires.
//!
//! Each test loads the actual sources (tests are exempt from the io rule;
//! the lint crate never ships this code), applies one surgical mutation,
//! and runs the same checks `memres-lint` runs in CI. If a refactor ever
//! blinds a rule — a renamed dispatch fn, a parser that stops seeing match
//! arms — these tests fail before the blind spot reaches main.

use memres_lint::{rules_for, scan_source, xfile};
use std::collections::HashMap;
use std::path::PathBuf;

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(root().join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

/// Run the cross-file checks against the real tree with `overrides`
/// substituted for specific files.
fn xfile_with(overrides: &HashMap<&str, String>) -> Vec<memres_lint::Diagnostic> {
    let root = root();
    let mut load = |rel: &str| -> Option<String> {
        if let Some(s) = overrides.get(rel) {
            return Some(s.clone());
        }
        std::fs::read_to_string(root.join(rel)).ok()
    };
    xfile::check_all(&mut load)
}

#[test]
fn unmutated_tree_is_clean() {
    let d = xfile_with(&HashMap::new());
    assert!(d.is_empty(), "cross-file checks on the real tree: {d:?}");
}

// ------------------------------------------------- exhaustive-dispatch

/// Removing an `Ev` match arm from the engine dispatch must fire
/// `exhaustive-dispatch` naming the orphaned variant. The mutation renames
/// every reference to one variant inside `fn handle` to another existing
/// variant — exactly what a careless merge produces.
#[test]
fn removed_ev_match_arm_fires_exhaustive_dispatch() {
    let world = read("crates/core/src/world.rs");
    let handle_at = world.find("fn handle").expect("fn handle in world.rs");
    // `SpeedResample` has a single dispatch arm; retarget it.
    let (head, body) = world.split_at(handle_at);
    assert!(
        body.contains("Ev::SpeedResample"),
        "mutation target lost; pick another variant"
    );
    let mutated = format!(
        "{head}{}",
        body.replace("Ev::SpeedResample", "Ev::Dispatch")
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/core/src/world.rs", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter()
            .any(|d| d.rule == xfile::RULE_DISPATCH && d.message.contains("Ev::SpeedResample")),
        "{d:?}"
    );
}

/// A `_ =>` wildcard in the dispatch would swallow future variants; the
/// rule must reject it even when every current variant is still handled.
#[test]
fn wildcard_dispatch_arm_fires_exhaustive_dispatch() {
    let world = read("crates/core/src/world.rs");
    let handle_at = world.find("fn handle").expect("fn handle in world.rs");
    let brace = world[handle_at..].find('{').expect("handle body") + handle_at + 1;
    let mutated = format!(
        "{}\n        #[allow(unreachable_patterns)]\n        let _catch = |e: &Ev| match e {{ _ => () }};\n{}",
        &world[..brace],
        &world[brace..]
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/core/src/world.rs", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter()
            .any(|d| d.rule == xfile::RULE_DISPATCH && d.message.contains("wildcard")),
        "{d:?}"
    );
}

// ---------------------------------------------------- exhaustive-trace

/// Dropping a `TraceEvent` payload arm from the exporter must fire
/// `exhaustive-trace`: both exporters would silently emit that event with
/// no fields.
#[test]
fn missing_exporter_case_fires_exhaustive_trace() {
    let export = read("crates/trace/src/export.rs");
    let payload_at = export.find("fn payload").expect("fn payload in export.rs");
    let (head, body) = export.split_at(payload_at);
    // Pick the first variant referenced in the payload dispatch.
    let vref = body
        .find("TraceEvent::")
        .map(|p| {
            let rest = &body[p + "TraceEvent::".len()..];
            let end = rest
                .find(|c: char| !c.is_alphanumeric() && c != '_')
                .unwrap_or(rest.len());
            rest[..end].to_string()
        })
        .expect("a TraceEvent reference in fn payload");
    let mutated = format!(
        "{head}{}",
        body.replacen(&format!("TraceEvent::{vref}"), "TraceEvent::__Gone", 1)
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/trace/src/export.rs", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter().any(|d| d.rule == xfile::RULE_TRACE
            && d.message.contains(&format!("TraceEvent::{vref}"))
            && d.message.contains("payload")),
        "mutated away {vref}: {d:?}"
    );
}

/// A new enum variant with no exporter arms anywhere must be reported in
/// both dispatch points.
#[test]
fn new_trace_variant_fires_in_both_exporters() {
    let lib = read("crates/trace/src/lib.rs");
    let enum_at = lib.find("pub enum TraceEvent").expect("TraceEvent enum");
    let brace = lib[enum_at..].find('{').expect("enum body") + enum_at + 1;
    let mutated = format!(
        "{}\n    PhantomNever {{ node: u32 }},\n{}",
        &lib[..brace],
        &lib[brace..]
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/trace/src/lib.rs", mutated);
    let d = xfile_with(&overrides);
    let hits: Vec<_> = d
        .iter()
        .filter(|d| d.rule == xfile::RULE_TRACE && d.message.contains("PhantomNever"))
        .collect();
    assert_eq!(hits.len(), 2, "kind + payload: {d:?}");
}

// --------------------------------------------------------- cell-smoke

/// Deleting a repro smoke line from check.sh must fire `cell-smoke` for
/// that family.
#[test]
fn dropped_smoke_family_fires_cell_smoke() {
    let check = read("scripts/check.sh");
    let mutated: String = check
        .lines()
        .map(|l| {
            if l.contains("repro") && l.contains("fuzz") && !l.trim_start().starts_with('#') {
                "true # smoke deleted by mutation test".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let mut overrides = HashMap::new();
    overrides.insert("scripts/check.sh", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter()
            .any(|d| d.rule == xfile::RULE_CELL_SMOKE && d.message.contains("`fuzz`")),
        "{d:?}"
    );
}

/// Renaming the pinned byte-determinism cell out from under check.sh must
/// fire `cell-smoke`.
#[test]
fn stale_pinned_cell_fires_cell_smoke() {
    let check = read("scripts/check.sh");
    assert!(check.contains("cell=\""), "check.sh no longer pins a cell");
    let mutated = {
        let pos = check.find("cell=\"").unwrap() + "cell=\"".len();
        let close = check[pos..].find('"').unwrap() + pos;
        format!("{}fig0_nonexistent{}", &check[..pos], &check[close..])
    };
    let mut overrides = HashMap::new();
    overrides.insert("scripts/check.sh", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter()
            .any(|d| d.rule == xfile::RULE_CELL_SMOKE && d.message.contains("fig0_nonexistent")),
        "{d:?}"
    );
}

// -------------------------------------------------- exhaustive-metrics

/// Dropping a catalog series from one exporter list must fire
/// `exhaustive-metrics` naming the dropped series and the blind exporter —
/// the sampler would keep recording a gauge that silently never ships.
#[test]
fn dropped_exporter_series_fires_exhaustive_metrics() {
    let export = read("crates/metrics/src/export.rs");
    let csv_at = export.find("CSV_SERIES").expect("CSV_SERIES in export.rs");
    let (head, body) = export.split_at(csv_at);
    assert!(
        body.contains("\"storage_ssd_gc_nodes\""),
        "mutation target lost; pick another series"
    );
    let mutated = format!(
        "{head}{}",
        body.replacen("\"storage_ssd_gc_nodes\",", "", 1)
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/metrics/src/export.rs", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter().any(|d| d.rule == xfile::RULE_METRICS
            && d.message.contains("storage_ssd_gc_nodes")
            && d.message.contains("CSV_SERIES")),
        "{d:?}"
    );
}

/// A series added to the catalog but taught to neither exporter must be
/// reported against both lists.
#[test]
fn new_catalog_series_fires_in_both_exporters() {
    let catalog = read("crates/metrics/src/catalog.rs");
    let decl = catalog.find("ALL_NAMES").expect("ALL_NAMES in catalog.rs");
    // Skip past the `=` so the `[&str; N]` type brackets don't match.
    let eq = catalog[decl..].find('=').expect("array assignment") + decl;
    let open = catalog[eq..].find('[').expect("array open") + eq + 1;
    let mutated = format!(
        "{}\n    \"phantom_never_gauge\",{}",
        &catalog[..open],
        &catalog[open..]
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/metrics/src/catalog.rs", mutated);
    let d = xfile_with(&overrides);
    let hits: Vec<_> = d
        .iter()
        .filter(|d| d.rule == xfile::RULE_METRICS && d.message.contains("phantom_never_gauge"))
        .collect();
    assert_eq!(hits.len(), 2, "OPENMETRICS_SERIES + CSV_SERIES: {d:?}");
}

/// The reverse drift — an exporter entry with no catalog series behind it —
/// must fire against the catalog.
#[test]
fn orphan_exporter_entry_fires_exhaustive_metrics() {
    let export = read("crates/metrics/src/export.rs");
    let decl = export
        .find("OPENMETRICS_SERIES")
        .expect("OPENMETRICS_SERIES in export.rs");
    let eq = export[decl..].find('=').expect("array assignment") + decl;
    let open = export[eq..].find('[').expect("array open") + eq + 1;
    let mutated = format!(
        "{}\n    \"ghost_series\",{}",
        &export[..open],
        &export[open..]
    );
    let mut overrides = HashMap::new();
    overrides.insert("crates/metrics/src/export.rs", mutated);
    let d = xfile_with(&overrides);
    assert!(
        d.iter().any(|d| d.rule == xfile::RULE_METRICS
            && d.message.contains("ghost_series")
            && d.message.contains("ALL_NAMES")),
        "{d:?}"
    );
}

// ---------------------------------------------------------- event-past

/// Stripping the `.max(now)` clamp from a real scheduling site in the
/// engine must fire `event-past` on that file. (`Simulation::schedule`
/// would still pass statically — its strict assert `time >= self.now` is a
/// guard the rule accepts — so the fixture declamps `drain_outbox`, which
/// has no other proof.)
#[test]
fn bare_schedule_timestamp_fires_event_past() {
    let rel = "crates/des/src/sim.rs";
    let src = read(rel);
    let clamped = "self.queue.push(t.max(self.now), e)";
    assert!(
        src.contains(clamped),
        "Simulation::drain_outbox no longer clamps; update this fixture"
    );
    let mutated = src.replacen(clamped, "self.queue.push(t, e)", 1);
    let rules = rules_for(rel);
    assert!(rules.event_past, "sim.rs must carry the event-past rule");
    let d = scan_source(rel, &mutated, rules);
    assert!(
        d.iter().any(|d| d.rule == "event-past"),
        "declamped push must fire: {d:?}"
    );
    // And the unmutated file stays clean — the clamp is the whole fix.
    let d = scan_source(rel, &src, rules);
    assert!(d.is_empty(), "real sim.rs must lint clean: {d:?}");
}

/// Same mutation in the engine's retry arm: deleting the justification
/// comment (the `lint:allow`) must re-expose the raw timestamp.
#[test]
fn deleted_allow_reexposes_event_past() {
    let rel = "crates/core/src/world.rs";
    let src = read(rel);
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains("lint:allow(event-past)"))
        .collect::<Vec<_>>()
        .join("\n");
    let d = scan_source(rel, &mutated, rules_for(rel));
    assert!(
        d.iter().any(|d| d.rule == "event-past"),
        "world.rs has event-past escapes that an allow justifies; deleting \
         them must fire: {d:?}"
    );
}
