//! The linter's own CI gate, as a test: the real workspace must scan
//! clean. `scripts/check.sh` runs the binary too, but this keeps
//! `cargo test` self-sufficient — a violating commit fails the test suite
//! even on machines that never run the full gate.

use memres_lint::{rules_for, scan_source, xfile, Diagnostic};
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[test]
fn workspace_lints_clean() {
    let root = root();
    let mut files = Vec::new();
    for top in ["crates", "src", "examples"] {
        walk(&root.join(top), &root, &mut files);
    }
    files.sort();
    assert!(
        files.iter().any(|f| f.ends_with("core/src/world.rs")),
        "walk found no engine sources — wrong root? {root:?}"
    );

    let mut diags: Vec<Diagnostic> = Vec::new();
    for rel in &files {
        let rules = rules_for(rel);
        if rules.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel)).expect(rel);
        diags.extend(scan_source(rel, &src, rules));
    }
    let mut load = |rel: &str| std::fs::read_to_string(root.join(rel)).ok();
    diags.extend(xfile::check_all(&mut load));

    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
