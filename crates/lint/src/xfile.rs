//! Cross-file exhaustiveness checks (lint v2, DESIGN.md §4.15).
//!
//! The per-file rules cannot see schema drift that spans files: an `Ev`
//! variant added to the engine's event enum but never dispatched, a
//! `TraceEvent` variant missing from one of the two exporters, or a repro
//! cell family that quietly lost its CI smoke. These checks read the
//! *relationship* between files:
//!
//! * **`exhaustive-dispatch`** — every variant of `enum Ev` in
//!   `crates/core/src/world.rs` is referenced (`Ev::Variant`) inside the
//!   engine's `fn handle` body, and the dispatch match carries no `_ =>`
//!   wildcard arm that could swallow new variants silently.
//! * **`exhaustive-trace`** — every variant of `enum TraceEvent` in
//!   `crates/trace/src/lib.rs` appears in both exporter dispatch points:
//!   `fn kind` (the events.jsonl `type` field) and `fn payload` in
//!   `crates/trace/src/export.rs` (the argument body both the Perfetto and
//!   the events.jsonl exporter embed).
//! * **`cell-smoke`** — every repro cell family with a checked-in baseline
//!   (`bench`, `scale`, `faults`, `tenants`, `trace`, `fuzz`, `report`,
//!   `diff`) is invoked by `scripts/check.sh`, and the trace cell the gate
//!   pins is still a member of `CELL_NAMES` in `crates/bench/src/perf.rs`.
//! * **`exhaustive-metrics`** — every series name in the metrics catalog
//!   (`ALL_NAMES` in `crates/metrics/src/catalog.rs`) appears in both
//!   exporter series lists (`OPENMETRICS_SERIES` and `CSV_SERIES` in
//!   `crates/metrics/src/export.rs`), and vice versa: a gauge the sampler
//!   records but an exporter silently drops (or an exporter entry with no
//!   catalog definition behind it) fails the gate.
//!
//! Input is a loader callback (`&mut dyn FnMut(&str) -> Option<String>`)
//! mapping a workspace-relative path to file contents, so the checks run
//! identically against the real tree and against seeded-mutation fixtures
//! in tests.

use crate::lex::{ident_is, lex, punct_is, Tok, TokKind};
use crate::Diagnostic;

pub const RULE_DISPATCH: &str = "exhaustive-dispatch";
pub const RULE_TRACE: &str = "exhaustive-trace";
pub const RULE_CELL_SMOKE: &str = "cell-smoke";
pub const RULE_METRICS: &str = "exhaustive-metrics";

pub const XFILE_RULES: [&str; 4] = [RULE_DISPATCH, RULE_TRACE, RULE_CELL_SMOKE, RULE_METRICS];

const WORLD: &str = "crates/core/src/world.rs";
const TRACE_LIB: &str = "crates/trace/src/lib.rs";
const TRACE_EXPORT: &str = "crates/trace/src/export.rs";
const PERF: &str = "crates/bench/src/perf.rs";
const CHECK_SH: &str = "scripts/check.sh";
const METRICS_CATALOG: &str = "crates/metrics/src/catalog.rs";
const METRICS_EXPORT: &str = "crates/metrics/src/export.rs";

/// The repro cell families `scripts/check.sh` must smoke (each has a
/// checked-in baseline or golden artifact the gate compares against).
pub const SMOKED_FAMILIES: [&str; 8] = [
    "bench", "scale", "faults", "tenants", "trace", "fuzz", "report", "diff",
];

/// Run every cross-file check, loading file contents through `load`.
/// A file the loader cannot produce is itself a finding — the checks must
/// not silently pass because a rename hid their subject.
pub fn check_all(load: &mut dyn FnMut(&str) -> Option<String>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_dispatch(load, &mut diags);
    check_trace(load, &mut diags);
    check_cell_smoke(load, &mut diags);
    check_metrics(load, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    diags
}

fn missing_file(file: &str, rule: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line: 1,
        col: 1,
        rule: rule.to_string(),
        message: format!("`{file}` not found — the {rule} check lost its subject"),
    }
}

fn diag(file: &str, line: u32, rule: &str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        col: 1,
        rule: rule.to_string(),
        message,
    }
}

// ------------------------------------------------------------ enum model

/// A parsed enum: variant names with their declaration lines.
struct EnumDef {
    line: u32,
    variants: Vec<(String, u32)>,
}

/// Find `enum <name> { … }` in the token stream and collect its variants:
/// identifiers at brace depth 1 whose previous significant token is `{`,
/// `,` or a variant-closing `}` / `)`.
fn parse_enum(toks: &[Tok], name: &str) -> Option<EnumDef> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if ident_is(&toks[i], "enum") && ident_is(&toks[i + 1], name) {
            break;
        }
        i += 1;
    }
    if i + 1 >= toks.len() {
        return None;
    }
    let line = toks[i].line;
    // Advance to the opening `{` (skipping generics, which Ev/TraceEvent
    // do not use, but cheap to tolerate).
    let mut j = i + 2;
    while j < toks.len() && !punct_is(&toks[j], '{') {
        j += 1;
    }
    let mut variants = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut expect_variant = false;
    while j < toks.len() {
        let t = &toks[j];
        match &t.kind {
            TokKind::Punct('{') => {
                brace += 1;
                if brace == 1 {
                    expect_variant = true;
                }
            }
            TokKind::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                if brace == 1 {
                    expect_variant = false; // `,` after the body re-arms
                }
            }
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct(',') if brace == 1 && paren == 0 => expect_variant = true,
            TokKind::Punct('#') if brace == 1 => {
                // Variant attribute: skip the `[ … ]` group.
                let mut depth = 0i32;
                j += 1;
                while j < toks.len() {
                    if punct_is(&toks[j], '[') {
                        depth += 1;
                    } else if punct_is(&toks[j], ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            TokKind::Ident(id) if brace == 1 && paren == 0 && expect_variant => {
                variants.push((id.clone(), t.line));
                expect_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    Some(EnumDef { line, variants })
}

/// Token span (exclusive end) of the body of `fn <name>`: from its opening
/// `{` to the matching `}`.
fn fn_body_span(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if ident_is(&toks[i], "fn") && ident_is(&toks[i + 1], name) {
            break;
        }
        i += 1;
    }
    if i + 1 >= toks.len() {
        return None;
    }
    let mut j = i + 2;
    while j < toks.len() && !punct_is(&toks[j], '{') {
        j += 1;
    }
    let start = j;
    let mut depth = 0i32;
    while j < toks.len() {
        if punct_is(&toks[j], '{') {
            depth += 1;
        } else if punct_is(&toks[j], '}') {
            depth -= 1;
            if depth == 0 {
                return Some((start, j + 1));
            }
        }
        j += 1;
    }
    None
}

/// Variant names referenced as `<enum_name> :: <Variant>` within `span`.
fn referenced_variants(toks: &[Tok], span: (usize, usize), enum_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (s, e) = span;
    let mut j = s;
    while j + 3 < e {
        if ident_is(&toks[j], enum_name)
            && punct_is(&toks[j + 1], ':')
            && punct_is(&toks[j + 2], ':')
        {
            if let TokKind::Ident(v) = &toks[j + 3].kind {
                out.push(v.clone());
            }
        }
        j += 1;
    }
    out
}

/// Does `span` contain a match wildcard arm (`_ =>`)?
fn has_wildcard_arm(toks: &[Tok], span: (usize, usize)) -> bool {
    let (s, e) = span;
    (s..e.saturating_sub(2)).any(|j| {
        ident_is(&toks[j], "_") && punct_is(&toks[j + 1], '=') && punct_is(&toks[j + 2], '>')
    })
}

// ---------------------------------------------------------------- checks

fn check_dispatch(load: &mut dyn FnMut(&str) -> Option<String>, diags: &mut Vec<Diagnostic>) {
    let Some(src) = load(WORLD) else {
        diags.push(missing_file(WORLD, RULE_DISPATCH));
        return;
    };
    let toks = lex(&src).tokens;
    let Some(ev) = parse_enum(&toks, "Ev") else {
        diags.push(diag(
            WORLD,
            1,
            RULE_DISPATCH,
            "`enum Ev` not found in world.rs".to_string(),
        ));
        return;
    };
    let Some(body) = fn_body_span(&toks, "handle") else {
        diags.push(diag(
            WORLD,
            1,
            RULE_DISPATCH,
            "`fn handle` (the engine event dispatch) not found in world.rs".to_string(),
        ));
        return;
    };
    let referenced = referenced_variants(&toks, body, "Ev");
    for (v, line) in &ev.variants {
        if !referenced.iter().any(|r| r == v) {
            diags.push(diag(
                WORLD,
                *line,
                RULE_DISPATCH,
                format!(
                    "event variant `Ev::{v}` is never referenced in the engine's \
                     `fn handle` dispatch — dead event or missing arm"
                ),
            ));
        }
    }
    if has_wildcard_arm(&toks, body) {
        diags.push(diag(
            WORLD,
            ev.line,
            RULE_DISPATCH,
            "the engine dispatch contains a `_ =>` wildcard arm: new `Ev` \
             variants would be swallowed silently instead of failing to compile"
                .to_string(),
        ));
    }
}

fn check_trace(load: &mut dyn FnMut(&str) -> Option<String>, diags: &mut Vec<Diagnostic>) {
    let Some(lib_src) = load(TRACE_LIB) else {
        diags.push(missing_file(TRACE_LIB, RULE_TRACE));
        return;
    };
    let Some(export_src) = load(TRACE_EXPORT) else {
        diags.push(missing_file(TRACE_EXPORT, RULE_TRACE));
        return;
    };
    let lib_toks = lex(&lib_src).tokens;
    let export_toks = lex(&export_src).tokens;
    let Some(te) = parse_enum(&lib_toks, "TraceEvent") else {
        diags.push(diag(
            TRACE_LIB,
            1,
            RULE_TRACE,
            "`enum TraceEvent` not found in trace/lib.rs".to_string(),
        ));
        return;
    };
    let Some(kind_body) = fn_body_span(&lib_toks, "kind") else {
        diags.push(diag(
            TRACE_LIB,
            1,
            RULE_TRACE,
            "`fn kind` (the events.jsonl `type` dispatch) not found in trace/lib.rs".to_string(),
        ));
        return;
    };
    let Some(payload_body) = fn_body_span(&export_toks, "payload") else {
        diags.push(diag(
            TRACE_EXPORT,
            1,
            RULE_TRACE,
            "`fn payload` (the exporter field dispatch) not found in trace/export.rs".to_string(),
        ));
        return;
    };
    let in_kind = referenced_variants(&lib_toks, kind_body, "TraceEvent");
    let in_payload = referenced_variants(&export_toks, payload_body, "TraceEvent");
    for (v, line) in &te.variants {
        if !in_kind.iter().any(|r| r == v) {
            diags.push(diag(
                TRACE_LIB,
                *line,
                RULE_TRACE,
                format!(
                    "trace variant `TraceEvent::{v}` has no `fn kind` arm: it would \
                     reach events.jsonl and Perfetto with no stable type name"
                ),
            ));
        }
        if !in_payload.iter().any(|r| r == v) {
            diags.push(diag(
                TRACE_LIB,
                *line,
                RULE_TRACE,
                format!(
                    "trace variant `TraceEvent::{v}` has no `fn payload` arm in \
                     export.rs: both exporters would drop its fields"
                ),
            ));
        }
    }
    for (name, body, file, toks) in [
        ("kind", kind_body, TRACE_LIB, &lib_toks),
        ("payload", payload_body, TRACE_EXPORT, &export_toks),
    ] {
        if has_wildcard_arm(toks, body) {
            diags.push(diag(
                file,
                te.line,
                RULE_TRACE,
                format!(
                    "`fn {name}` contains a `_ =>` wildcard arm: new TraceEvent \
                     variants would be exported silently wrong"
                ),
            ));
        }
    }
}

/// Extract the string literals of a `const <decl>: [&str; N] = [ … ]`
/// array. (The lexer deliberately drops strings, so this is a tiny
/// dedicated scan: find the declaration, then collect `"…"` up to the
/// closing `]`.) Returns the literals plus the declaration's 1-based line.
fn literal_str_list(src: &str, decl_name: &str) -> (Vec<String>, u32) {
    let Some(decl) = src.find(decl_name) else {
        return (Vec::new(), 1);
    };
    let line = src[..decl].lines().count() as u32;
    // Skip past the `=` so the type's `[&str; N]` brackets don't match.
    let Some(eq_rel) = src[decl..].find('=') else {
        return (Vec::new(), line);
    };
    let Some(open_rel) = src[decl + eq_rel..].find('[') else {
        return (Vec::new(), line);
    };
    let tail = &src[decl + eq_rel + open_rel..];
    let end = tail.find(']').unwrap_or(tail.len());
    let body = &tail[..end];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(close) = after.find('"') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    (out, line)
}

fn cell_names(src: &str) -> Vec<String> {
    literal_str_list(src, "CELL_NAMES").0
}

fn check_metrics(load: &mut dyn FnMut(&str) -> Option<String>, diags: &mut Vec<Diagnostic>) {
    let Some(catalog_src) = load(METRICS_CATALOG) else {
        diags.push(missing_file(METRICS_CATALOG, RULE_METRICS));
        return;
    };
    let Some(export_src) = load(METRICS_EXPORT) else {
        diags.push(missing_file(METRICS_EXPORT, RULE_METRICS));
        return;
    };
    let (catalog, catalog_line) = literal_str_list(&catalog_src, "ALL_NAMES");
    if catalog.is_empty() {
        diags.push(diag(
            METRICS_CATALOG,
            1,
            RULE_METRICS,
            "`ALL_NAMES` not found (or empty) in metrics/catalog.rs".to_string(),
        ));
        return;
    }
    for list_name in ["OPENMETRICS_SERIES", "CSV_SERIES"] {
        let (exported, export_line) = literal_str_list(&export_src, list_name);
        if exported.is_empty() {
            diags.push(diag(
                METRICS_EXPORT,
                1,
                RULE_METRICS,
                format!("`{list_name}` not found (or empty) in metrics/export.rs"),
            ));
            continue;
        }
        for name in &catalog {
            if !exported.contains(name) {
                diags.push(diag(
                    METRICS_EXPORT,
                    export_line,
                    RULE_METRICS,
                    format!(
                        "catalog series `{name}` is missing from `{list_name}`: the \
                         sampler records it but this exporter silently drops it"
                    ),
                ));
            }
        }
        for name in &exported {
            if !catalog.contains(name) {
                diags.push(diag(
                    METRICS_CATALOG,
                    catalog_line,
                    RULE_METRICS,
                    format!(
                        "`{list_name}` exports `{name}`, which is not in the catalog's \
                         `ALL_NAMES` — exporter entry with no series behind it"
                    ),
                ));
            }
        }
    }
}

fn check_cell_smoke(load: &mut dyn FnMut(&str) -> Option<String>, diags: &mut Vec<Diagnostic>) {
    let Some(check_sh) = load(CHECK_SH) else {
        diags.push(missing_file(CHECK_SH, RULE_CELL_SMOKE));
        return;
    };
    let Some(perf_src) = load(PERF) else {
        diags.push(missing_file(PERF, RULE_CELL_SMOKE));
        return;
    };
    // Every baselined family is driven through a `repro` invocation.
    let repro_lines: Vec<&str> = check_sh
        .lines()
        .filter(|l| l.contains("repro") && !l.trim_start().starts_with('#'))
        .collect();
    for family in SMOKED_FAMILIES {
        let covered = repro_lines.iter().any(|l| {
            l.split_whitespace()
                .any(|w| w == family || w.starts_with(&format!("{family} ")))
        });
        if !covered {
            diags.push(diag(
                CHECK_SH,
                1,
                RULE_CELL_SMOKE,
                format!(
                    "cell family `{family}` has a checked-in baseline but no \
                     `repro … {family}` smoke invocation in scripts/check.sh"
                ),
            ));
        }
    }
    // The pinned trace cell must still exist in CELL_NAMES.
    let names = cell_names(&perf_src);
    if names.is_empty() {
        diags.push(diag(
            PERF,
            1,
            RULE_CELL_SMOKE,
            "CELL_NAMES not found (or empty) in crates/bench/src/perf.rs".to_string(),
        ));
        return;
    }
    if let Some(pos) = check_sh.find("cell=\"") {
        let after = &check_sh[pos + "cell=\"".len()..];
        if let Some(close) = after.find('"') {
            let pinned = &after[..close];
            if !names.iter().any(|n| n == pinned) {
                let line = check_sh[..pos].lines().count() as u32;
                diags.push(diag(
                    CHECK_SH,
                    line,
                    RULE_CELL_SMOKE,
                    format!(
                        "check.sh pins trace cell `{pinned}`, which is not a member \
                         of CELL_NAMES in perf.rs — the byte-determinism smoke lost \
                         its subject"
                    ),
                ));
            }
        }
    } else {
        diags.push(diag(
            CHECK_SH,
            1,
            RULE_CELL_SMOKE,
            "check.sh no longer pins a traced cell (`cell=\"…\"`): the \
             byte-determinism smoke is gone"
                .to_string(),
        ));
    }
}
