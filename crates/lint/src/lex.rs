//! Tokenizer for the lint engine: identifiers, numbers and punctuation with
//! positions; comments, strings and char literals skipped; `lint:allow`
//! annotations collected as they fly past.
//!
//! Hand-rolled and zero-dependency, like the rest of the crate. Numbers
//! became real tokens in lint v2: the `time-units` rule (R6) must see the
//! `0` in `now.0` to flag raw newtype escapes, which the v1 lexer swallowed.

/// Canonical rule names (used by [`parse_allow`] to validate annotations).
pub use crate::ALL_RULES;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    /// A numeric literal, verbatim (suffixes and underscores included,
    /// `..` ranges excluded).
    Num(String),
    Punct(char),
}

#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
}

/// A parsed `lint:allow` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
    /// Set when some violation consumed it (same line, line below, or the
    /// statement the annotated line belongs to).
    pub used: bool,
}

pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub allows: Vec<Allow>,
    /// Lines holding a comment that contains `lint:allow` but does not parse
    /// under the grammar (reported as `bad-allow`).
    pub bad_allows: Vec<(u32, String)>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse the comment body of one line for the allow grammar
/// `lint:allow(<rule>): <reason>`. Returns `Ok(None)` when the marker is
/// absent, `Err(why)` when present but malformed.
pub fn parse_allow(comment: &str) -> Result<Option<(String, String)>, String> {
    let Some(pos) = comment.find("lint:allow") else {
        return Ok(None);
    };
    let rest = &comment[pos + "lint:allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `lint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule name in lint:allow".to_string());
    };
    let rule = rest[..close].trim().to_string();
    if !ALL_RULES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown rule `{rule}` in lint:allow (known: {})",
            ALL_RULES.join(", ")
        ));
    }
    let after = &rest[close + 1..];
    let Some(reason) = after.strip_prefix(':') else {
        return Err("lint:allow must carry a reason: `lint:allow(<rule>): <reason>`".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason in lint:allow".to_string());
    }
    Ok(Some((rule, reason.to_string())))
}

/// Tokenize `src`. See the module doc for what is kept and what is skipped.
pub fn lex(src: &str) -> Lexed {
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut bad_allows = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        // Line comment (plain, doc, inner-doc) — scan for the allow marker.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            let at_line = line;
            while i < n && chars[i] != '\n' {
                bump!();
            }
            let body: String = chars[start..i].iter().collect();
            match parse_allow(&body) {
                Ok(Some((rule, _reason))) => allows.push(Allow {
                    line: at_line,
                    rule,
                    used: false,
                }),
                Ok(None) => {}
                Err(why) => bad_allows.push((at_line, why)),
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            bump!();
            bump!();
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_at, is_raw) = if c == 'r' {
                (i + 1, true)
            } else if chars[i + 1] == 'r' {
                (i + 2, i + 2 < n)
            } else {
                (0, false)
            };
            if is_raw {
                let mut j = raw_at;
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Consume up to and including the opening quote.
                    while i <= j {
                        bump!();
                    }
                    // Scan for `"` followed by `hashes` hashes.
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    continue;
                }
            }
        }
        // Regular string (or byte string — the `b` lexes as an ident first,
        // which is harmless for our rules).
        if c == '"' {
            bump!();
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` is a
        // lifetime (no closing quote).
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                bump!();
                bump!();
                bump!();
                while i < n && chars[i] != '\'' {
                    bump!();
                }
                if i < n {
                    bump!();
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                bump!();
                bump!();
                bump!();
                continue;
            }
            // Lifetime: skip the quote, the ident lexes next.
            bump!();
            continue;
        }
        if is_ident_start(c) {
            let (l, co) = (line, col);
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Ident(chars[start..i].iter().collect()),
                line: l,
                col: co,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let start = i;
            while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                // Stop before `..` ranges; a trailing `.` before a method
                // call (`1.max(2)`) also terminates the literal.
                if chars[i] == '.' {
                    let next = chars.get(i + 1);
                    if matches!(next, Some(c2) if *c2 == '.' || is_ident_start(*c2)) {
                        break;
                    }
                }
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Num(chars[start..i].iter().collect()),
                line: l,
                col: co,
            });
            continue;
        }
        if !c.is_whitespace() {
            tokens.push(Tok {
                kind: TokKind::Punct(c),
                line,
                col,
            });
        }
        bump!();
    }

    Lexed {
        tokens,
        allows,
        bad_allows,
    }
}

pub fn ident_is(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(id) if id == s)
}

pub fn punct_is(t: &Tok, c: char) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if *p == c)
}

pub fn num_is(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Num(n) if n == s)
}
