//! `memres-lint` — scan the workspace for determinism-rule violations.
//!
//! Usage:
//!   memres-lint [--json] [--github] [--root DIR] [FILE...]
//!
//! With no `FILE` operands the whole workspace is scanned (every `.rs` file
//! under `crates/`, `src/`, and `examples/`; the layer map in
//! `memres_lint::rules_for` decides which rules govern which file), plus
//! the cross-file exhaustiveness checks (`memres_lint::xfile`: event
//! dispatch, trace exporters, cell smokes). With operands, only those
//! files are scanned — still classified by their workspace-relative path,
//! so `memres-lint crates/core/src/world.rs` checks the same per-file
//! rules the full run would; cross-file checks are skipped in that mode
//! (their subjects are fixed paths, not the operand list).
//!
//! `--json` renders findings as a JSON array (CI artifact); `--github`
//! additionally emits GitHub Actions `::error` workflow commands so
//! findings annotate the offending lines in a PR diff.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use memres_lint::{diagnostics_json, rules_for, scan_source, xfile, Diagnostic};
use std::path::{Path, PathBuf};

fn usage() -> &'static str {
    "usage: memres-lint [--json] [--github] [--root DIR] [FILE...]"
}

/// Find the workspace root: `--root` wins, else walk up from the current
/// directory to the first `Cargo.toml` declaring `[workspace]`.
fn find_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(r) = explicit {
        if !r.join("Cargo.toml").is_file() {
            return Err(format!("--root {}: no Cargo.toml there", r.display()));
        }
        return Ok(r);
    }
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_string());
        }
    }
}

/// Every `.rs` file under the scanned trees, workspace-relative with `/`
/// separators, sorted for stable output.
fn workspace_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples"] {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

fn main() {
    let mut json = false;
    let mut github = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--github" => github = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(d) => root_arg = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("error: --root takes a directory\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{}", usage());
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    let root = match find_root(root_arg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let whole_workspace = files.is_empty();
    if whole_workspace {
        files = workspace_files(&root);
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for rel in &files {
        let rules = rules_for(rel);
        if rules.is_empty() {
            continue;
        }
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {rel}: {e}");
                std::process::exit(2);
            }
        };
        scanned += 1;
        diags.extend(scan_source(rel, &src, rules));
    }
    if whole_workspace {
        let mut load = |rel: &str| std::fs::read_to_string(root.join(rel)).ok();
        diags.extend(xfile::check_all(&mut load));
    }

    if json {
        print!("{}", diagnostics_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
    }
    if github {
        for d in &diags {
            println!("{}", d.render_github());
        }
    }
    eprintln!(
        "memres-lint: {scanned} files scanned, {} violation{}",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    std::process::exit(if diags.is_empty() { 0 } else { 1 });
}
