//! Statement/brace structure over the token stream.
//!
//! Lint v2 rules reason about more than single tokens: the `event-past`
//! rule (R5) walks backward through the *enclosing function* looking for
//! the binding of a timestamp, the `float-order` rule (R7) asks what else
//! the *enclosing statement* contains, and the allow-scope fix lets one
//! `lint:allow` on a multi-line statement cover every line of it. This
//! module computes that structure in one pass: per-token statement spans
//! and the token index of the innermost enclosing `fn`.
//!
//! "Statement" here is the lexical approximation that serves the rules:
//! a maximal token run at a fixed brace nesting, broken at `;`, `{` and
//! `}`. That treats an `if` condition and a match arm head as their own
//! statements — exactly the granularity the rules want.

use crate::lex::{ident_is, punct_is, Tok};

/// Structural facts per token, parallel to the token vector.
pub struct Structure {
    /// Index range `[start, end]` (inclusive) of the statement holding each
    /// token.
    pub stmt_span: Vec<(usize, usize)>,
    /// Token index of the `fn` keyword of the innermost enclosing function,
    /// if any.
    pub fn_start: Vec<Option<usize>>,
    /// Tokens covered by a `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
}

impl Structure {
    /// First line of the statement containing token `i`.
    pub fn stmt_start_line(&self, toks: &[Tok], i: usize) -> u32 {
        toks[self.stmt_span[i].0].line
    }

    /// Last line of the statement containing token `i`.
    pub fn stmt_end_line(&self, toks: &[Tok], i: usize) -> u32 {
        toks[self.stmt_span[i].1].line
    }
}

pub fn analyze(toks: &[Tok]) -> Structure {
    let n = toks.len();
    let mut stmt_span = vec![(0usize, 0usize); n];
    let mut fn_start = vec![None; n];
    // ---- statement spans: break at `;`, `{`, `}` (the breaker closes the
    // statement it ends; a fresh one starts after it).
    let mut start = 0usize;
    let mut i = 0usize;
    while i < n {
        let breaker = punct_is(&toks[i], ';') || punct_is(&toks[i], '{') || punct_is(&toks[i], '}');
        if breaker {
            for s in stmt_span.iter_mut().take(i + 1).skip(start) {
                *s = (start, i);
            }
            start = i + 1;
        }
        i += 1;
    }
    for s in stmt_span.iter_mut().take(n).skip(start.min(n)) {
        *s = (start, n - 1);
    }

    // ---- enclosing fn: a `{` opening after a `fn` keyword (since the last
    // brace event) starts that function's body; inner blocks inherit it.
    let mut stack: Vec<Option<usize>> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        fn_start[i] = if let Some(p) = pending_fn {
            Some(p)
        } else {
            stack.last().copied().flatten()
        };
        if ident_is(t, "fn") {
            pending_fn = Some(i);
        } else if punct_is(t, '{') {
            let scope = pending_fn
                .take()
                .or_else(|| stack.last().copied().flatten());
            stack.push(scope);
        } else if punct_is(t, '}') {
            stack.pop();
        } else if punct_is(t, ';') {
            // `fn f();` in a trait: the pending fn never opened a body.
            pending_fn = None;
        }
    }

    Structure {
        stmt_span,
        fn_start,
        test_mask: test_mask(toks),
    }
}

/// Mark every token covered by a `#[cfg(test)]` item (the attribute, any
/// stacked attributes after it, and the item body through its matching
/// close brace or terminating semicolon).
fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = i + 6 < tokens.len()
            && punct_is(&tokens[i], '#')
            && punct_is(&tokens[i + 1], '[')
            && ident_is(&tokens[i + 2], "cfg")
            && punct_is(&tokens[i + 3], '(')
            && ident_is(&tokens[i + 4], "test")
            && punct_is(&tokens[i + 5], ')')
            && punct_is(&tokens[i + 6], ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        i += 7;
        // Skip any further attributes on the same item.
        while i + 1 < tokens.len() && punct_is(&tokens[i], '#') && punct_is(&tokens[i + 1], '[') {
            let mut depth = 0i32;
            i += 1;
            while i < tokens.len() {
                if punct_is(&tokens[i], '[') {
                    depth += 1;
                } else if punct_is(&tokens[i], ']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Consume the item: to the matching `}` of its first brace block, or
        // to a `;` if none opens first.
        let mut depth = 0i32;
        while i < tokens.len() {
            if punct_is(&tokens[i], '{') {
                depth += 1;
            } else if punct_is(&tokens[i], '}') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            } else if punct_is(&tokens[i], ';') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        for m in mask.iter_mut().take(i).skip(start) {
            *m = true;
        }
    }
    mask
}
