//! # memres-lint — the workspace determinism linter
//!
//! The engine promises byte-identical results across executor thread counts
//! and under seeded fault plans. That promise dies the moment someone
//! iterates a salted hash map into an event order, reads the host clock
//! inside the simulation, or lets a recovery path panic without a recorded
//! reason. `memres-lint` turns those conventions into machine-checked rules
//! (DESIGN.md §4.10):
//!
//! * **R1 `hash-order`** — no `HashMap`/`HashSet` in simulation-visible
//!   crates (`core`, `des`, `net`, `storage`, `hdfs`, `lustre`, `cluster`,
//!   `workloads`): hash order is salted per instance and leaks into event
//!   order and float-accumulation order. Use `memres_des::{DetMap, DetSet}`.
//! * **R2 `wall-clock`** — no wall-clock or host entropy (`Instant`,
//!   `SystemTime`, `std::time`, `thread_rng`, …) outside the `bench`
//!   measurement layer. Simulated time is `SimTime`; randomness is seeded.
//! * **R3 `io`** — no filesystem or network access (`std::fs`, `std::net`)
//!   outside the designated `bench` and `scripts` layers.
//! * **R4 `panic`** — `unwrap()`/`expect()`/`panic!` in the recovery/fault
//!   paths (`core`: `world.rs`, `faults.rs`, `dag.rs`) and the fuzz-driven
//!   substrate hot paths (`net/flow.rs`, `storage/device.rs`,
//!   `lustre/lib.rs`) must justify why the invariant holds via a
//!   `lint:allow` annotation.
//!
//! Escapes use the annotation grammar
//! `// lint:allow(<rule>): <reason>` — trailing on the offending line or on
//! the line directly above it. Every allow must name a known rule and carry
//! a non-empty reason; a malformed or unused allow is itself a violation,
//! so escapes cannot rot silently.
//!
//! The scanner is a hand-rolled Rust tokenizer (in the spirit of the
//! vendored `rand`/`proptest` stubs: offline, zero dependencies). It skips
//! comments, strings and char literals — so prose mentioning `HashMap`
//! never fires — and skips `#[cfg(test)]` items, `tests/` and `benches/`
//! trees entirely: test assertions may hash-index fixture data freely.

use std::fmt::Write as _;

// ---------------------------------------------------------------- rules

/// Canonical rule names, used in diagnostics and `lint:allow(<rule>)`.
pub const RULE_HASH: &str = "hash-order";
pub const RULE_CLOCK: &str = "wall-clock";
pub const RULE_IO: &str = "io";
pub const RULE_PANIC: &str = "panic";

pub const ALL_RULES: [&str; 4] = [RULE_HASH, RULE_CLOCK, RULE_IO, RULE_PANIC];

/// Which rules apply to one file (decided from its workspace-relative path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub hash: bool,
    pub clock: bool,
    pub io: bool,
    pub panic: bool,
}

impl RuleSet {
    pub fn none() -> RuleSet {
        RuleSet::default()
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// Crates whose code is simulation-visible: anything here that iterates in
/// hash order perturbs event order and float sums (rule R1).
pub const SIM_CRATES: [&str; 9] = [
    "core",
    "des",
    "net",
    "storage",
    "hdfs",
    "lustre",
    "cluster",
    "workloads",
    "trace",
];

/// `(crate, file)` pairs where a bare panic turns an injected fault or a
/// hot-loop bookkeeping slip into a crashed process (rule R4): the
/// recovery/fault paths of `memres-core`, plus the substrate hot paths the
/// differential fuzzer drives hardest (flow bookkeeping, device queues,
/// the Lustre lock/cache state machine).
pub const PANIC_GUARDED_FILES: [(&str, &str); 6] = [
    ("core", "world.rs"),
    ("core", "faults.rs"),
    ("core", "dag.rs"),
    ("net", "flow.rs"),
    ("storage", "device.rs"),
    ("lustre", "lib.rs"),
];

/// Decide which rules govern `rel` (a `/`-separated path relative to the
/// workspace root). The layer map:
///
/// * `vendor/`, `crates/bench/`, `crates/lint/` — exempt (vendored stubs,
///   the measurement layer that *must* read the host clock and write JSON,
///   and this tool itself).
/// * `tests/`, `benches/` anywhere — exempt (test code may index fixtures).
/// * `crates/<sim>/src/` — R1 + R2 + R3; plus R4 for the recovery-path
///   files in `memres-core`.
/// * umbrella `src/` and `examples/` — R2 + R3 (not simulation-visible,
///   but still deterministic-by-default).
pub fn rules_for(rel: &str) -> RuleSet {
    if !rel.ends_with(".rs") {
        return RuleSet::none();
    }
    if rel.starts_with("vendor/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("crates/lint/")
        || rel.starts_with("target/")
    {
        return RuleSet::none();
    }
    if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
        return RuleSet::none();
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, tail) = match rest.split_once('/') {
            Some(x) => x,
            None => return RuleSet::none(),
        };
        if !tail.starts_with("src/") {
            return RuleSet::none();
        }
        if SIM_CRATES.contains(&krate) {
            let file = rel.rsplit('/').next().unwrap_or("");
            return RuleSet {
                hash: true,
                clock: true,
                io: true,
                panic: PANIC_GUARDED_FILES.contains(&(krate, file)),
            };
        }
        return RuleSet::none();
    }
    if rel.starts_with("src/") || rel.starts_with("examples/") {
        return RuleSet {
            hash: false,
            clock: true,
            io: true,
            panic: false,
        };
    }
    RuleSet::none()
}

// ---------------------------------------------------------- diagnostics

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule name (one of [`ALL_RULES`]) or the meta-rules `bad-allow` /
    /// `unused-allow`.
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array (stable field order, one object per
/// finding) for editor and CI integration.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.rule),
            json_escape(&d.message)
        );
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

// ------------------------------------------------------------ tokenizer

#[derive(Clone, Debug, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Punct(char),
}

#[derive(Clone, Debug)]
struct Tok {
    kind: TokKind,
    line: u32,
    col: u32,
}

/// A parsed `lint:allow` annotation.
#[derive(Clone, Debug)]
struct Allow {
    line: u32,
    rule: String,
    /// Set when some violation on `line` or `line + 1` consumed it.
    used: bool,
}

struct Lexed {
    tokens: Vec<Tok>,
    allows: Vec<Allow>,
    /// Lines holding a comment that contains `lint:allow` but does not parse
    /// under the grammar (reported as `bad-allow`).
    bad_allows: Vec<(u32, String)>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse the comment body of one line for the allow grammar
/// `lint:allow(<rule>): <reason>`. Returns `Ok(None)` when the marker is
/// absent, `Err(why)` when present but malformed.
fn parse_allow(comment: &str) -> Result<Option<(String, String)>, String> {
    let Some(pos) = comment.find("lint:allow") else {
        return Ok(None);
    };
    let rest = &comment[pos + "lint:allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `lint:allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule name in lint:allow".to_string());
    };
    let rule = rest[..close].trim().to_string();
    if !ALL_RULES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown rule `{rule}` in lint:allow (known: {})",
            ALL_RULES.join(", ")
        ));
    }
    let after = &rest[close + 1..];
    let Some(reason) = after.strip_prefix(':') else {
        return Err("lint:allow must carry a reason: `lint:allow(<rule>): <reason>`".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason in lint:allow".to_string());
    }
    Ok(Some((rule, reason.to_string())))
}

/// Tokenize `src`: identifiers and punctuation with positions, comments and
/// string/char literals skipped, `lint:allow` annotations collected.
fn lex(src: &str) -> Lexed {
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut bad_allows = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        // Line comment (plain, doc, inner-doc) — scan for the allow marker.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            let at_line = line;
            while i < n && chars[i] != '\n' {
                bump!();
            }
            let body: String = chars[start..i].iter().collect();
            match parse_allow(&body) {
                Ok(Some((rule, _reason))) => allows.push(Allow {
                    line: at_line,
                    rule,
                    used: false,
                }),
                Ok(None) => {}
                Err(why) => bad_allows.push((at_line, why)),
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            bump!();
            bump!();
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_at, is_raw) = if c == 'r' {
                (i + 1, true)
            } else if chars[i + 1] == 'r' {
                (i + 2, i + 2 < n)
            } else {
                (0, false)
            };
            if is_raw {
                let mut j = raw_at;
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Consume up to and including the opening quote.
                    while i <= j {
                        bump!();
                    }
                    // Scan for `"` followed by `hashes` hashes.
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    continue;
                }
            }
        }
        // Regular string (or byte string — the `b` lexes as an ident first,
        // which is harmless for our rules).
        if c == '"' {
            bump!();
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` is a
        // lifetime (no closing quote).
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                bump!();
                bump!();
                bump!();
                while i < n && chars[i] != '\'' {
                    bump!();
                }
                if i < n {
                    bump!();
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                bump!();
                bump!();
                bump!();
                continue;
            }
            // Lifetime: skip the quote, the ident lexes next.
            bump!();
            continue;
        }
        if is_ident_start(c) {
            let (l, co) = (line, col);
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                bump!();
            }
            tokens.push(Tok {
                kind: TokKind::Ident(chars[start..i].iter().collect()),
                line: l,
                col: co,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // Numbers (with suffixes/underscores) carry no rule signal.
            while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                // Stop before a method call on a literal: `1.0.sqrt()` is
                // rare; `..` ranges must not be swallowed.
                if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                    break;
                }
                bump!();
            }
            continue;
        }
        if !c.is_whitespace() {
            tokens.push(Tok {
                kind: TokKind::Punct(c),
                line,
                col,
            });
        }
        bump!();
    }

    Lexed {
        tokens,
        allows,
        bad_allows,
    }
}

// ------------------------------------------------------ test-region mask

fn ident_is(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(id) if id == s)
}

fn punct_is(t: &Tok, c: char) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if *p == c)
}

/// Mark every token covered by a `#[cfg(test)]` item (the attribute, any
/// stacked attributes after it, and the item body through its matching
/// close brace or terminating semicolon).
fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = i + 6 < tokens.len()
            && punct_is(&tokens[i], '#')
            && punct_is(&tokens[i + 1], '[')
            && ident_is(&tokens[i + 2], "cfg")
            && punct_is(&tokens[i + 3], '(')
            && ident_is(&tokens[i + 4], "test")
            && punct_is(&tokens[i + 5], ')')
            && punct_is(&tokens[i + 6], ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        i += 7;
        // Skip any further attributes on the same item.
        while i + 1 < tokens.len() && punct_is(&tokens[i], '#') && punct_is(&tokens[i + 1], '[') {
            let mut depth = 0i32;
            i += 1;
            while i < tokens.len() {
                if punct_is(&tokens[i], '[') {
                    depth += 1;
                } else if punct_is(&tokens[i], ']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Consume the item: to the matching `}` of its first brace block, or
        // to a `;` if none opens first.
        let mut depth = 0i32;
        while i < tokens.len() {
            if punct_is(&tokens[i], '{') {
                depth += 1;
            } else if punct_is(&tokens[i], '}') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            } else if punct_is(&tokens[i], ';') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        for m in mask.iter_mut().take(i).skip(start) {
            *m = true;
        }
    }
    mask
}

// --------------------------------------------------------------- scanner

/// Wall-clock / host-entropy identifiers (rule R2).
const CLOCK_IDENTS: [&str; 6] = [
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

/// Network-type identifiers (rule R3; `std::fs` / `std::net` paths are
/// matched structurally).
const NET_IDENTS: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

/// Scan one file's source under `rules`. `file` is the diagnostic label
/// (workspace-relative path).
pub fn scan_source(file: &str, src: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let Lexed {
        tokens: toks,
        mut allows,
        bad_allows,
    } = lex(src);
    let mask = test_mask(&toks);
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (line, why) in &bad_allows {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: *line,
            col: 1,
            rule: "bad-allow".to_string(),
            message: why.clone(),
        });
    }

    let fire = |allows: &mut [Allow], rule: &str, tok: &Tok, message: String| {
        // Consume a matching allow: trailing on the same line, or standalone
        // on the line directly above.
        // Same-line allows win over line-above allows, so consecutive
        // annotated lines each consume their own escape.
        for probe in [0u32, 1] {
            if let Some(a) = allows
                .iter_mut()
                .find(|a| a.rule == rule && a.line + probe == tok.line)
            {
                a.used = true;
                return None;
            }
        }
        Some(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            rule: rule.to_string(),
            message,
        })
    };

    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let tok = &toks[i];
        let TokKind::Ident(id) = &tok.kind else {
            // R4: `panic!` (ident handled below); bare punct carries nothing.
            continue;
        };
        if rules.hash && (id == "HashMap" || id == "HashSet") {
            let d = fire(
                &mut allows,
                RULE_HASH,
                tok,
                format!(
                    "`{id}` in simulation-visible code: hash order is salted per instance \
                     and leaks into event order; use memres_des::{}",
                    if id == "HashMap" { "DetMap" } else { "DetSet" }
                ),
            );
            diags.extend(d);
        }
        if rules.clock {
            if CLOCK_IDENTS.contains(&id.as_str()) {
                let d = fire(
                    &mut allows,
                    RULE_CLOCK,
                    tok,
                    format!(
                        "`{id}` reads the host clock/entropy inside deterministic code; \
                         use SimTime / seeded rngs (measurement belongs in crates/bench)"
                    ),
                );
                diags.extend(d);
            }
            // `std :: time` path.
            if id == "std"
                && i + 3 < toks.len()
                && punct_is(&toks[i + 1], ':')
                && punct_is(&toks[i + 2], ':')
                && ident_is(&toks[i + 3], "time")
            {
                let d = fire(
                    &mut allows,
                    RULE_CLOCK,
                    tok,
                    "`std::time` in deterministic code; simulated time is memres_des::SimTime"
                        .to_string(),
                );
                diags.extend(d);
            }
        }
        if rules.io {
            if NET_IDENTS.contains(&id.as_str()) {
                let d = fire(
                    &mut allows,
                    RULE_IO,
                    tok,
                    format!("`{id}`: network access outside the bench/scripts layers"),
                );
                diags.extend(d);
            }
            if id == "std"
                && i + 3 < toks.len()
                && punct_is(&toks[i + 1], ':')
                && punct_is(&toks[i + 2], ':')
                && (ident_is(&toks[i + 3], "fs") || ident_is(&toks[i + 3], "net"))
            {
                let what = match &toks[i + 3].kind {
                    TokKind::Ident(w) => w.clone(),
                    TokKind::Punct(_) => unreachable!("guarded by ident_is"),
                };
                let d = fire(
                    &mut allows,
                    RULE_IO,
                    tok,
                    format!(
                        "`std::{what}` outside the bench/scripts layers: simulation code \
                         must not touch the host filesystem or network"
                    ),
                );
                diags.extend(d);
            }
        }
        if rules.panic {
            // `. unwrap (` / `. expect (`
            if (id == "unwrap" || id == "expect")
                && i > 0
                && punct_is(&toks[i - 1], '.')
                && i + 1 < toks.len()
                && punct_is(&toks[i + 1], '(')
            {
                let d = fire(
                    &mut allows,
                    RULE_PANIC,
                    tok,
                    format!(
                        "`.{id}()` on a recovery/fault path: justify the invariant with \
                         `// lint:allow(panic): <reason>` or handle the None/Err case"
                    ),
                );
                diags.extend(d);
            }
            // `panic !`
            if id == "panic" && i + 1 < toks.len() && punct_is(&toks[i + 1], '!') {
                let d = fire(
                    &mut allows,
                    RULE_PANIC,
                    tok,
                    "`panic!` on a recovery/fault path: justify the invariant with \
                     `// lint:allow(panic): <reason>`"
                        .to_string(),
                );
                diags.extend(d);
            }
        }
    }

    // Hygiene: an allow that matched nothing is stale and must go. Allows
    // inside test regions are exempt (the rules themselves skip test code).
    let masked_lines: Vec<(u32, u32)> = {
        let mut spans = Vec::new();
        let mut j = 0usize;
        while j < toks.len() {
            if mask[j] {
                let start = toks[j].line;
                while j < toks.len() && mask[j] {
                    j += 1;
                }
                let end = if j > 0 { toks[j - 1].line } else { start };
                spans.push((start, end));
            } else {
                j += 1;
            }
        }
        spans
    };
    for a in &allows {
        let in_test = masked_lines
            .iter()
            .any(|&(s, e)| a.line >= s && a.line <= e);
        if !a.used && !in_test {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: 1,
                rule: "unused-allow".to_string(),
                message: format!(
                    "lint:allow({}) matches no violation on this or the next line; remove it",
                    a.rule
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_rules() -> RuleSet {
        RuleSet {
            hash: true,
            clock: true,
            io: true,
            panic: false,
        }
    }

    fn panic_rules() -> RuleSet {
        RuleSet {
            hash: true,
            clock: true,
            io: true,
            panic: true,
        }
    }

    // ------------------------------------------------ known-bad fixtures

    #[test]
    fn bad_hashmap_use_fires() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_HASH));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn bad_hashset_fires() {
        let src = "fn f(s: &std::collections::HashSet<u8>) {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("DetSet"));
    }

    #[test]
    fn bad_instant_and_std_time_fire() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert!(d.iter().any(|d| d.rule == RULE_CLOCK));
        let names: Vec<&str> = d.iter().map(|d| d.rule.as_str()).collect();
        assert!(names.contains(&RULE_CLOCK), "{names:?}");
    }

    #[test]
    fn bad_entropy_fires() {
        for src in [
            "fn f() { let r = rand::rngs::SmallRng::from_entropy(); }\n",
            "fn f() { let r = rand::thread_rng(); }\n",
            "fn f() { let t = SystemTime::now(); }\n",
        ] {
            let d = scan_source("x.rs", src, sim_rules());
            assert_eq!(d.len(), 1, "{src}");
            assert_eq!(d[0].rule, RULE_CLOCK);
        }
    }

    #[test]
    fn bad_fs_and_net_fire() {
        let src = "fn f() { std::fs::write(\"/tmp/x\", b\"y\").unwrap(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_IO);
        let src = "use std::net::TcpStream;\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 2, "path + type ident: {d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_IO));
    }

    #[test]
    fn bad_panic_paths_fire() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let d = scan_source("world.rs", src, panic_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_PANIC);
        let src = "fn f(x: Option<u8>) { x.expect(\"set\"); }\n";
        assert_eq!(scan_source("w.rs", src, panic_rules()).len(), 1);
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(scan_source("w.rs", src, panic_rules()).len(), 1);
    }

    #[test]
    fn bad_allow_without_reason_fires() {
        let src = "fn f() {} // lint:allow(panic):   \n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-allow");
        assert!(d[0].message.contains("empty reason"));
    }

    #[test]
    fn bad_allow_unknown_rule_fires() {
        let src = "fn f() {} // lint:allow(everything): because\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-allow");
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_fires() {
        let src = "// lint:allow(hash-order): stale escape\nfn f() {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused-allow");
    }

    // ----------------------------------------------- known-good fixtures

    #[test]
    fn good_detmap_is_clean() {
        let src = "use memres_des::{DetMap, DetSet};\nfn f() { let m: DetMap<u32, u32> = DetMap::new(); }\n";
        assert!(scan_source("x.rs", src, sim_rules()).is_empty());
    }

    #[test]
    fn good_comments_and_strings_never_fire() {
        let src = "// A HashMap would break determinism; Instant::now too.\n\
                   /* std::fs::write(\"x\") in a block comment */\n\
                   fn f() -> &'static str { \"HashMap Instant std::time panic!\" }\n\
                   fn g() { let s = r#\"HashSet SystemTime\"#; let _ = s; }\n";
        let d = scan_source("x.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_allowed_line_is_clean_and_allow_is_consumed() {
        let src = "use std::collections::HashMap; // lint:allow(hash-order): index probed by key, never iterated\n";
        assert!(scan_source("x.rs", src, sim_rules()).is_empty());
        let src = "// lint:allow(panic): completions are pre-filtered, job must exist\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert!(scan_source("w.rs", src, panic_rules()).is_empty());
    }

    #[test]
    fn good_stacked_allows_each_consume_their_own() {
        // Two violating lines in a row, each with its own trailing allow:
        // neither may steal the other's escape (same-line wins).
        let src = "fn f(a: Option<u8>, b: Option<u8>) {\n\
                   \x20   a.unwrap(); // lint:allow(panic): a is checked by the caller\n\
                   \x20   b.unwrap(); // lint:allow(panic): b is checked by the caller\n\
                   }\n";
        let d = scan_source("w.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_cfg_test_region_is_skipped() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let m: HashMap<u8, u8> = HashMap::new(); m.iter(); panic!(); }\n\
                   }\n";
        let d = scan_source("x.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_cfg_test_single_item_is_skipped_but_rest_scans() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n\
                   fn f(s: &std::collections::HashSet<u8>) {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn good_lifetimes_and_char_literals_lex() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nfn g() -> char { '\\n' }\n";
        assert!(scan_source("x.rs", src, panic_rules()).is_empty());
    }

    #[test]
    fn good_unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        let d = scan_source("w.rs", src, panic_rules());
        assert!(d.is_empty(), "unwrap_or is not unwrap: {d:?}");
    }

    // --------------------------------------------------- layer map tests

    #[test]
    fn rules_scope_by_layer() {
        let r = rules_for("crates/core/src/world.rs");
        assert!(r.hash && r.clock && r.io && r.panic);
        let r = rules_for("crates/core/src/metrics.rs");
        assert!(r.hash && !r.panic);
        let r = rules_for("crates/net/src/flow.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/storage/src/device.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/lustre/src/lib.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/net/src/lib.rs");
        assert!(r.hash && !r.panic, "only flow.rs is panic-guarded in net");
        let r = rules_for("crates/des/src/det.rs");
        assert!(r.hash && !r.panic);
        let r = rules_for("crates/trace/src/analyze.rs");
        assert!(r.hash && r.clock && r.io && !r.panic);
        assert!(rules_for("crates/bench/src/perf.rs").is_empty());
        assert!(rules_for("crates/lint/src/lib.rs").is_empty());
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for("crates/core/tests/engine.rs").is_empty());
        assert!(rules_for("tests/correctness.rs").is_empty());
        let r = rules_for("examples/quickstart.rs");
        assert!(!r.hash && r.clock && r.io);
        let r = rules_for("src/lib.rs");
        assert!(!r.hash && r.clock && r.io);
        assert!(rules_for("README.md").is_empty());
    }

    #[test]
    fn json_output_shape() {
        let d = vec![Diagnostic {
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            rule: RULE_HASH.to_string(),
            message: "say \"no\"".to_string(),
        }];
        let j = diagnostics_json(&d);
        assert!(j.contains("\"file\": \"a.rs\""));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\\\"no\\\""));
        assert_eq!(diagnostics_json(&[]), "[]\n");
    }
}
