//! # memres-lint — the workspace determinism & discipline linter
//!
//! The engine promises byte-identical results across executor thread counts
//! and under seeded fault plans. That promise dies the moment someone
//! iterates a salted hash map into an event order, reads the host clock
//! inside the simulation, schedules an event into the past, or leaks a raw
//! nanosecond count across a crate boundary. `memres-lint` turns those
//! conventions into machine-checked rules (DESIGN.md §4.10, §4.15):
//!
//! * **R1 `hash-order`** — no `HashMap`/`HashSet` in simulation-visible
//!   crates: hash order is salted per instance and leaks into event order
//!   and float-accumulation order. Use `memres_des::{DetMap, DetSet}`.
//! * **R2 `wall-clock`** — no wall-clock or host entropy (`Instant`,
//!   `SystemTime`, `std::time`, `thread_rng`, …) outside the `bench`
//!   measurement layer. Simulated time is `SimTime`; randomness is seeded.
//! * **R3 `io`** — no filesystem or network access (`std::fs`, `std::net`)
//!   outside the designated `bench` and `scripts` layers.
//! * **R4 `panic`** — `unwrap()`/`expect()`/`panic!` in the recovery/fault
//!   paths and fuzz-driven substrate hot paths must justify why the
//!   invariant holds via a `lint:allow` annotation.
//! * **R5 `event-past`** (v2) — every event-scheduling callsite
//!   (`Outbox::at`, `Simulation::schedule`, `queue.push`, flow opens,
//!   `push_chunk`) must derive its timestamp from `now` *syntactically*:
//!   the first argument starts with `now`/`self.now`, clamps with
//!   `.max(now)`, or is a local provably bound from / guarded against
//!   `now` earlier in the same function. Anything else needs a justified
//!   `lint:allow(event-past)`. The dynamic counterpart is the strict-mode
//!   assert in `memres_des::sim` (on by default in debug builds).
//! * **R6 `time-units`** (v2) — no raw `.0` escapes of the `SimTime` /
//!   `SimDuration` newtypes (use `as_nanos()`), no time-named fields or
//!   bindings declared as bare primitives (`deadline_ns: u64`), and no
//!   `bytes: f64`/`bytes: u64` parameters on `pub fn` boundaries in
//!   sim-visible crates (use `memres_des::Bytes`).
//! * **R7 `float-order`** — order-sensitive `f64` accumulation (`.sum()`,
//!   `.product()`, `.fold()`, `+=` loops) over map iteration
//!   (`values()`/`keys()`) must be annotated: slice/Vec iteration is
//!   insertion-ordered by construction, map iteration is only deterministic
//!   because R1 forces `DetMap` — say so at the accumulation site.
//!
//! Escapes use the annotation grammar
//! `// lint:allow(<rule>): <reason>` — trailing on the offending line, on
//! the line directly above it, trailing any line of the (possibly
//! multi-line) statement, or on the line directly above the statement.
//! Every allow must name a known rule and carry a non-empty reason; a
//! malformed or unused allow is itself a violation, so escapes cannot rot
//! silently.
//!
//! Cross-file exhaustiveness checks live in [`xfile`]: every `Ev` variant
//! handled in the engine dispatch, every `TraceEvent` variant carried by
//! both trace exporters, and every repro cell family smoke-covered by
//! `scripts/check.sh`.
//!
//! The scanner is a hand-rolled Rust tokenizer (offline, zero
//! dependencies) feeding a statement/brace-structure pass ([`stmt`]). It
//! skips comments, strings and char literals — so prose mentioning
//! `HashMap` never fires — and skips `#[cfg(test)]` items, `tests/` and
//! `benches/` trees entirely.

use std::fmt::Write as _;

pub mod lex;
pub mod stmt;
pub mod xfile;

use lex::{ident_is, num_is, punct_is, Allow, Lexed, Tok, TokKind};
use stmt::Structure;

// ---------------------------------------------------------------- rules

/// Canonical rule names, used in diagnostics and `lint:allow(<rule>)`.
pub const RULE_HASH: &str = "hash-order";
pub const RULE_CLOCK: &str = "wall-clock";
pub const RULE_IO: &str = "io";
pub const RULE_PANIC: &str = "panic";
pub const RULE_EVENT_PAST: &str = "event-past";
pub const RULE_TIME_UNITS: &str = "time-units";
pub const RULE_FLOAT_ORDER: &str = "float-order";

pub const ALL_RULES: [&str; 7] = [
    RULE_HASH,
    RULE_CLOCK,
    RULE_IO,
    RULE_PANIC,
    RULE_EVENT_PAST,
    RULE_TIME_UNITS,
    RULE_FLOAT_ORDER,
];

/// Which rules apply to one file (decided from its workspace-relative path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub hash: bool,
    pub clock: bool,
    pub io: bool,
    pub panic: bool,
    pub event_past: bool,
    pub time_units: bool,
    pub float_order: bool,
}

impl RuleSet {
    pub fn none() -> RuleSet {
        RuleSet::default()
    }

    /// Every per-file rule, as applied to sim-crate sources.
    pub fn sim() -> RuleSet {
        RuleSet {
            hash: true,
            clock: true,
            io: true,
            panic: false,
            event_past: true,
            time_units: true,
            float_order: true,
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// Crates whose code is simulation-visible: anything here that iterates in
/// hash order perturbs event order and float sums (rule R1).
pub const SIM_CRATES: [&str; 9] = [
    "core",
    "des",
    "net",
    "storage",
    "hdfs",
    "lustre",
    "cluster",
    "workloads",
    "trace",
];

/// `(crate, file)` pairs where a bare panic turns an injected fault or a
/// hot-loop bookkeeping slip into a crashed process (rule R4): the
/// recovery/fault paths of `memres-core`, plus the substrate hot paths the
/// differential fuzzer drives hardest (flow bookkeeping, device queues,
/// the Lustre lock/cache state machine).
pub const PANIC_GUARDED_FILES: [(&str, &str); 6] = [
    ("core", "world.rs"),
    ("core", "faults.rs"),
    ("core", "dag.rs"),
    ("net", "flow.rs"),
    ("storage", "device.rs"),
    ("lustre", "lib.rs"),
];

/// Files that *define* the time/bytes newtypes: the `.0` accesses inside
/// them are the implementation, not escapes (rule R6 exemption).
pub const UNIT_DEFINING_FILES: [&str; 2] = ["crates/des/src/time.rs", "crates/des/src/bytes.rs"];

/// Decide which rules govern `rel` (a `/`-separated path relative to the
/// workspace root). The layer map:
///
/// * `vendor/`, `crates/bench/`, `crates/lint/` — exempt (vendored stubs,
///   the measurement layer that *must* read the host clock and write JSON,
///   and this tool itself).
/// * `tests/`, `benches/` anywhere — exempt (test code may index fixtures).
/// * `crates/<sim>/src/` — R1 + R2 + R3 + R5 + R6 + R7; plus R4 for the
///   recovery-path files; minus R6 for the newtype-defining files.
/// * umbrella `src/` and `examples/` — R2 + R3 (not simulation-visible,
///   but still deterministic-by-default).
pub fn rules_for(rel: &str) -> RuleSet {
    if !rel.ends_with(".rs") {
        return RuleSet::none();
    }
    if rel.starts_with("vendor/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("crates/lint/")
        || rel.starts_with("target/")
    {
        return RuleSet::none();
    }
    if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
        return RuleSet::none();
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, tail) = match rest.split_once('/') {
            Some(x) => x,
            None => return RuleSet::none(),
        };
        if !tail.starts_with("src/") {
            return RuleSet::none();
        }
        if SIM_CRATES.contains(&krate) {
            let file = rel.rsplit('/').next().unwrap_or("");
            let mut r = RuleSet::sim();
            r.panic = PANIC_GUARDED_FILES.contains(&(krate, file));
            r.time_units = !UNIT_DEFINING_FILES.contains(&rel);
            return r;
        }
        return RuleSet::none();
    }
    if rel.starts_with("src/") || rel.starts_with("examples/") {
        return RuleSet {
            clock: true,
            io: true,
            ..RuleSet::none()
        };
    }
    RuleSet::none()
}

// ---------------------------------------------------------- diagnostics

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule name (one of [`ALL_RULES`]), a cross-file rule
    /// ([`xfile::XFILE_RULES`]), or the meta-rules `bad-allow` /
    /// `unused-allow`.
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// GitHub Actions workflow-command form: annotates the offending line
    /// in the PR diff view when emitted from CI.
    pub fn render_github(&self) -> String {
        format!(
            "::error file={},line={},col={},title=memres-lint {}::{}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array (stable field order, one object per
/// finding) for editor and CI integration.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.rule),
            json_escape(&d.message)
        );
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

// --------------------------------------------------------------- scanner

/// Wall-clock / host-entropy identifiers (rule R2).
const CLOCK_IDENTS: [&str; 6] = [
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

/// Network-type identifiers (rule R3; `std::fs` / `std::net` paths are
/// matched structurally).
const NET_IDENTS: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];

/// Identifiers that denote a simulated instant when they escape via `.0`
/// (rule R6a). Exact names or suffix match — see [`timeish_ident`].
const TIMEISH_EXACT: [&str; 7] = ["now", "time", "at", "until", "deadline", "when", "last"];
const TIMEISH_SUFFIX: [&str; 6] = ["_time", "_at", "_until", "_deadline", "_ns", "_since"];

fn timeish_ident(id: &str) -> bool {
    TIMEISH_EXACT.contains(&id) || TIMEISH_SUFFIX.iter().any(|s| id.ends_with(s))
}

/// Does the first argument of a scheduling call syntactically derive from
/// `now`? Accepts `now ...`, `self.now ...`, and anything containing
/// `.max(now)` / `.max(self.now)`.
fn arg_derives_from_now(arg: &[Tok]) -> bool {
    starts_with_now(arg) || contains_max_now(arg)
}

fn starts_with_now(toks: &[Tok]) -> bool {
    if toks.is_empty() {
        return false;
    }
    if ident_is(&toks[0], "now") {
        return true;
    }
    toks.len() >= 3
        && ident_is(&toks[0], "self")
        && punct_is(&toks[1], '.')
        && ident_is(&toks[2], "now")
}

fn contains_max_now(toks: &[Tok]) -> bool {
    for j in 0..toks.len() {
        if punct_is(&toks[j], '.')
            && j + 3 < toks.len()
            && ident_is(&toks[j + 1], "max")
            && punct_is(&toks[j + 2], '(')
            && starts_with_now(&toks[j + 3..])
        {
            return true;
        }
    }
    false
}

/// Backward dataflow for rule R5: is the single identifier `name`, used as
/// a scheduling timestamp at token index `call`, provably at-or-after
/// `now`? True when the enclosing function earlier contains either
///
/// * a binding `let [mut] name = <expr>` whose expression derives from
///   `now` ([`arg_derives_from_now`]), or
/// * a guard comparing it against `now` (`now < name`, `now <= name`,
///   `name > now`, `name >= now`, with `self.now` variants).
fn local_derives_from_now(toks: &[Tok], structure: &Structure, call: usize, name: &str) -> bool {
    let lo = structure.fn_start[call].unwrap_or(0);
    let region = &toks[lo..call];
    // Binding scan (take the last matching binding before the call).
    for j in (0..region.len()).rev() {
        if !ident_is(&region[j], "let") {
            continue;
        }
        let mut k = j + 1;
        if k < region.len() && ident_is(&region[k], "mut") {
            k += 1;
        }
        if k + 1 < region.len() && ident_is(&region[k], name) && punct_is(&region[k + 1], '=') {
            let expr_start = k + 2;
            let mut expr_end = expr_start;
            while expr_end < region.len() && !punct_is(&region[expr_end], ';') {
                expr_end += 1;
            }
            if arg_derives_from_now(&region[expr_start..expr_end]) {
                return true;
            }
        }
    }
    // Guard scan: `now <[=] name` or `name >[=] now`.
    for j in 0..region.len() {
        // `now` (or `self.now`) then `<` [`=`] then `name`.
        if ident_is(&region[j], "now") {
            let mut k = j + 1;
            if k < region.len() && punct_is(&region[k], '<') {
                k += 1;
                if k < region.len() && punct_is(&region[k], '=') {
                    k += 1;
                }
                if k < region.len() && ident_is(&region[k], name) {
                    return true;
                }
            }
        }
        // `name` then `>` [`=`] then `now` / `self.now`.
        if ident_is(&region[j], name) {
            let mut k = j + 1;
            if k < region.len() && punct_is(&region[k], '>') {
                k += 1;
                if k < region.len() && punct_is(&region[k], '=') {
                    k += 1;
                }
                if k < region.len() && starts_with_now(&region[k..]) {
                    return true;
                }
            }
        }
    }
    false
}

/// Method names that schedule events (rule R5). `push` additionally
/// requires the receiver ident `queue` (`self.queue.push(t, e)`): plain
/// `Vec::push` is not a scheduling call.
const SCHEDULING_CALLEES: [&str; 5] = [
    "at",
    "schedule",
    "open_flow",
    "open_shared_flow",
    "push_chunk",
];

/// Collect the first argument of the call whose `(` is at token `open`.
/// Returns the token slice up to the first depth-0 `,` (or the closing
/// `)`).
fn first_arg(toks: &[Tok], open: usize) -> &[Tok] {
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < toks.len() {
        if let TokKind::Punct(c) = &toks[j].kind {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    &toks[open + 1..j]
}

/// Scan one file's source under `rules`. `file` is the diagnostic label
/// (workspace-relative path).
pub fn scan_source(file: &str, src: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let Lexed {
        tokens: toks,
        mut allows,
        bad_allows,
    } = lex::lex(src);
    let structure = stmt::analyze(&toks);
    let mask = &structure.test_mask;
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (line, why) in &bad_allows {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: *line,
            col: 1,
            rule: "bad-allow".to_string(),
            message: why.clone(),
        });
    }

    // Consume a matching allow for a violation at token `i`: trailing on the
    // same line, standalone on the line directly above, trailing any line of
    // the enclosing statement, or on the line directly above the statement
    // start — so one allow on a multi-line statement covers all of it.
    let fire = |allows: &mut [Allow],
                structure: &Structure,
                toks: &[Tok],
                rule: &str,
                i: usize,
                message: String|
     -> Option<Diagnostic> {
        let tok = &toks[i];
        let stmt_start = structure.stmt_start_line(toks, i);
        let stmt_end = structure.stmt_end_line(toks, i);
        let hit = |a: &Allow| {
            a.line == tok.line
                || a.line + 1 == tok.line
                || (a.line >= stmt_start && a.line <= stmt_end)
                || a.line + 1 == stmt_start
        };
        // Same-line allows win over wider scopes, so consecutive annotated
        // lines each consume their own escape.
        for exact in [true, false] {
            if let Some(a) = allows
                .iter_mut()
                .find(|a| a.rule == rule && if exact { a.line == tok.line } else { hit(a) })
            {
                a.used = true;
                return None;
            }
        }
        Some(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            rule: rule.to_string(),
            message,
        })
    };

    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let tok = &toks[i];
        let TokKind::Ident(id) = &tok.kind else {
            continue;
        };
        if rules.hash && (id == "HashMap" || id == "HashSet") {
            let d = fire(
                &mut allows,
                &structure,
                &toks,
                RULE_HASH,
                i,
                format!(
                    "`{id}` in simulation-visible code: hash order is salted per instance \
                     and leaks into event order; use memres_des::{}",
                    if id == "HashMap" { "DetMap" } else { "DetSet" }
                ),
            );
            diags.extend(d);
        }
        if rules.clock {
            if CLOCK_IDENTS.contains(&id.as_str()) {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_CLOCK,
                    i,
                    format!(
                        "`{id}` reads the host clock/entropy inside deterministic code; \
                         use SimTime / seeded rngs (measurement belongs in crates/bench)"
                    ),
                );
                diags.extend(d);
            }
            // `std :: time` path.
            if id == "std"
                && i + 3 < toks.len()
                && punct_is(&toks[i + 1], ':')
                && punct_is(&toks[i + 2], ':')
                && ident_is(&toks[i + 3], "time")
            {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_CLOCK,
                    i,
                    "`std::time` in deterministic code; simulated time is memres_des::SimTime"
                        .to_string(),
                );
                diags.extend(d);
            }
        }
        if rules.io {
            if NET_IDENTS.contains(&id.as_str()) {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_IO,
                    i,
                    format!("`{id}`: network access outside the bench/scripts layers"),
                );
                diags.extend(d);
            }
            if id == "std"
                && i + 3 < toks.len()
                && punct_is(&toks[i + 1], ':')
                && punct_is(&toks[i + 2], ':')
                && (ident_is(&toks[i + 3], "fs") || ident_is(&toks[i + 3], "net"))
            {
                let what = match &toks[i + 3].kind {
                    TokKind::Ident(w) => w.clone(),
                    _ => unreachable!("guarded by ident_is"),
                };
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_IO,
                    i,
                    format!(
                        "`std::{what}` outside the bench/scripts layers: simulation code \
                         must not touch the host filesystem or network"
                    ),
                );
                diags.extend(d);
            }
        }
        if rules.panic {
            // `. unwrap (` / `. expect (`
            if (id == "unwrap" || id == "expect")
                && i > 0
                && punct_is(&toks[i - 1], '.')
                && i + 1 < toks.len()
                && punct_is(&toks[i + 1], '(')
            {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_PANIC,
                    i,
                    format!(
                        "`.{id}()` on a recovery/fault path: justify the invariant with \
                         `// lint:allow(panic): <reason>` or handle the None/Err case"
                    ),
                );
                diags.extend(d);
            }
            // `panic !`
            if id == "panic" && i + 1 < toks.len() && punct_is(&toks[i + 1], '!') {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_PANIC,
                    i,
                    "`panic!` on a recovery/fault path: justify the invariant with \
                     `// lint:allow(panic): <reason>`"
                        .to_string(),
                );
                diags.extend(d);
            }
        }
        // ---- R5: event scheduling must derive its timestamp from `now`.
        if rules.event_past
            && i > 0
            && punct_is(&toks[i - 1], '.')
            && i + 1 < toks.len()
            && punct_is(&toks[i + 1], '(')
            && (SCHEDULING_CALLEES.contains(&id.as_str())
                || (id == "push" && i >= 2 && ident_is(&toks[i - 2], "queue")))
        {
            let arg = first_arg(&toks, i + 1);
            // `foo.at()` with no argument is not our callsite shape; a
            // single-ident argument gets the backward dataflow scan; a
            // literal constant (a bare number is a raw timestamp) is not
            // `now`-derived.
            let ok = arg.is_empty()
                || arg_derives_from_now(arg)
                || (arg.len() == 1
                    && match &arg[0].kind {
                        TokKind::Ident(name) => local_derives_from_now(&toks, &structure, i, name),
                        _ => false,
                    });
            if !ok {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_EVENT_PAST,
                    i,
                    format!(
                        "`.{id}(..)` schedules an event whose timestamp is not visibly \
                         derived from `now` (start it with `now`, clamp with `.max(now)`, \
                         or bind/guard the local against `now` in this function); if the \
                         value is provably in the future, say why with \
                         `// lint:allow(event-past): <reason>`"
                    ),
                );
                diags.extend(d);
            }
        }
        // ---- R6: time/byte unit discipline.
        if rules.time_units {
            // (a) raw `.0` escape of a time-ish binding: `deadline.0`,
            // `now.0`, `last_seen_at.0`, and `now.since(start).0`.
            if timeish_ident(id)
                && i + 2 < toks.len()
                && punct_is(&toks[i + 1], '.')
                && num_is(&toks[i + 2], "0")
            {
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_TIME_UNITS,
                    i,
                    format!(
                        "raw `.0` escape of `{id}`: use `.as_nanos()` (the greppable \
                         escape hatch) so unit boundaries stay searchable"
                    ),
                );
                diags.extend(d);
            }
            if id == "since"
                && i > 0
                && punct_is(&toks[i - 1], '.')
                && i + 1 < toks.len()
                && punct_is(&toks[i + 1], '(')
            {
                // `now.since(start).0` — the `.0` lands after the closing
                // paren of this very call.
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < toks.len() {
                    if punct_is(&toks[j], '(') {
                        depth += 1;
                    } else if punct_is(&toks[j], ')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                if j + 2 < toks.len() && punct_is(&toks[j + 1], '.') && num_is(&toks[j + 2], "0") {
                    let d = fire(
                        &mut allows,
                        &structure,
                        &toks,
                        RULE_TIME_UNITS,
                        i,
                        "raw `.0` escape of a `.since(..)` duration: use `.as_nanos()`".to_string(),
                    );
                    diags.extend(d);
                }
            }
            // (b) time-named declaration with a bare primitive type:
            // `deadline_ns: u64` in a struct field or binding.
            if timeish_ident(id)
                && i + 2 < toks.len()
                && punct_is(&toks[i + 1], ':')
                && !punct_is(&toks[i + 2], ':')
                && matches!(&toks[i + 2].kind,
                    TokKind::Ident(ty) if ty == "u64" || ty == "u32" || ty == "i64" || ty == "f64")
                && (i == 0 || !punct_is(&toks[i - 1], ':'))
            {
                let ty = match &toks[i + 2].kind {
                    TokKind::Ident(t) => t.clone(),
                    _ => unreachable!("guarded by matches! above"),
                };
                let d = fire(
                    &mut allows,
                    &structure,
                    &toks,
                    RULE_TIME_UNITS,
                    i,
                    format!(
                        "`{id}: {ty}` declares a simulated time as a bare primitive; \
                         use SimTime / SimDuration so units survive crate boundaries"
                    ),
                );
                diags.extend(d);
            }
            // (c) `pub fn …(…, bytes: f64/u64, …)` boundary parameter.
            if id == "pub" && i + 1 < toks.len() && ident_is(&toks[i + 1], "fn") {
                // Scan the parameter list of this fn.
                let mut j = i + 2;
                while j < toks.len() && !punct_is(&toks[j], '(') {
                    j += 1;
                }
                if j < toks.len() {
                    let params = first_arg_span(&toks, j);
                    for k in params.0..params.1 {
                        if ident_is(&toks[k], "bytes")
                            && k + 2 < toks.len()
                            && punct_is(&toks[k + 1], ':')
                            && matches!(&toks[k + 2].kind,
                                TokKind::Ident(ty) if ty == "f64" || ty == "u64")
                        {
                            let d = fire(
                                &mut allows,
                                &structure,
                                &toks,
                                RULE_TIME_UNITS,
                                k,
                                "`bytes: f64` on a pub fn boundary is indistinguishable \
                                 from a rate or a fraction at the callsite; take \
                                 `memres_des::Bytes` and unwrap with `.get()` inside"
                                    .to_string(),
                            );
                            diags.extend(d);
                        }
                    }
                }
            }
        }
        // ---- R7: float accumulation over map iteration.
        if rules.float_order {
            let is_acc = (id == "sum" || id == "product" || id == "fold")
                && i > 0
                && punct_is(&toks[i - 1], '.')
                && i + 1 < toks.len()
                && punct_is(&toks[i + 1], '(');
            if is_acc {
                let (s, e) = structure.stmt_span[i];
                let stmt_toks = &toks[s..=e];
                let over_map = stmt_toks.windows(2).any(|w| {
                    (ident_is(&w[0], "values") || ident_is(&w[0], "keys")) && punct_is(&w[1], '(')
                });
                if over_map {
                    let d = fire(
                        &mut allows,
                        &structure,
                        &toks,
                        RULE_FLOAT_ORDER,
                        i,
                        format!(
                            "`.{id}()` over map iteration: accumulation order is only \
                             deterministic because R1 forces DetMap/DetSet — state that \
                             with `// lint:allow(float-order): <why the order is fixed>`"
                        ),
                    );
                    diags.extend(d);
                }
            }
            // `+=` inside a `for … in …values()/keys()` loop body.
            if id == "for" {
                // Loop header: tokens up to the opening `{`.
                let mut j = i + 1;
                let mut saw_map_iter = false;
                while j + 1 < toks.len() && !punct_is(&toks[j], '{') {
                    if (ident_is(&toks[j], "values") || ident_is(&toks[j], "keys"))
                        && punct_is(&toks[j + 1], '(')
                    {
                        saw_map_iter = true;
                    }
                    j += 1;
                }
                if saw_map_iter && j < toks.len() {
                    // Body: to the matching `}`.
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < toks.len() {
                        if punct_is(&toks[k], '{') {
                            depth += 1;
                        } else if punct_is(&toks[k], '}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if punct_is(&toks[k], '+')
                            && k + 1 < toks.len()
                            && punct_is(&toks[k + 1], '=')
                            && toks[k].line == toks[k + 1].line
                            && toks[k].col + 1 == toks[k + 1].col
                        {
                            let d = fire(
                                &mut allows,
                                &structure,
                                &toks,
                                RULE_FLOAT_ORDER,
                                k,
                                "`+=` accumulation inside a loop over map values/keys: \
                                 the order is only deterministic because R1 forces \
                                 DetMap — state that with \
                                 `// lint:allow(float-order): <why the order is fixed>`"
                                    .to_string(),
                            );
                            diags.extend(d);
                        }
                        k += 1;
                    }
                }
            }
        }
    }

    // Hygiene: an allow that matched nothing is stale and must go. Allows
    // inside test regions are exempt (the rules themselves skip test code).
    let masked_lines: Vec<(u32, u32)> = {
        let mut spans = Vec::new();
        let mut j = 0usize;
        while j < toks.len() {
            if mask[j] {
                let start = toks[j].line;
                while j < toks.len() && mask[j] {
                    j += 1;
                }
                let end = if j > 0 { toks[j - 1].line } else { start };
                spans.push((start, end));
            } else {
                j += 1;
            }
        }
        spans
    };
    for a in &allows {
        let in_test = masked_lines
            .iter()
            .any(|&(s, e)| a.line >= s && a.line <= e);
        if !a.used && !in_test {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: 1,
                rule: "unused-allow".to_string(),
                message: format!(
                    "lint:allow({}) matches no violation on this line, the next line, \
                     or its statement; remove it",
                    a.rule
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    diags
}

/// Token index span `(start, end)` (exclusive end) of the parenthesized
/// region opening at `open`.
fn first_arg_span(toks: &[Tok], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if punct_is(&toks[j], '(') {
            depth += 1;
        } else if punct_is(&toks[j], ')') {
            depth -= 1;
            if depth == 0 {
                return (open + 1, j);
            }
        }
        j += 1;
    }
    (open + 1, toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// v1 rule set (R1–R3) — keeps the v1 fixture expectations exact.
    fn sim_rules() -> RuleSet {
        RuleSet {
            hash: true,
            clock: true,
            io: true,
            ..RuleSet::none()
        }
    }

    fn panic_rules() -> RuleSet {
        RuleSet {
            panic: true,
            ..sim_rules()
        }
    }

    fn only_event_past() -> RuleSet {
        RuleSet {
            event_past: true,
            ..RuleSet::none()
        }
    }

    fn only_time_units() -> RuleSet {
        RuleSet {
            time_units: true,
            ..RuleSet::none()
        }
    }

    fn only_float_order() -> RuleSet {
        RuleSet {
            float_order: true,
            ..RuleSet::none()
        }
    }

    // ------------------------------------------------ known-bad fixtures

    #[test]
    fn bad_hashmap_use_fires() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_HASH));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn bad_hashset_fires() {
        let src = "fn f(s: &std::collections::HashSet<u8>) {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("DetSet"));
    }

    #[test]
    fn bad_instant_and_std_time_fire() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert!(d.iter().any(|d| d.rule == RULE_CLOCK));
    }

    #[test]
    fn bad_entropy_fires() {
        for src in [
            "fn f() { let r = rand::rngs::SmallRng::from_entropy(); }\n",
            "fn f() { let r = rand::thread_rng(); }\n",
            "fn f() { let t = SystemTime::now(); }\n",
        ] {
            let d = scan_source("x.rs", src, sim_rules());
            assert_eq!(d.len(), 1, "{src}");
            assert_eq!(d[0].rule, RULE_CLOCK);
        }
    }

    #[test]
    fn bad_fs_and_net_fire() {
        let src = "fn f() { std::fs::write(\"/tmp/x\", b\"y\").unwrap(); }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_IO);
        let src = "use std::net::TcpStream;\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 2, "path + type ident: {d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_IO));
    }

    #[test]
    fn bad_panic_paths_fire() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        let d = scan_source("world.rs", src, panic_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_PANIC);
        let src = "fn f(x: Option<u8>) { x.expect(\"set\"); }\n";
        assert_eq!(scan_source("w.rs", src, panic_rules()).len(), 1);
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(scan_source("w.rs", src, panic_rules()).len(), 1);
    }

    #[test]
    fn bad_allow_without_reason_fires() {
        let src = "fn f() {} // lint:allow(panic):   \n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-allow");
        assert!(d[0].message.contains("empty reason"));
    }

    #[test]
    fn bad_allow_unknown_rule_fires() {
        let src = "fn f() {} // lint:allow(everything): because\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bad-allow");
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn bad_allow_knows_v2_rule_names() {
        // The v2 rules are legal allow targets; the grammar error message
        // enumerates all seven.
        for rule in ALL_RULES {
            let src = format!("// lint:allow({rule}): reason\nfn f() {{}}\n");
            let d = scan_source("x.rs", &src, RuleSet::none());
            assert!(d.iter().all(|d| d.rule == "unused-allow"), "{rule}: {d:?}");
        }
    }

    #[test]
    fn unused_allow_fires() {
        let src = "// lint:allow(hash-order): stale escape\nfn f() {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused-allow");
    }

    // --------------------------------------------- R5 event-past fixtures

    #[test]
    fn bad_raw_timestamp_schedule_fires() {
        let src = "fn f(&mut self, out: &mut Outbox, t: SimTime) {\n\
                   \x20   out.at(t, Ev::Wake);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_EVENT_PAST);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn bad_queue_push_raw_fires_but_vec_push_does_not() {
        let src = "fn f(&mut self, t: SimTime, e: Ev) { self.queue.push(t, e); }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert_eq!(d.len(), 1, "{d:?}");
        let src = "fn f(v: &mut Vec<u8>, t: u8) { v.push(t); }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
    }

    #[test]
    fn good_now_derived_schedules_are_clean() {
        for call in [
            "out.at(now, Ev::Wake)",
            "out.at(now + d, Ev::Wake)",
            "out.at(self.now + d, Ev::Wake)",
            "out.at(t.max(now), Ev::Wake)",
            "out.at(t.max(self.now), Ev::Wake)",
        ] {
            let src = format!(
                "fn f(&mut self, out: &mut Outbox, now: SimTime, d: SimDuration, t: SimTime) {{\n\
                 \x20   {call};\n\
                 }}\n"
            );
            let d = scan_source("x.rs", &src, only_event_past());
            assert!(d.is_empty(), "{call}: {d:?}");
        }
    }

    #[test]
    fn good_let_bound_local_derived_from_now_is_clean() {
        let src = "fn f(&mut self, out: &mut Outbox, now: SimTime, d: SimDuration) {\n\
                   \x20   let finish = now + d;\n\
                   \x20   out.at(finish, Ev::Wake);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert!(d.is_empty(), "{d:?}");
        // A clamp inside the binding also counts.
        let src = "fn f(&mut self, out: &mut Outbox, now: SimTime, t0: SimTime) {\n\
                   \x20   let mut when = t0.max(now);\n\
                   \x20   out.at(when, Ev::Wake);\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
    }

    #[test]
    fn good_guarded_local_is_clean() {
        // `now < t` on the path to the schedule proves t is in the future.
        let src = "fn f(&mut self, out: &mut Outbox, now: SimTime, t: SimTime) {\n\
                   \x20   if now < t {\n\
                   \x20       out.at(t, Ev::Wake);\n\
                   \x20   }\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
        let src = "fn f(&mut self, out: &mut Outbox, now: SimTime, t: SimTime) {\n\
                   \x20   if t >= now {\n\
                   \x20       out.at(t, Ev::Wake);\n\
                   \x20   }\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
    }

    #[test]
    fn bad_binding_not_from_now_still_fires() {
        // The binding exists but derives from something other than `now`.
        let src = "fn f(&mut self, out: &mut Outbox, base: SimTime, d: SimDuration) {\n\
                   \x20   let t = base + d;\n\
                   \x20   out.at(t, Ev::Wake);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_EVENT_PAST);
    }

    #[test]
    fn good_binding_in_other_fn_does_not_leak() {
        // A `now`-derived binding of the same name in a *different* function
        // must not vouch for this one.
        let src = "fn g(now: SimTime, d: SimDuration) -> SimTime { let t = now + d; t }\n\
                   fn f(&mut self, out: &mut Outbox, t: SimTime) {\n\
                   \x20   out.at(t, Ev::Wake);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn good_allowed_event_past_is_clean() {
        let src = "fn f(&mut self, out: &mut Outbox, t: SimTime) {\n\
                   \x20   // lint:allow(event-past): t is the subsystem clock, which trails now\n\
                   \x20   out.at(t, Ev::Wake);\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
    }

    #[test]
    fn good_flow_open_calls_are_checked() {
        let src = "fn f(&mut self, net: &mut FlowNet, t: SimTime) {\n\
                   \x20   net.open_flow(t, 0, 1, 100.0, 7);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert_eq!(d.len(), 1, "{d:?}");
        let src = "fn f(&mut self, net: &mut FlowNet, now: SimTime) {\n\
                   \x20   net.open_flow(now, 0, 1, 100.0, 7);\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_event_past()).is_empty());
    }

    // -------------------------------------------- R6 time-units fixtures

    #[test]
    fn bad_raw_newtype_escape_fires() {
        for expr in ["now.0", "deadline.0", "queued_at.0", "last_seen_at.0"] {
            let src = format!("fn f() -> u64 {{ {expr} }}\n");
            let d = scan_source("x.rs", &src, only_time_units());
            assert_eq!(d.len(), 1, "{expr}: {d:?}");
            assert_eq!(d[0].rule, RULE_TIME_UNITS);
            assert!(d[0].message.contains("as_nanos"), "{d:?}");
        }
    }

    #[test]
    fn bad_since_escape_fires() {
        let src = "fn f(now: SimTime, start: SimTime) -> u64 { now.since(start).0 }\n";
        let d = scan_source("x.rs", src, only_time_units());
        // `now.since(...)` itself is not `now.0`, but the trailing `.0` is.
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("since"), "{d:?}");
    }

    #[test]
    fn good_as_nanos_is_clean() {
        let src = "fn f(now: SimTime, start: SimTime) -> u64 { now.since(start).as_nanos() }\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
        // Non-time-ish tuple access is fine.
        let src = "fn f(pair: (f64, f64)) -> f64 { pair.0 }\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
    }

    #[test]
    fn bad_primitive_time_declaration_fires() {
        for decl in [
            "struct S { deadline_ns: u64 }",
            "struct S { queued_at: f64 }",
            "fn f(retry_until: u64) {}",
        ] {
            let src = format!("{decl}\n");
            let d = scan_source("x.rs", &src, only_time_units());
            assert_eq!(d.len(), 1, "{decl}: {d:?}");
            assert_eq!(d[0].rule, RULE_TIME_UNITS);
        }
    }

    #[test]
    fn good_newtype_time_declaration_is_clean() {
        let src = "struct S { deadline: SimTime, queued_at: SimTime, wait: SimDuration }\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
        // A path segment named like a variant (`Ev::at`) is not a declaration.
        let src = "fn f() -> u32 { Foo::at::<u32>() }\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
    }

    #[test]
    fn bad_pub_fn_bytes_param_fires() {
        let src = "pub fn write(&mut self, file: FileId, bytes: f64) {}\n";
        let d = scan_source("x.rs", src, only_time_units());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("memres_des::Bytes"), "{d:?}");
        let src = "pub fn write(&mut self, file: FileId, bytes: u64) {}\n";
        assert_eq!(scan_source("x.rs", src, only_time_units()).len(), 1);
    }

    #[test]
    fn good_bytes_newtype_param_is_clean() {
        let src = "pub fn write(&mut self, file: FileId, bytes: Bytes) {}\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
        // Private helpers may unwrap to f64 internally.
        let src = "fn write_inner(&mut self, bytes: f64) {}\n";
        assert!(scan_source("x.rs", src, only_time_units()).is_empty());
    }

    // -------------------------------------------- R7 float-order fixtures

    #[test]
    fn bad_sum_over_map_values_fires() {
        let src = "fn f(m: &DetMap<u32, f64>) -> f64 { m.values().sum() }\n";
        let d = scan_source("x.rs", src, only_float_order());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_FLOAT_ORDER);
    }

    #[test]
    fn bad_fold_over_map_values_fires() {
        let src = "fn f(m: &DetMap<u32, f64>) -> f64 {\n\
                   \x20   m.values().fold(0.0, |a, b| a + b)\n\
                   }\n";
        assert_eq!(scan_source("x.rs", src, only_float_order()).len(), 1);
    }

    #[test]
    fn bad_accumulate_loop_over_map_fires() {
        let src = "fn f(m: &DetMap<u32, f64>) -> f64 {\n\
                   \x20   let mut total = 0.0;\n\
                   \x20   for v in m.values() {\n\
                   \x20       total += v;\n\
                   \x20   }\n\
                   \x20   total\n\
                   }\n";
        let d = scan_source("x.rs", src, only_float_order());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn good_slice_sum_is_clean() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum() }\n";
        assert!(scan_source("x.rs", src, only_float_order()).is_empty());
        let src = "fn f(v: &Vec<f64>) -> f64 { let mut t = 0.0; for x in v { t += x; } t }\n";
        assert!(scan_source("x.rs", src, only_float_order()).is_empty());
    }

    #[test]
    fn good_allowed_map_sum_is_clean() {
        let src = "fn f(m: &DetMap<u32, f64>) -> f64 {\n\
                   \x20   // lint:allow(float-order): DetMap iterates in insertion order\n\
                   \x20   m.values().sum()\n\
                   }\n";
        assert!(scan_source("x.rs", src, only_float_order()).is_empty());
    }

    // --------------------------------------------- allow-scope fixtures

    #[test]
    fn good_allow_covers_whole_multiline_statement() {
        // The allow trails a *different* line of the statement than the
        // violating token: the statement span must connect them.
        let src = "fn f(&mut self, out: &mut Outbox, t: SimTime) {\n\
                   \x20   out.at(\n\
                   \x20       t, // lint:allow(event-past): clamped by the caller\n\
                   \x20       Ev::Wake,\n\
                   \x20   );\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_allow_above_multiline_statement_covers_it() {
        // Allow on the line directly above the statement start; the
        // violating token sits two lines below the annotation.
        let src = "fn f(&mut self, t: SimTime, e: Ev) {\n\
                   \x20   // lint:allow(event-past): heap rebuild replays an already-validated schedule\n\
                   \x20   self.queue\n\
                   \x20       .push(t, e);\n\
                   }\n";
        let d = scan_source("x.rs", src, only_event_past());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_allow_on_multiline_statement_fires() {
        // Same shape, but the allow names a rule that never fires in the
        // statement: it must be reported stale, not silently absorbed.
        let src = "fn f(&mut self, out: &mut Outbox, now: SimTime) {\n\
                   \x20   out.at(\n\
                   \x20       now, // lint:allow(hash-order): wrong rule for this statement\n\
                   \x20       Ev::Wake,\n\
                   \x20   );\n\
                   }\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unused-allow");
    }

    #[test]
    fn good_stacked_allows_each_consume_their_own() {
        let src = "fn f(a: Option<u8>, b: Option<u8>) {\n\
                   \x20   a.unwrap(); // lint:allow(panic): a is checked by the caller\n\
                   \x20   b.unwrap(); // lint:allow(panic): b is checked by the caller\n\
                   }\n";
        let d = scan_source("w.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    // ----------------------------------------------- known-good fixtures

    #[test]
    fn good_detmap_is_clean() {
        let src = "use memres_des::{DetMap, DetSet};\nfn f() { let m: DetMap<u32, u32> = DetMap::new(); }\n";
        assert!(scan_source("x.rs", src, sim_rules()).is_empty());
    }

    #[test]
    fn good_comments_and_strings_never_fire() {
        let src = "// A HashMap would break determinism; Instant::now too.\n\
                   /* std::fs::write(\"x\") in a block comment */\n\
                   fn f() -> &'static str { \"HashMap Instant std::time panic!\" }\n\
                   fn g() { let s = r#\"HashSet SystemTime\"#; let _ = s; }\n";
        let d = scan_source("x.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_allowed_line_is_clean_and_allow_is_consumed() {
        let src = "use std::collections::HashMap; // lint:allow(hash-order): index probed by key, never iterated\n";
        assert!(scan_source("x.rs", src, sim_rules()).is_empty());
        let src = "// lint:allow(panic): completions are pre-filtered, job must exist\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert!(scan_source("w.rs", src, panic_rules()).is_empty());
    }

    #[test]
    fn good_cfg_test_region_is_skipped() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let m: HashMap<u8, u8> = HashMap::new(); m.iter(); panic!(); }\n\
                   }\n";
        let d = scan_source("x.rs", src, panic_rules());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn good_cfg_test_single_item_is_skipped_but_rest_scans() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n\
                   fn f(s: &std::collections::HashSet<u8>) {}\n";
        let d = scan_source("x.rs", src, sim_rules());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn good_lifetimes_and_char_literals_lex() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nfn g() -> char { '\\n' }\n";
        assert!(scan_source("x.rs", src, panic_rules()).is_empty());
    }

    #[test]
    fn good_unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        let d = scan_source("w.rs", src, panic_rules());
        assert!(d.is_empty(), "unwrap_or is not unwrap: {d:?}");
    }

    #[test]
    fn good_numeric_method_calls_lex() {
        // `1.max(2)` must lex as Num(1) . max ( Num(2) ) — not swallow the
        // dot into the literal; `0..n` must not glue into one number.
        let src = "fn f(n: u64) -> u64 { let m = 1.max(2); (0..n).sum::<u64>() + m }\n";
        assert!(scan_source("x.rs", src, sim_rules()).is_empty());
    }

    // --------------------------------------------------- layer map tests

    #[test]
    fn rules_scope_by_layer() {
        let r = rules_for("crates/core/src/world.rs");
        assert!(r.hash && r.clock && r.io && r.panic);
        assert!(r.event_past && r.time_units && r.float_order);
        let r = rules_for("crates/core/src/metrics.rs");
        assert!(r.hash && !r.panic && r.time_units);
        let r = rules_for("crates/net/src/flow.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/storage/src/device.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/lustre/src/lib.rs");
        assert!(r.hash && r.panic);
        let r = rules_for("crates/net/src/lib.rs");
        assert!(r.hash && !r.panic, "only flow.rs is panic-guarded in net");
        let r = rules_for("crates/des/src/det.rs");
        assert!(r.hash && !r.panic);
        let r = rules_for("crates/trace/src/analyze.rs");
        assert!(r.hash && r.clock && r.io && !r.panic);
        // The newtype-defining files keep every rule except R6: their `.0`
        // accesses *are* the implementation.
        let r = rules_for("crates/des/src/time.rs");
        assert!(r.hash && r.event_past && !r.time_units);
        let r = rules_for("crates/des/src/bytes.rs");
        assert!(!r.time_units);
        assert!(rules_for("crates/bench/src/perf.rs").is_empty());
        assert!(rules_for("crates/lint/src/lib.rs").is_empty());
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for("crates/core/tests/engine.rs").is_empty());
        assert!(rules_for("tests/correctness.rs").is_empty());
        let r = rules_for("examples/quickstart.rs");
        assert!(!r.hash && r.clock && r.io && !r.event_past);
        let r = rules_for("src/lib.rs");
        assert!(!r.hash && r.clock && r.io);
        assert!(rules_for("README.md").is_empty());
    }

    // ------------------------------------------------------ output shapes

    #[test]
    fn json_output_shape() {
        let d = vec![Diagnostic {
            file: "a.rs".to_string(),
            line: 3,
            col: 7,
            rule: RULE_HASH.to_string(),
            message: "say \"no\"".to_string(),
        }];
        let j = diagnostics_json(&d);
        assert!(j.contains("\"file\": \"a.rs\""));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\\\"no\\\""));
        assert_eq!(diagnostics_json(&[]), "[]\n");
    }

    #[test]
    fn github_annotation_shape() {
        let d = Diagnostic {
            file: "crates/core/src/world.rs".to_string(),
            line: 12,
            col: 5,
            rule: RULE_EVENT_PAST.to_string(),
            message: "raw timestamp".to_string(),
        };
        let g = d.render_github();
        assert!(g.starts_with("::error file=crates/core/src/world.rs,line=12,col=5"));
        assert!(g.contains("title=memres-lint event-past"));
        assert!(g.ends_with("::raw timestamp"));
    }
}
