//! # memres-lustre — Lustre parallel-filesystem model
//!
//! Lustre is the compute-centric storage backend of the paper's Hyperion
//! testbed: a POSIX-compliant object-based parallel filesystem with one
//! MetaData Server (MDS), many Object Storage Servers (OSSes) behind an
//! aggregate 47 GB/s pipe, and a **Distributed Lock Manager** that serializes
//! conflicting accesses. §IV-B shows that the DLM is what makes the
//! `Lustre-shared` shuffle strategy collapse: a fetching task reading a file
//! written by a *remote* node forces the DLM to revoke the writer's locks,
//! flush its cached dirty pages to the OSSes, and only then serve the read —
//! "this sequence of internal operations substantially delays the
//! intermediate data movement", and simultaneous fetch tasks cascade into
//! contention.
//!
//! Division of labour: this crate owns all Lustre *state* — file metadata,
//! stripe layout, per-client write-back caches, dirty page accounting, lock
//! holders, and the MDS op server. Actual byte movement happens on the
//! network fabric (`memres-net`), so state-changing calls return *plans*
//! ([`WritePlan`], [`ReadPlan`]) telling the engine which transfers and
//! metadata operations to issue.

use memres_cluster::NodeId;
use memres_des::det::DetMap;
use memres_des::ps::PsResource;
use memres_des::sim::Gen;
use memres_des::time::{SimDuration, SimTime};
use memres_des::Bytes;

/// A file stored in Lustre.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LustreFile(pub u64);

#[derive(Clone, Debug)]
pub struct LustreConfig {
    /// Sustained metadata operations/sec at the MDS.
    pub mds_ops_per_sec: f64,
    /// Number of OSSes (determines stripe spread; bandwidth is the fabric's).
    pub oss_count: u32,
    /// Stripe size in bytes (default Lustre: 1 MB; large-file shuffle
    /// workloads typically use wider stripes).
    pub stripe_size: f64,
    /// Per-client write-back cache ("dirty pages grant") capacity in bytes.
    pub client_cache_bytes: f64,
    /// Fixed latency of one lock-revocation round trip (client callback +
    /// lock release), excluding the flush data movement.
    pub revoke_latency: SimDuration,
    /// Metadata ops charged for an open/create.
    pub ops_open: f64,
    /// Metadata ops charged per lock acquisition.
    pub ops_lock: f64,
    /// Metadata ops charged per revocation (callback bookkeeping, release,
    /// re-grant).
    pub ops_revoke: f64,
    /// Efficiency of concurrent bulk writes relative to the aggregate read
    /// bandwidth (stripe lock overhead and OSS contention under thousands of
    /// simultaneous writers).
    pub write_efficiency: f64,
    /// Byte-equivalent fixed cost of one client read (RPC round trips,
    /// stripe alignment, readahead misses). This is what makes small input
    /// splits disproportionately expensive on Lustre (paper Fig 5a: going
    /// from 32 MB to 128 MB splits wins 15.9%).
    pub read_overhead_bytes: f64,
}

impl LustreConfig {
    pub fn hyperion() -> Self {
        const MB: f64 = 1024.0 * 1024.0;
        const GB: f64 = 1024.0 * MB;
        LustreConfig {
            mds_ops_per_sec: 40_000.0,
            oss_count: 48,
            stripe_size: 4.0 * MB,
            // Lustre bounds dirty pages per client (max_dirty_mb per OSC);
            // with 48 OSSes this amounts to low single-digit GB per node.
            client_cache_bytes: 1.5 * GB,
            revoke_latency: SimDuration::from_millis(15),
            ops_open: 2.0,
            ops_lock: 1.0,
            ops_revoke: 6.0,
            write_efficiency: 0.65,
            read_overhead_bytes: 6.0 * MB,
        }
    }

    pub fn test_small() -> Self {
        LustreConfig {
            mds_ops_per_sec: 100.0,
            oss_count: 4,
            stripe_size: 64.0,
            client_cache_bytes: 1000.0,
            revoke_latency: SimDuration::from_millis(10),
            ops_open: 2.0,
            ops_lock: 1.0,
            ops_revoke: 6.0,
            write_efficiency: 1.0,
            read_overhead_bytes: 0.0,
        }
    }
}

/// Per-file state. The shuffle workloads write each bucket file from exactly
/// one client, which is the case the DLM model supports; multi-writer files
/// are rejected (the engine never produces them).
#[derive(Debug)]
struct LFile {
    size: f64,
    /// The client that wrote the file, if any (external input files: none).
    writer: Option<NodeId>,
    /// Bytes of the file still resident in the writer's page cache.
    cached: f64,
    /// Cached bytes that are dirty (not yet on the OSSes). `dirty <= cached`.
    dirty: f64,
}

/// What the engine must do to complete a client write.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WritePlan {
    /// Bytes absorbed by the client write-back cache (memory speed).
    pub cached_bytes: f64,
    /// Bytes that must be transferred to the OSSes now (cache overflow).
    pub oss_bytes: f64,
    /// Metadata operations to charge at the MDS.
    pub mds_ops: f64,
}

/// What the engine must do to complete a read.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadPlan {
    /// Bytes served from the reading client's own cache (memory speed).
    pub cache_hit_bytes: f64,
    /// Bytes to read from the OSSes over the Lustre pipe.
    pub oss_bytes: f64,
    /// Metadata operations to charge at the MDS.
    pub mds_ops: f64,
    /// Lock revocation required first: (writer node, dirty bytes to flush
    /// writer→OSS). Empty when no conflicting cached state exists.
    pub revocations: Vec<(NodeId, f64)>,
    /// Fixed revocation round-trip latency to add (once, revocations happen
    /// in parallel but share the round trip).
    pub revoke_latency: SimDuration,
}

/// The Lustre installation: metadata server + file/lock/cache state.
pub struct Lustre {
    cfg: LustreConfig,
    mds: PsResource<u64>,
    files: DetMap<LustreFile, LFile>,
    /// Dirty + clean cached bytes per client (for the grant limit).
    client_cache_used: DetMap<NodeId, f64>,
    gen: Gen,
    /// Optional trace sink: DLM lock grants, revocations and releases are
    /// reported to it (DESIGN.md §4.11). `None` costs nothing.
    tracer: Option<memres_trace::SharedSink>,
}

impl Lustre {
    pub fn new(cfg: LustreConfig) -> Self {
        let mds = PsResource::new(cfg.mds_ops_per_sec);
        Lustre {
            cfg,
            mds,
            files: DetMap::new(),
            client_cache_used: DetMap::new(),
            gen: Gen::default(),
            tracer: None,
        }
    }

    /// Attach a trace sink; DLM lock transitions are reported to it.
    pub fn set_tracer(&mut self, sink: memres_trace::SharedSink) {
        self.tracer = Some(sink);
    }

    #[inline]
    fn trace(&self, at: SimTime, ev: memres_trace::TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().emit(at, ev);
        }
    }

    pub fn config(&self) -> &LustreConfig {
        &self.cfg
    }

    /// Register a pre-existing input file (e.g. the benchmark dataset laid
    /// out on Lustre before the job): no client has it cached.
    pub fn create_external(&mut self, file: LustreFile, size: f64) {
        assert!(size >= 0.0);
        let prev = self.files.insert(
            file,
            LFile {
                size,
                writer: None,
                cached: 0.0,
                dirty: 0.0,
            },
        );
        assert!(prev.is_none(), "file {file:?} already exists");
    }

    pub fn file_size(&self, file: LustreFile) -> Option<f64> {
        self.files.get(&file).map(|f| f.size)
    }

    /// Stripe a file of `size` bytes over OSSes: how many stripes/OSS objects
    /// it touches (drives metadata op counts for very wide files).
    pub fn stripe_count(&self, size: f64) -> u32 {
        ((size / self.cfg.stripe_size).ceil() as u32).clamp(1, self.cfg.oss_count)
    }

    fn cache_used(&self, client: NodeId) -> f64 {
        self.client_cache_used.get(&client).copied().unwrap_or(0.0)
    }

    /// Client `writer` writes a new file of `bytes`. Returns the movement
    /// plan; cache/dirty accounting is applied immediately.
    ///
    /// Matching observed Lustre behaviour, as much of the write as fits the
    /// client's dirty-pages grant stays cached (and dirty) locally; the rest
    /// streams through to the OSSes.
    pub fn write(
        &mut self,
        now: SimTime,
        writer: NodeId,
        file: LustreFile,
        bytes: Bytes,
    ) -> WritePlan {
        let bytes = bytes.get();
        assert!(bytes >= 0.0);
        assert!(
            !self.files.contains_key(&file),
            "rewrite of {file:?}: shuffle buckets are write-once"
        );
        let free = (self.cfg.client_cache_bytes - self.cache_used(writer)).max(0.0);
        let cached = bytes.min(free);
        let oss = bytes - cached;
        *self.client_cache_used.entry(writer).or_insert(0.0) += cached;
        self.files.insert(
            file,
            LFile {
                size: bytes,
                writer: Some(writer),
                cached,
                dirty: cached,
            },
        );
        self.trace(
            now,
            memres_trace::TraceEvent::LockAcquire {
                file: file.0,
                client: writer.0,
            },
        );
        self.gen.bump();
        WritePlan {
            cached_bytes: cached,
            oss_bytes: oss,
            mds_ops: self.cfg.ops_open + self.cfg.ops_lock * self.stripe_count(bytes) as f64,
        }
    }

    /// Append `bytes` to an existing file previously written by the same
    /// client (shuffle stores aggregate all ShuffleMapTask output of a node
    /// into one per-node file). Creates the file when absent.
    pub fn append(
        &mut self,
        now: SimTime,
        writer: NodeId,
        file: LustreFile,
        bytes: Bytes,
    ) -> WritePlan {
        let bytes = bytes.get();
        assert!(bytes >= 0.0);
        if !self.files.contains_key(&file) {
            return self.write(now, writer, file, Bytes(bytes));
        }
        let free = (self.cfg.client_cache_bytes - self.cache_used(writer)).max(0.0);
        // lint:allow(panic): contains_key checked at the top of append.
        let f = self.files.get_mut(&file).expect("checked above");
        assert_eq!(f.writer, Some(writer), "append by non-writer of {file:?}");
        let cached = bytes.min(free);
        let oss = bytes - cached;
        f.size += bytes;
        f.cached += cached;
        f.dirty += cached;
        *self.client_cache_used.entry(writer).or_insert(0.0) += cached;
        self.trace(
            now,
            memres_trace::TraceEvent::LockAcquire {
                file: file.0,
                client: writer.0,
            },
        );
        self.gen.bump();
        WritePlan {
            cached_bytes: cached,
            oss_bytes: oss,
            // Appends reuse the open file: lock extension only.
            mds_ops: self.cfg.ops_lock,
        }
    }

    /// Fraction of `file` resident in its writer's cache (0 for external
    /// or revoked files) — feeds the Lustre-local serving-rate model.
    pub fn cached_fraction(&self, file: LustreFile) -> f64 {
        self.files
            .get(&file)
            .map(|f| if f.size > 0.0 { f.cached / f.size } else { 0.0 })
            .unwrap_or(0.0)
    }

    /// Dirty bytes of one file (what a revocation would flush).
    pub fn dirty_of(&self, file: LustreFile) -> f64 {
        self.files.get(&file).map(|f| f.dirty).unwrap_or(0.0)
    }

    /// Client `reader` reads `bytes` of `file`.
    ///
    /// * Reader == writer (the `Lustre-local` fast path): cached bytes are a
    ///   memory-speed hit; no lock conflict, minimal metadata traffic.
    /// * Reader != writer (`Lustre-shared`): the DLM must revoke the writer's
    ///   write locks; all dirty bytes are flushed to the OSSes before the
    ///   read can be served, and the writer's cached copy is invalidated.
    pub fn read(
        &mut self,
        now: SimTime,
        reader: NodeId,
        file: LustreFile,
        bytes: Bytes,
    ) -> ReadPlan {
        let bytes = bytes.get();
        let ops_lock = self.cfg.ops_lock;
        let ops_revoke = self.cfg.ops_revoke;
        let revoke_latency = self.cfg.revoke_latency;
        let f = self
            .files
            .get_mut(&file)
            // Readers pass files the engine previously created via
            // write(); a miss means the map-output registry is corrupt.
            // lint:allow(panic): files are registered by write() before any read
            .unwrap_or_else(|| panic!("read of unknown {file:?}"));
        assert!(
            bytes <= f.size * (1.0 + 1e-9) + 1.0,
            "read past EOF: {bytes} of {}",
            f.size
        );
        let plan = match f.writer {
            Some(w) if w == reader => {
                // Local path: hit the writer's own cache.
                let hit = f.cached.min(bytes);
                ReadPlan {
                    cache_hit_bytes: hit,
                    oss_bytes: bytes - hit,
                    mds_ops: ops_lock,
                    revocations: Vec::new(),
                    revoke_latency: SimDuration::ZERO,
                }
            }
            Some(w) => {
                // Conflicting access: revoke + flush + read from OSS.
                let flush = f.dirty;
                let revocations = if flush > 0.0 || f.cached > 0.0 {
                    vec![(w, flush)]
                } else {
                    Vec::new()
                };
                let had_conflict = !revocations.is_empty();
                // Invalidate the writer's cache.
                let released = f.cached;
                f.cached = 0.0;
                f.dirty = 0.0;
                if released > 0.0 {
                    let used = self.client_cache_used.entry(w).or_insert(0.0);
                    *used = (*used - released).max(0.0);
                }
                ReadPlan {
                    cache_hit_bytes: 0.0,
                    oss_bytes: bytes,
                    mds_ops: ops_lock + if had_conflict { ops_revoke } else { 0.0 },
                    revocations,
                    revoke_latency: if had_conflict {
                        revoke_latency
                    } else {
                        SimDuration::ZERO
                    },
                }
            }
            None => ReadPlan {
                cache_hit_bytes: 0.0,
                oss_bytes: bytes,
                mds_ops: ops_lock,
                revocations: Vec::new(),
                revoke_latency: SimDuration::ZERO,
            },
        };
        for &(_, flush) in &plan.revocations {
            self.trace(
                now,
                memres_trace::TraceEvent::LockRevoke {
                    file: file.0,
                    dirty_bytes: Bytes(flush),
                },
            );
        }
        self.trace(
            now,
            memres_trace::TraceEvent::LockAcquire {
                file: file.0,
                client: reader.0,
            },
        );
        self.gen.bump();
        plan
    }

    /// Explicitly revoke the writer's locks on `file` (the engine uses this
    /// when simultaneous fetch tasks force a mass flush): invalidates the
    /// writer's cached copy and returns the dirty bytes the caller must move
    /// writer→OSS. Idempotent.
    pub fn revoke(&mut self, now: SimTime, file: LustreFile) -> f64 {
        let Some(f) = self.files.get_mut(&file) else {
            return 0.0;
        };
        let dirty = f.dirty;
        let released = f.cached;
        f.dirty = 0.0;
        f.cached = 0.0;
        let writer = f.writer;
        if released > 0.0 {
            if let Some(w) = writer {
                let used = self.client_cache_used.entry(w).or_insert(0.0);
                *used = (*used - released).max(0.0);
            }
            self.gen.bump();
        }
        if released > 0.0 || dirty > 0.0 {
            self.trace(
                now,
                memres_trace::TraceEvent::LockRevoke {
                    file: file.0,
                    dirty_bytes: Bytes(dirty),
                },
            );
            self.trace(now, memres_trace::TraceEvent::LockRelease { file: file.0 });
        }
        dirty
    }

    /// Drop a file (job cleanup), releasing any cache it pinned.
    pub fn delete(&mut self, file: LustreFile) {
        if let Some(f) = self.files.remove(&file) {
            if let (Some(w), true) = (f.writer, f.cached > 0.0) {
                let used = self.client_cache_used.entry(w).or_insert(0.0);
                *used = (*used - f.cached).max(0.0);
            }
            self.gen.bump();
        }
    }

    // --- MDS op server (polled like every other component) ---

    /// Charge `ops` metadata operations; `tag` returns via [`Lustre::poll`]
    /// when the MDS has processed them (PS-shared with all concurrent ops —
    /// this is where the Lustre-shared cascade serializes).
    pub fn submit_mds(&mut self, now: SimTime, ops: f64, tag: u64) {
        self.mds.add(now, ops, tag);
        self.gen.bump();
    }

    pub fn poll(&mut self, now: SimTime) -> Vec<u64> {
        let done: Vec<u64> = self.mds.poll(now).into_iter().map(|(_, t)| t).collect();
        if !done.is_empty() {
            self.gen.bump();
        }
        done
    }

    pub fn next_event(&self) -> Option<SimTime> {
        self.mds.next_completion()
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    /// Outstanding metadata operations (contention diagnostic).
    pub fn mds_backlog(&self) -> f64 {
        self.mds.backlog()
    }

    /// Dirty bytes a client currently has pinned (diagnostic/test hook).
    pub fn client_dirty(&self, client: NodeId) -> f64 {
        // lint:allow(float-order): DetMap::values() iterates in insertion order (R1), so this sum is deterministic
        self.files
            .values()
            .filter(|f| f.writer == Some(client))
            .map(|f| f.dirty)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lustre() -> Lustre {
        Lustre::new(LustreConfig::test_small())
    }

    #[test]
    fn write_fitting_cache_stays_dirty_locally() {
        let mut l = lustre();
        let plan = l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(500.0));
        assert_eq!(plan.cached_bytes, 500.0);
        assert_eq!(plan.oss_bytes, 0.0);
        assert!(plan.mds_ops >= 2.0);
        assert_eq!(l.client_dirty(NodeId(0)), 500.0);
    }

    #[test]
    fn write_overflowing_cache_streams_to_oss() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(800.0));
        let plan = l.write(SimTime::ZERO, NodeId(0), LustreFile(2), Bytes(500.0));
        // 1000-byte grant: only 200 left.
        assert_eq!(plan.cached_bytes, 200.0);
        assert_eq!(plan.oss_bytes, 300.0);
    }

    #[test]
    fn local_read_hits_writer_cache() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(3), LustreFile(1), Bytes(400.0));
        let plan = l.read(SimTime::ZERO, NodeId(3), LustreFile(1), Bytes(400.0));
        assert_eq!(plan.cache_hit_bytes, 400.0);
        assert_eq!(plan.oss_bytes, 0.0);
        assert!(plan.revocations.is_empty());
    }

    #[test]
    fn shared_read_forces_revocation_and_flush() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(400.0));
        let plan = l.read(SimTime::ZERO, NodeId(7), LustreFile(1), Bytes(400.0));
        assert_eq!(plan.cache_hit_bytes, 0.0);
        assert_eq!(plan.oss_bytes, 400.0);
        assert_eq!(plan.revocations, vec![(NodeId(0), 400.0)]);
        assert!(plan.revoke_latency > SimDuration::ZERO);
        // Writer cache invalidated: a second shared read needs no revocation.
        let plan2 = l.read(SimTime::ZERO, NodeId(8), LustreFile(1), Bytes(400.0));
        assert!(plan2.revocations.is_empty());
        assert_eq!(plan2.oss_bytes, 400.0);
        assert_eq!(l.client_dirty(NodeId(0)), 0.0);
    }

    #[test]
    fn revocation_releases_cache_grant() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(1000.0)); // grant exhausted
        l.read(SimTime::ZERO, NodeId(5), LustreFile(1), Bytes(1000.0)); // revoke
                                                                        // Grant is free again: a new write caches fully.
        let plan = l.write(SimTime::ZERO, NodeId(0), LustreFile(2), Bytes(900.0));
        assert_eq!(plan.cached_bytes, 900.0);
    }

    #[test]
    fn external_files_read_from_oss_without_locks() {
        let mut l = lustre();
        l.create_external(LustreFile(9), 1234.0);
        assert_eq!(l.file_size(LustreFile(9)), Some(1234.0));
        let plan = l.read(SimTime::ZERO, NodeId(2), LustreFile(9), Bytes(1000.0));
        assert_eq!(plan.oss_bytes, 1000.0);
        assert!(plan.revocations.is_empty());
        assert_eq!(plan.revoke_latency, SimDuration::ZERO);
    }

    #[test]
    fn mds_serializes_concurrent_ops() {
        let mut l = lustre();
        // 100 ops/s capacity; 10 requests of 10 ops each -> all done at t=1.
        for i in 0..10 {
            l.submit_mds(SimTime::ZERO, 10.0, i);
        }
        let t = l.next_event().unwrap();
        let done = l.poll(t);
        assert_eq!(done.len(), 10);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn delete_releases_cache() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(600.0));
        l.delete(LustreFile(1));
        let plan = l.write(SimTime::ZERO, NodeId(0), LustreFile(2), Bytes(1000.0));
        assert_eq!(plan.cached_bytes, 1000.0);
        assert_eq!(l.file_size(LustreFile(1)), None);
    }

    #[test]
    fn stripe_count_scales_with_size() {
        let l = lustre();
        assert_eq!(l.stripe_count(10.0), 1);
        assert_eq!(l.stripe_count(128.0), 2);
        // Clamped at OSS count.
        assert_eq!(l.stripe_count(1e9), 4);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn rewrite_rejected() {
        let mut l = lustre();
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(10.0));
        l.write(SimTime::ZERO, NodeId(0), LustreFile(1), Bytes(10.0));
    }
}
