//! Deterministic data generators for the real-data benchmark variants.

use memres_core::value::{Record, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "data", "node", "spark",
    "lustre", "shuffle", "memory", "cluster", "task", "stage", "block", "cache", "stream",
];

/// Random text lines; roughly every 20th line contains "fox" via the word
/// table, so greps have deterministic hits.
pub fn text_lines(lines: u64, seed: u64) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e57_da7a);
    (0..lines)
        .map(|i| {
            let len = rng.gen_range(4..12);
            let line: Vec<&str> = (0..len)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
                .collect();
            (Value::I64(i as i64), Value::str(line.join(" ")))
        })
        .collect()
}

/// KV pairs with keys drawn uniformly from `0..cardinality`.
pub fn kv_pairs(pairs: u64, cardinality: u64, seed: u64) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6b76);
    (0..pairs)
        .map(|_| {
            let k = rng.gen_range(0..cardinality) as i64;
            (Value::I64(k), Value::I64(rng.gen_range(0..1_000_000)))
        })
        .collect()
}

/// KV pairs with Zipf-skewed keys (exponent `s`), for imbalance studies.
pub fn kv_pairs_zipf(pairs: u64, cardinality: u64, s: f64, seed: u64) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x21bf);
    // Precompute CDF.
    let weights: Vec<f64> = (1..=cardinality)
        .map(|k| 1.0 / (k as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(cardinality as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..pairs)
        .map(|_| {
            let u: f64 = rng.gen();
            let k = cdf.partition_point(|&c| c < u) as i64;
            (Value::I64(k), Value::I64(rng.gen_range(0..1_000_000)))
        })
        .collect()
}

/// Labeled points for logistic regression: features ~ U(-1,1), labels from a
/// planted weight vector with alternating signs [1, -1, 1, -1, ...].
pub fn labeled_points(points: u64, dims: usize, seed: u64) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1061);
    let truth: Vec<f64> = (0..dims)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    (0..points)
        .map(|_| {
            let x: Vec<f64> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let margin: f64 = x.iter().zip(truth.iter()).map(|(a, b)| a * b).sum();
            let label = if margin >= 0.0 { 1.0 } else { -1.0 };
            (Value::F64(label), Value::vec(x))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_deterministic_and_has_needles() {
        let a = text_lines(200, 1);
        let b = text_lines(200, 1);
        assert_eq!(a.len(), 200);
        assert_eq!(a[5].1, b[5].1);
        assert!(a.iter().any(|(_, v)| v.as_str().contains("fox")));
    }

    #[test]
    fn kv_keys_within_cardinality() {
        let recs = kv_pairs(1000, 16, 3);
        assert!(recs.iter().all(|(k, _)| (0..16).contains(&k.as_i64())));
        // Roughly uniform: every key appears.
        let mut seen = [false; 16];
        for (k, _) in &recs {
            seen[k.as_i64() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let recs = kv_pairs_zipf(10_000, 100, 1.2, 5);
        let head = recs.iter().filter(|(k, _)| k.as_i64() == 0).count();
        let tail = recs.iter().filter(|(k, _)| k.as_i64() == 99).count();
        assert!(head > tail * 5, "head={head} tail={tail}");
    }

    #[test]
    fn labeled_points_are_separable_by_truth() {
        let recs = labeled_points(500, 4, 9);
        let truth = [1.0, -1.0, 1.0, -1.0];
        for (label, x) in &recs {
            let margin: f64 = x
                .as_vec()
                .iter()
                .zip(truth.iter())
                .map(|(a, b)| a * b)
                .sum();
            assert_eq!(label.as_f64() >= 0.0, margin >= 0.0);
        }
    }
}
