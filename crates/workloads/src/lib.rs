//! # memres-workloads — the paper's three benchmarks (§III-B)
//!
//! * [`GroupBy`] — "a critical operation used by many applications including
//!   kMeans, wordcount, and calculating transitive closure of a graph"; its
//!   intermediate data size equals its input size, which is what makes it the
//!   shuffle/storage probe of §IV-B–§VI.
//! * [`Grep`] — "searches a string that matches a regular expression from a
//!   set of documents"; low computation, tiny intermediate data (1–200 MB),
//!   the storage-architecture probe of §IV-A and Fig 9a.
//! * [`LogisticRegression`] — iterative, compute-intensive, caches its parsed
//!   input in memory across iterations (§II-C, Fig 4c).
//!
//! Each benchmark builds either a **synthetic** job (sizes only — used at the
//! paper's 100 GB–1.5 TB scales) or a **real** job over materialized records
//! (used by tests and examples to validate engine correctness).

pub mod datagen;

use memres_core::rdd::{Action, Dataset, Rdd, SizeModel};
use memres_core::value::{Record, Value};
use memres_des::units::MB;
use std::sync::Arc;

/// Calibrated per-core operator rates (bytes/sec at node speed 1.0).
/// These are the model's analogue of the JVM-era Spark 0.7 throughputs and
/// are the knobs EXPERIMENTS.md documents.
pub mod rates {
    /// Streaming scan + regex match (Grep's map side).
    pub const GREP_SCAN: f64 = 1.6e9;
    /// KV-pair generation/serialization (GroupBy's map side).
    pub const GROUPBY_GEN: f64 = 900.0e6;
    /// Reduce-side grouping of fetched data.
    pub const GROUP_AGG: f64 = 1.0e9;
    /// Logistic-regression gradient: multidimensional vector math per byte —
    /// deliberately low; computation intensity is LR's defining trait.
    pub const LR_GRADIENT: f64 = 28.0e6;
    /// Text parsing into cached point vectors (LR iteration 0 only).
    pub const LR_PARSE: f64 = 350.0e6;
}

/// GroupBy benchmark (Fig 4a): genKV → shuffle → group.
#[derive(Clone, Debug)]
pub struct GroupBy {
    /// Total input bytes ( = intermediate bytes, §III-B).
    pub input_bytes: f64,
    /// Input split size (paper uses 32–256 MB).
    pub split_bytes: f64,
    /// Reduce-side task count (None → one per map task).
    pub reducers: Option<u32>,
}

impl GroupBy {
    pub fn new(input_bytes: f64) -> Self {
        GroupBy {
            input_bytes,
            split_bytes: 256.0 * MB,
            reducers: None,
        }
    }

    pub fn with_split(mut self, split_bytes: f64) -> Self {
        self.split_bytes = split_bytes;
        self
    }

    pub fn with_reducers(mut self, reducers: u32) -> Self {
        self.reducers = Some(reducers);
        self
    }

    pub fn map_tasks(&self) -> u32 {
        (self.input_bytes / self.split_bytes).ceil().max(1.0) as u32
    }

    /// Synthetic TB-scale job. The first stage *generates* its key/value
    /// pairs in memory (paper §III-B): no input storage is read.
    pub fn build(&self) -> Rdd {
        Rdd::source(Dataset::generated(
            self.input_bytes,
            self.split_bytes,
            100.0,
        ))
        .map("genKV", SizeModel::new(1.0, 1.0, rates::GROUPBY_GEN), |r| r)
        .group_by_key(self.reducers, rates::GROUP_AGG)
    }

    /// Real-data variant over generated KV pairs.
    pub fn build_real(&self, pairs: u64, key_cardinality: u64, seed: u64) -> Rdd {
        let recs = datagen::kv_pairs(pairs, key_cardinality, seed);
        let parts = self.map_tasks().max(1) as usize;
        Rdd::source(Dataset::from_records(recs, parts))
            .map("genKV", SizeModel::new(1.0, 1.0, rates::GROUPBY_GEN), |r| r)
            .group_by_key(self.reducers, rates::GROUP_AGG)
    }

    pub fn action(&self) -> Action {
        Action::Count
    }
}

/// Grep benchmark (Fig 4b): scan+match → tiny shuffle → collect matches.
#[derive(Clone, Debug)]
pub struct Grep {
    pub input_bytes: f64,
    pub split_bytes: f64,
    /// Fraction of input bytes that match (intermediate size ratio).
    /// Paper: intermediate ranges 1–200 MB for 100s of GB of input.
    pub match_ratio: f64,
    pub reducers: Option<u32>,
}

impl Grep {
    pub fn new(input_bytes: f64) -> Self {
        Grep {
            input_bytes,
            split_bytes: 32.0 * MB,
            match_ratio: 5e-4,
            reducers: Some(64),
        }
    }

    pub fn with_split(mut self, split_bytes: f64) -> Self {
        self.split_bytes = split_bytes;
        self
    }

    /// Synthetic job.
    pub fn build(&self) -> Rdd {
        let ratio = self.match_ratio;
        Rdd::source(Dataset::synthetic(
            self.input_bytes,
            self.split_bytes,
            120.0,
        ))
        .filter(
            "match",
            SizeModel::new(ratio, ratio, rates::GREP_SCAN),
            |_| true,
        )
        .group_by_key(self.reducers, rates::GROUP_AGG)
    }

    /// Real-data variant: actually greps generated text lines for `needle`.
    pub fn build_real(&self, lines: u64, needle: &'static str, seed: u64) -> Rdd {
        let recs = datagen::text_lines(lines, seed);
        let parts = ((self.input_bytes / self.split_bytes).ceil().max(1.0)) as usize;
        Rdd::source(Dataset::from_records(recs, parts))
            .filter(
                format!("grep({needle})"),
                SizeModel::new(self.match_ratio, self.match_ratio, rates::GREP_SCAN),
                move |r| r.1.as_str().contains(needle),
            )
            .map("key-by-line", SizeModel::scan(), |(_, v)| {
                (v, Value::I64(1))
            })
            .group_by_key(self.reducers, rates::GROUP_AGG)
    }

    pub fn action(&self) -> Action {
        Action::Count
    }
}

/// Logistic Regression (Fig 4c): three single-stage jobs over a cached,
/// memory-resident point set.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    pub input_bytes: f64,
    pub split_bytes: f64,
    pub dims: usize,
    pub iterations: u32,
}

impl LogisticRegression {
    pub fn new(input_bytes: f64) -> Self {
        LogisticRegression {
            input_bytes,
            split_bytes: 32.0 * MB,
            dims: 10,
            iterations: 3,
        }
    }

    pub fn with_split(mut self, split_bytes: f64) -> Self {
        self.split_bytes = split_bytes;
        self
    }

    /// Synthetic cached dataset: parse once, iterate `iterations` times.
    /// Returns (cached rdd, per-iteration job builder, action).
    pub fn build(&self) -> (Rdd, impl Fn(&Rdd) -> Rdd, Action) {
        let cached = Rdd::source(Dataset::synthetic(
            self.input_bytes,
            self.split_bytes,
            8.0 * 12.0,
        ))
        .map("parse", SizeModel::new(1.0, 1.0, rates::LR_PARSE), |r| r)
        .cache();
        let iter = |points: &Rdd| {
            points.map(
                "gradient",
                // The gradient leaves only a d-dimensional vector per task.
                SizeModel::new(1e-5, 1e-5, rates::LR_GRADIENT),
                |r| r,
            )
        };
        (cached, iter, lr_sum_action())
    }

    /// Real-data LR that actually converges: returns the cached points RDD
    /// and a closure producing the gradient job for the current weights.
    pub fn build_real(
        &self,
        points: u64,
        seed: u64,
    ) -> (Rdd, impl Fn(&Rdd, Arc<Vec<f64>>) -> Rdd + Clone, Action) {
        let dims = self.dims;
        let recs = datagen::labeled_points(points, dims, seed);
        let parts = ((self.input_bytes / self.split_bytes).ceil().max(1.0)) as usize;
        let cached = Rdd::source(Dataset::from_records(recs, parts))
            .map("parse", SizeModel::new(1.0, 1.0, rates::LR_PARSE), |r| r)
            .cache();
        let iter = move |pts: &Rdd, w: Arc<Vec<f64>>| {
            pts.map(
                "gradient",
                SizeModel::new(1e-5, 1e-5, rates::LR_GRADIENT),
                move |(label, x)| {
                    let y = label.as_f64(); // ±1
                    let xs = x.as_vec();
                    let margin: f64 = xs.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
                    let coeff = (1.0 / (1.0 + (-y * margin).exp()) - 1.0) * y;
                    let grad: Vec<f64> = xs.iter().map(|v| v * coeff).collect();
                    (Value::Null, Value::vec(grad))
                },
            )
        };
        (cached, iter, lr_sum_action())
    }
}

/// The LR reduce action: element-wise vector sum of partial gradients.
pub fn lr_sum_action() -> Action {
    Action::Reduce(Arc::new(|a, b| {
        let (x, y) = (a.as_vec(), b.as_vec());
        Value::vec(x.iter().zip(y.iter()).map(|(p, q)| p + q).collect())
    }))
}

/// A record used in test fixtures.
pub fn null_record(v: i64) -> Record {
    (Value::Null, Value::I64(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memres_cluster::tiny;
    use memres_core::prelude::*;

    fn driver() -> Driver {
        Driver::new(tiny(4), EngineConfig::default().homogeneous())
    }

    #[test]
    fn groupby_synthetic_preserves_input_as_intermediate() {
        let gb = GroupBy::new(128.0 * MB)
            .with_split(16.0 * MB)
            .with_reducers(8);
        assert_eq!(gb.map_tasks(), 8);
        let mut d = driver();
        let m = d.run_for_metrics(&gb.build(), gb.action());
        let shuffled: f64 = m.tasks_in(Phase::Shuffling).map(|t| t.input_bytes).sum();
        assert!(
            (shuffled - 128.0 * MB).abs() / shuffled < 0.01,
            "GroupBy intermediate should equal input: {shuffled}"
        );
    }

    #[test]
    fn grep_synthetic_has_tiny_intermediate() {
        let g = Grep::new(256.0 * MB);
        let mut d = driver();
        let m = d.run_for_metrics(&g.build(), g.action());
        let shuffled: f64 = m.tasks_in(Phase::Shuffling).map(|t| t.input_bytes).sum();
        assert!(
            shuffled < 1.0 * MB,
            "Grep intermediate should be tiny: {shuffled}"
        );
    }

    #[test]
    fn grep_real_finds_needles() {
        let g = Grep {
            match_ratio: 1.0,
            ..Grep::new(1.0 * MB)
        };
        let rdd = g.build_real(500, "fox", 7);
        let mut d = driver();
        let (out, _) = d.run(&rdd, Action::Collect);
        let groups = out.records.unwrap();
        for (k, _) in &groups {
            assert!(k.as_str().contains("fox"));
        }
        // The generator plants the needle deterministically: expect hits.
        assert!(!groups.is_empty());
    }

    #[test]
    fn lr_real_converges_toward_true_weights() {
        let lr = LogisticRegression {
            dims: 4,
            ..LogisticRegression::new(1.0 * MB)
        };
        let (points, iter, action) = lr.build_real(2000, 11);
        let mut d = driver();
        let mut w = Arc::new(vec![0.0; 4]);
        let mut last_norm = f64::INFINITY;
        for _ in 0..lr.iterations {
            let job = iter(&points, w.clone());
            let (out, _) = d.run(&job, action.clone());
            let grad = out.reduced.expect("real LR reduces").as_vec().to_vec();
            let norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            let step = 1.0 / 2000.0;
            let next: Vec<f64> = w
                .iter()
                .zip(grad.iter())
                .map(|(wi, gi)| wi - step * gi)
                .collect();
            w = Arc::new(next);
            assert!(norm <= last_norm * 1.5, "gradient should not blow up");
            last_norm = norm;
        }
        // datagen plants alternating-sign true weights: learned signs match.
        assert!(w[0] > 0.0 && w[1] < 0.0, "learned weights {w:?}");
    }

    #[test]
    fn lr_synthetic_second_iteration_is_cached_and_fast() {
        let lr = LogisticRegression::new(64.0 * MB);
        let (points, iter, action) = lr.build();
        let mut d = driver();
        let m1 = d.run_for_metrics(&iter(&points), action.clone());
        let m2 = d.run_for_metrics(&iter(&points), action.clone());
        assert!(m2.job_time() < m1.job_time());
        assert!(
            m2.locality_fraction() > 0.99,
            "cached iterations are node-local"
        );
    }
}

/// WordCount — the paper cites it as a canonical GroupBy-family application.
/// Real mode counts actual words from the text generator; synthetic mode
/// models the classic flatMap(words) → reduceByKey(+) pipeline.
#[derive(Clone, Debug)]
pub struct WordCount {
    pub input_bytes: f64,
    pub split_bytes: f64,
    pub reducers: Option<u32>,
}

impl WordCount {
    pub fn new(input_bytes: f64) -> Self {
        WordCount {
            input_bytes,
            split_bytes: 128.0 * MB,
            reducers: None,
        }
    }

    /// Synthetic pipeline: tokenization expands records, counting shrinks
    /// bytes sharply (word keys + counters).
    pub fn build(&self) -> Rdd {
        Rdd::source(Dataset::synthetic(self.input_bytes, self.split_bytes, 80.0))
            .flat_map("tokenize", SizeModel::new(1.1, 8.0, 700.0e6), |r| vec![r])
            .reduce_by_key(self.reducers, 900.0e6, 0.05, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            })
    }

    /// Real word counting over generated text.
    pub fn build_real(&self, lines: u64, seed: u64) -> Rdd {
        let recs = datagen::text_lines(lines, seed);
        let parts = ((self.input_bytes / self.split_bytes).ceil().max(1.0)) as usize;
        Rdd::source(Dataset::from_records(recs, parts))
            .flat_map(
                "tokenize",
                SizeModel::new(1.1, 8.0, 700.0e6),
                |(_, line)| {
                    line.as_str()
                        .split_whitespace()
                        .map(|w| (Value::str(w), Value::I64(1)))
                        .collect()
                },
            )
            .reduce_by_key(self.reducers, 900.0e6, 0.05, |a, b| {
                Value::I64(a.as_i64() + b.as_i64())
            })
    }

    pub fn action(&self) -> Action {
        Action::Collect
    }
}

/// kMeans — the paper's other named GroupBy consumer: iterative centroid
/// refinement over a cached, memory-resident point set.
#[derive(Clone, Debug)]
pub struct KMeans {
    pub input_bytes: f64,
    pub split_bytes: f64,
    pub k: usize,
    pub dims: usize,
    pub iterations: u32,
}

impl KMeans {
    pub fn new(input_bytes: f64, k: usize) -> Self {
        KMeans {
            input_bytes,
            split_bytes: 64.0 * MB,
            k,
            dims: 4,
            iterations: 5,
        }
    }

    /// Real Lloyd iterations: returns the cached points and a closure that
    /// builds the assign+aggregate job for the current centroids. The job's
    /// collect returns per-centroid (sum-vector ++ count) records.
    #[allow(clippy::type_complexity)]
    pub fn build_real(
        &self,
        points: u64,
        seed: u64,
    ) -> (Rdd, impl Fn(&Rdd, Arc<Vec<Vec<f64>>>) -> Rdd + Clone) {
        let recs = datagen::labeled_points(points, self.dims, seed)
            .into_iter()
            .map(|(_, x)| (Value::Null, x))
            .collect();
        let parts = ((self.input_bytes / self.split_bytes).ceil().max(1.0)) as usize;
        let cached = Rdd::source(Dataset::from_records(recs, parts))
            .map("parse", SizeModel::new(1.0, 1.0, rates::LR_PARSE), |r| r)
            .cache();
        let k = self.k;
        let assign = move |pts: &Rdd, centroids: Arc<Vec<Vec<f64>>>| {
            let cents = centroids.clone();
            pts.map("assign", SizeModel::new(1.0, 1.0, 60.0e6), move |(_, x)| {
                let xs = x.as_vec();
                let (best, _) = cents
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let d: f64 = xs
                            .iter()
                            .zip(c.iter())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        (i, d)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("k >= 1");
                (Value::I64(best as i64), x)
            })
            .reduce_by_key(Some(k as u32), 500.0e6, 0.01, |a, b| {
                // Accumulate [sum..., count] vectors.
                let (x, y) = (a.as_vec(), b.as_vec());
                let (xs, xc) = split_acc(x);
                let (ys, yc) = split_acc(y);
                let mut sum: Vec<f64> = xs.iter().zip(ys.iter()).map(|(p, q)| p + q).collect();
                sum.push(xc + yc);
                Value::vec(sum)
            })
        };
        // Points enter the fold as [coords..., 1] accumulators.
        let assign = move |pts: &Rdd, centroids: Arc<Vec<Vec<f64>>>| {
            let pre = pts.map_values("acc", SizeModel::scan(), |x| {
                let mut v = x.as_vec().to_vec();
                v.push(1.0);
                Value::vec(v)
            });
            assign(&pre, centroids)
        };
        (cached, assign)
    }

    /// Update centroids from the collected (sum ++ count) records.
    pub fn centroids_from(&self, records: &[Record]) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.dims]; self.k];
        for (key, acc) in records {
            let (sum, count) = split_acc(acc.as_vec());
            if count > 0.0 {
                out[key.as_i64() as usize] = sum.iter().map(|s| s / count).collect();
            }
        }
        out
    }
}

fn split_acc(v: &[f64]) -> (&[f64], f64) {
    let (coords, count) = v.split_at(v.len() - 1);
    (coords, count[0])
}

#[cfg(test)]
mod extra_workload_tests {
    use super::*;
    use memres_cluster::tiny;
    use memres_core::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn wordcount_real_counts_match_reference() {
        let wc = WordCount::new(1.0 * MB);
        let rdd = wc.build_real(400, 21);
        let mut d = Driver::new(tiny(4), EngineConfig::default().homogeneous());
        let (out, _) = d.run(&rdd, wc.action());
        let counts: HashMap<String, i64> = out
            .records
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.as_str().to_string(), v.as_i64()))
            .collect();
        // Reference count computed directly from the generator.
        let mut reference: HashMap<String, i64> = HashMap::new();
        for (_, line) in datagen::text_lines(400, 21) {
            for w in line.as_str().split_whitespace() {
                *reference.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        assert_eq!(counts, reference);
    }

    #[test]
    fn wordcount_synthetic_shrinks_through_shuffle() {
        let wc = WordCount::new(64.0 * MB);
        let mut d = Driver::new(tiny(4), EngineConfig::default().homogeneous());
        let m = d.run_for_metrics(&wc.build(), Action::Count);
        let produced: f64 = m.tasks_in(Phase::Compute).map(|t| t.output_bytes).sum();
        let out: f64 = m.tasks_in(Phase::Shuffling).map(|t| t.output_bytes).sum();
        assert!(out < produced * 0.2, "counts are much smaller than tokens");
    }

    #[test]
    fn kmeans_clusters_converge() {
        let km = KMeans {
            dims: 2,
            iterations: 12,
            ..KMeans::new(1.0 * MB, 3)
        };
        let (points, assign) = km.build_real(1500, 33);
        let mut d = Driver::new(tiny(4), EngineConfig::default().homogeneous());
        // Start with spread-out centroids.
        let mut centroids = Arc::new(vec![vec![-1.0, -1.0], vec![0.0, 0.0], vec![1.0, 1.0]]);
        let mut shifts = Vec::new();
        for _ in 0..km.iterations {
            let job = assign(&points, centroids.clone());
            let (out, _) = d.run(&job, Action::Collect);
            let next = km.centroids_from(&out.records.unwrap());
            let shift: f64 = next
                .iter()
                .zip(centroids.iter())
                .map(|(a, b)| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                })
                .sum::<f64>()
                .sqrt();
            centroids = Arc::new(next);
            shifts.push(shift);
        }
        // Lloyd's algorithm monotonically decreases distortion: shifts trend
        // to zero even on unclustered data.
        assert!(
            shifts.last().unwrap() < &(shifts[0] * 0.5 + 1e-9),
            "centroid movement should shrink: {shifts:?}"
        );
        assert!(shifts.last().unwrap() < &0.2, "near-converged: {shifts:?}");
    }

    #[test]
    fn kmeans_caches_points_after_first_iteration() {
        let km = KMeans {
            dims: 2,
            iterations: 2,
            ..KMeans::new(1.0 * MB, 2)
        };
        let (points, assign) = km.build_real(500, 3);
        let mut d = Driver::new(tiny(4), EngineConfig::default().homogeneous());
        let c = Arc::new(vec![vec![-1.0, 0.0], vec![1.0, 0.0]]);
        let m1 = d.run_for_metrics(&assign(&points, c.clone()), Action::Collect);
        let m2 = d.run_for_metrics(&assign(&points, c), Action::Collect);
        assert!(
            m2.locality_fraction() > 0.99,
            "iteration 2 reads the cache locally"
        );
        assert!(m2.job_time() <= m1.job_time());
    }
}
