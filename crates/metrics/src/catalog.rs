//! The gauge catalog: every series the sampler may record, with layer,
//! unit, and help text (DESIGN.md §4.16).
//!
//! The catalog is the single registry the exporters and the diff's layer
//! attribution key off. The `exhaustive-metrics` cross-file lint
//! (crates/lint/src/xfile.rs) checks that every name listed in
//! [`ALL_NAMES`] also appears in both exporter series lists
//! (`OPENMETRICS_SERIES` and `CSV_SERIES` in `export.rs`), and vice versa —
//! adding a gauge without teaching both exporters about it fails the gate.

/// Static description of one series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesDef {
    pub name: &'static str,
    /// Which layer of the stack the gauge observes — the key the diff
    /// report attributes regressions to.
    pub layer: &'static str,
    pub unit: &'static str,
    /// Instance label key for multi-instance series (`rack`, `tenant`).
    pub label: Option<&'static str>,
    pub help: &'static str,
}

/// Every registered series name. Keep this list in sync with [`def`] and
/// with the exporter lists in `export.rs` (lint rule `exhaustive-metrics`).
pub const ALL_NAMES: [&str; 25] = [
    "engine_events_total",
    "engine_events_per_sample",
    "engine_queue_len",
    "engine_queue_overflow",
    "engine_queue_buckets",
    "net_active_flows",
    "net_rack_up_util",
    "net_rack_down_util",
    "net_core_util",
    "net_lustre_pipe_util",
    "storage_ram_queue_depth",
    "storage_ssd_queue_depth",
    "storage_ssd_dirty_bytes",
    "storage_ssd_gc_nodes",
    "storage_ssd_buffer_fill_max",
    "lustre_mds_backlog",
    "lustre_client_dirty_bytes",
    "core_resident_partition_bytes",
    "core_task_arena_tasks",
    "core_tasks_pending",
    "core_busy_slots",
    "core_resident_jobs",
    "tenant_queued_jobs",
    "tenant_running_jobs",
    "tenant_slo_burn_secs",
];

/// Every registered series name, catalog order.
pub fn all() -> impl Iterator<Item = &'static str> {
    ALL_NAMES.iter().copied()
}

/// Look a series definition up by name; `None` for unregistered names.
pub fn def(name: &str) -> Option<SeriesDef> {
    let d = |layer, unit, label, help| SeriesDef {
        name: "",
        layer,
        unit,
        label,
        help,
    };
    let mut found = match name {
        "engine_events_total" => d(
            "des",
            "events",
            None,
            "Events processed by the engine so far",
        ),
        "engine_events_per_sample" => d(
            "des",
            "events",
            None,
            "Events processed since the previous sample",
        ),
        "engine_queue_len" => d("des", "events", None, "Events buffered on the calendar"),
        "engine_queue_overflow" => d(
            "des",
            "events",
            None,
            "Events in the calendar's overflow tier",
        ),
        "engine_queue_buckets" => d("des", "buckets", None, "Calendar bucket count"),
        "net_active_flows" => d(
            "net",
            "flows",
            None,
            "Flows with queued bytes in the fabric",
        ),
        "net_rack_up_util" => d(
            "net",
            "ratio",
            Some("rack"),
            "Rack uplink utilization (allocated rate / capacity)",
        ),
        "net_rack_down_util" => d(
            "net",
            "ratio",
            Some("rack"),
            "Rack downlink utilization (allocated rate / capacity)",
        ),
        "net_core_util" => d("net", "ratio", None, "Core fabric link utilization"),
        "net_lustre_pipe_util" => d("net", "ratio", None, "Lustre aggregate pipe utilization"),
        "storage_ram_queue_depth" => d(
            "storage",
            "requests",
            None,
            "In-flight RAMDisk requests summed over nodes",
        ),
        "storage_ssd_queue_depth" => d(
            "storage",
            "requests",
            None,
            "In-flight SSD requests summed over nodes",
        ),
        "storage_ssd_dirty_bytes" => d(
            "storage",
            "bytes",
            None,
            "Dirty page-cache bytes ahead of the SSDs, summed over nodes",
        ),
        "storage_ssd_gc_nodes" => d(
            "storage",
            "nodes",
            None,
            "Nodes whose SSD is garbage-collecting",
        ),
        "storage_ssd_buffer_fill_max" => d(
            "storage",
            "ratio",
            None,
            "Worst SSD write-buffer fill fraction across nodes",
        ),
        "lustre_mds_backlog" => d("lustre", "ops", None, "Queued metadata ops at the MDS"),
        "lustre_client_dirty_bytes" => d(
            "lustre",
            "bytes",
            None,
            "Unflushed client-side Lustre dirty bytes, summed over nodes",
        ),
        "core_resident_partition_bytes" => d(
            "core",
            "bytes",
            None,
            "Cached RDD partition bytes resident in block managers",
        ),
        "core_task_arena_tasks" => d("core", "tasks", None, "Tasks materialized in the arena"),
        "core_tasks_pending" => d("core", "tasks", None, "Tasks waiting for a slot"),
        "core_busy_slots" => d("core", "slots", None, "Occupied executor slots"),
        "core_resident_jobs" => d("core", "jobs", None, "Jobs admitted and not yet finished"),
        "tenant_queued_jobs" => d(
            "tenancy",
            "jobs",
            Some("tenant"),
            "Arrived jobs waiting for admission",
        ),
        "tenant_running_jobs" => d(
            "tenancy",
            "jobs",
            Some("tenant"),
            "Resident jobs of the tenant",
        ),
        "tenant_slo_burn_secs" => d(
            "tenancy",
            "seconds",
            Some("tenant"),
            "Cumulative job latency accrued by the tenant so far",
        ),
        _ => return None,
    };
    found.name = all().find(|&n| n == name)?;
    Some(found)
}

/// Position of `name` in catalog order (export ordering key).
pub fn order(name: &str) -> usize {
    all().position(|n| n == name).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_has_a_def_and_vice_versa() {
        for name in all() {
            let d = def(name).expect("catalog name without def");
            assert_eq!(d.name, name);
            assert!(!d.layer.is_empty() && !d.unit.is_empty() && !d.help.is_empty());
        }
        assert!(def("no_such_series").is_none());
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = all().collect();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(order(n), i);
            assert!(!names[i + 1..].contains(n), "duplicate series name {n}");
        }
        assert_eq!(order("no_such_series"), usize::MAX);
    }

    #[test]
    fn labeled_series_use_known_label_keys() {
        for name in all() {
            if let Some(label) = def(name).unwrap().label {
                assert!(matches!(label, "rack" | "tenant"), "{name}: {label}");
            }
        }
    }
}
