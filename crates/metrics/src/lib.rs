//! # memres-metrics — the deterministic time-series plane (DESIGN.md §4.16)
//!
//! A [`Recorder`] accumulates sim-time-stamped gauge samples into
//! fixed-capacity ring series plus one [`LogHistogram`] per series. The
//! engine's periodic sampler (a `MetricsSample` DES event in
//! `memres-core::world`) snapshots gauges from every layer each interval;
//! everything here is a pure function of the sample sequence — no wall
//! clock, no allocation-order dependence — so exports are byte-identical
//! across executor thread counts and repeated runs.
//!
//! Exports live in [`export`] (OpenMetrics text, `timeseries.csv`, and a
//! self-contained HTML dashboard with inline SVG sparklines); run-to-run
//! regression diffing lives in [`diff`].

pub mod catalog;
pub mod diff;
pub mod export;

use memres_des::stats::LogHistogram;
use memres_des::time::{SimDuration, SimTime};

/// Sampler configuration. Carried in `EngineConfig`; the world schedules a
/// `MetricsSample` event every `interval` of sim time while a job or stream
/// is in flight.
#[derive(Clone, Copy, Debug)]
pub struct MetricsConfig {
    /// Sim-time gap between samples.
    pub interval: SimDuration,
    /// Ring capacity per series. When a series fills, it compacts: every
    /// second stored point is dropped and the keep-stride doubles, so the
    /// series always spans the whole run at bounded memory.
    pub ring: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            interval: SimDuration::from_millis(500),
            ring: 512,
        }
    }
}

impl MetricsConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.interval <= SimDuration::ZERO {
            return Err("metrics.interval must be positive".to_string());
        }
        if self.ring < 8 {
            return Err(format!(
                "metrics.ring must be at least 8, got {}",
                self.ring
            ));
        }
        Ok(())
    }
}

/// One recorded series: a decimating ring of `(t, value)` points plus a
/// log-bucketed histogram over every sample ever recorded (the histogram
/// never decimates).
#[derive(Clone, Debug)]
pub struct Series {
    pub name: &'static str,
    /// Instance for labeled series (rack index, tenant index).
    pub instance: Option<u32>,
    pub hist: LogHistogram,
    points: Vec<(SimTime, f64)>,
    cap: usize,
    /// Only every `stride`-th offered point is stored (doubles on compaction).
    stride: u64,
    /// Points offered so far (stored or not).
    offered: u64,
    last: f64,
}

impl Series {
    fn new(name: &'static str, instance: Option<u32>, cap: usize) -> Self {
        Series {
            name,
            instance,
            hist: LogHistogram::new(),
            points: Vec::new(),
            cap,
            stride: 1,
            offered: 0,
            last: 0.0,
        }
    }

    fn push(&mut self, t: SimTime, v: f64) {
        self.hist.record(v);
        self.last = v;
        if self.offered.is_multiple_of(self.stride) {
            self.points.push((t, v));
            if self.points.len() >= self.cap {
                // Compact: keep even-indexed points, double the stride. A
                // pure function of the sample sequence, so decimation is as
                // deterministic as the samples themselves.
                let kept: Vec<(SimTime, f64)> = self.points.iter().step_by(2).copied().collect();
                self.points = kept;
                self.stride *= 2;
            }
        }
        self.offered += 1;
    }

    /// Stored (possibly decimated) points, ascending in time.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Most recent sample value (0.0 before any sample).
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Total samples recorded (before decimation).
    pub fn samples(&self) -> u64 {
        self.offered
    }
}

/// The accumulator behind the periodic sampler. Series are created on first
/// sample and kept in first-sample order; exports re-sort by catalog order,
/// so the export byte stream does not depend on which gauge happened to be
/// sampled first.
#[derive(Clone, Debug)]
pub struct Recorder {
    cfg: MetricsConfig,
    series: Vec<Series>,
    /// Sampler rounds completed.
    ticks: u64,
}

impl Recorder {
    pub fn new(cfg: MetricsConfig) -> Self {
        Recorder {
            cfg,
            series: Vec::new(),
            ticks: 0,
        }
    }

    pub fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Count one completed sampler round.
    pub fn tick(&mut self) {
        self.ticks += 1;
    }

    /// Record one gauge sample. `name` must be registered in [`catalog`]
    /// (debug-asserted); `instance` labels multi-instance series.
    pub fn sample(&mut self, name: &'static str, instance: Option<u32>, t: SimTime, v: f64) {
        debug_assert!(
            catalog::def(name).is_some(),
            "unregistered series name {name}"
        );
        let idx = self
            .series
            .iter()
            .position(|s| s.name == name && s.instance == instance);
        let s = match idx {
            Some(i) => &mut self.series[i],
            None => {
                self.series.push(Series::new(name, instance, self.cfg.ring));
                self.series.last_mut().expect("just pushed") // lint:allow(panic): just pushed
            }
        };
        s.push(t, v);
    }

    /// All series in catalog order (instances ascending within a name) —
    /// the order every exporter walks.
    pub fn sorted_series(&self) -> Vec<&Series> {
        let mut out: Vec<&Series> = self.series.iter().collect();
        out.sort_by_key(|s| (catalog::order(s.name), s.instance));
        out
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn recorder_accumulates_and_sorts_by_catalog_order() {
        let mut r = Recorder::new(MetricsConfig::default());
        // Sampled out of catalog order on purpose.
        r.sample("net_active_flows", None, t(0.0), 2.0);
        r.sample("engine_queue_len", None, t(0.0), 7.0);
        r.sample("net_rack_up_util", Some(1), t(0.0), 0.5);
        r.sample("net_rack_up_util", Some(0), t(0.0), 0.25);
        r.tick();
        let names: Vec<_> = r
            .sorted_series()
            .iter()
            .map(|s| (s.name, s.instance))
            .collect();
        assert_eq!(
            names,
            vec![
                ("engine_queue_len", None),
                ("net_active_flows", None),
                ("net_rack_up_util", Some(0)),
                ("net_rack_up_util", Some(1)),
            ]
        );
        assert_eq!(r.ticks(), 1);
    }

    #[test]
    fn ring_decimates_but_spans_the_run() {
        let cfg = MetricsConfig {
            ring: 8,
            ..MetricsConfig::default()
        };
        let mut r = Recorder::new(cfg);
        for i in 0..100u64 {
            r.sample("engine_queue_len", None, t(i as f64), i as f64);
        }
        let s = &r.sorted_series()[0];
        assert!(s.points().len() < 8, "ring must stay under capacity");
        assert_eq!(s.samples(), 100);
        // Histogram never decimates; the ring still starts at t=0.
        assert_eq!(s.hist.count(), 100);
        assert_eq!(s.points()[0].0, t(0.0));
        assert_eq!(s.last(), 99.0);
        // Points stay ascending in time.
        for w in s.points().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn decimation_is_a_pure_function_of_the_sequence() {
        let cfg = MetricsConfig {
            ring: 16,
            ..MetricsConfig::default()
        };
        let run = || {
            let mut r = Recorder::new(cfg);
            for i in 0..1000u64 {
                r.sample("core_busy_slots", None, t(i as f64 * 0.5), (i % 17) as f64);
            }
            r.sorted_series()[0].points().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn config_validation() {
        assert!(MetricsConfig::default().validate().is_ok());
        let bad = MetricsConfig {
            interval: SimDuration::ZERO,
            ..MetricsConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = MetricsConfig {
            ring: 2,
            ..MetricsConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
