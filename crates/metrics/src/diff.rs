//! Run-to-run regression diffing: join two runs' `timeseries.csv` +
//! critical-path attribution exports and rank what moved.
//!
//! The diff is string-in, string-out — it parses the CSV interchange
//! formats written by [`crate::export`] (and the `bucket,seconds`
//! attribution CSV written by `repro report`) rather than live recorders,
//! so it can compare any two archived runs.

use crate::catalog;

/// Parsed `timeseries.csv` row set for one series instance.
#[derive(Clone, Debug, Default)]
struct ParsedSeries {
    points: Vec<(f64, f64)>,
}

/// One series' movement between run A and run B.
#[derive(Clone, Debug)]
pub struct SeriesDiff {
    pub series: String,
    pub instance: Option<u32>,
    pub layer: &'static str,
    pub mean_a: f64,
    pub mean_b: f64,
    /// Relative change of the mean, `(b - a) / max(|a|, eps)`.
    pub rel: f64,
    pub max_abs_delta: f64,
    /// Earliest sim-time second at which the runs' values diverge, if they
    /// do. Both the first timestamp where joined points differ and the
    /// first timestamp present in only one run qualify.
    pub first_divergence_s: Option<f64>,
}

/// One attribution bucket's movement between run A and run B.
#[derive(Clone, Debug)]
pub struct BucketDiff {
    pub bucket: String,
    pub layer: &'static str,
    pub secs_a: f64,
    pub secs_b: f64,
    pub delta: f64,
}

/// The full regression report for a pair of runs.
#[derive(Clone, Debug)]
pub struct DiffReport {
    pub name_a: String,
    pub name_b: String,
    /// End-to-end job seconds from the attribution export ("job" bucket).
    pub job_a: f64,
    pub job_b: f64,
    /// Allowed relative slowdown before [`DiffReport::regressed`] fires.
    pub threshold: f64,
    /// Per-series movement, ranked by |rel| descending.
    pub series: Vec<SeriesDiff>,
    /// Per-bucket attribution movement, ranked by delta descending.
    pub buckets: Vec<BucketDiff>,
}

/// Map a critical-path attribution bucket onto the stack layer the diff
/// report blames (the same layer vocabulary as [`catalog::SeriesDef`]).
pub fn bucket_layer(bucket: &str) -> &'static str {
    match bucket {
        "compute" => "core",
        "store" => "storage",
        "fetch" => "net",
        "lock-wait" => "lustre",
        "gc-stall" => "storage",
        "retry-waste" => "core",
        _ => "core",
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    s.trim().parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Parse a `timeseries.csv` export into `(series, instance) -> points`.
/// Unknown lines are skipped; order of first appearance is preserved so the
/// report is as deterministic as the inputs.
fn parse_timeseries(csv: &str) -> Vec<((String, Option<u32>), ParsedSeries)> {
    let mut out: Vec<((String, Option<u32>), ParsedSeries)> = Vec::new();
    for line in csv.lines().skip(1) {
        let mut cols = line.split(',');
        let (Some(name), Some(inst), Some(t), Some(v)) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            continue;
        };
        let (Some(t), Some(v)) = (parse_f64(t), parse_f64(v)) else {
            continue;
        };
        let inst = if inst.is_empty() {
            None
        } else {
            match inst.parse::<u32>() {
                Ok(i) => Some(i),
                Err(_) => continue,
            }
        };
        let key = (name.to_string(), inst);
        match out.iter_mut().find(|(k, _)| *k == key) {
            Some((_, s)) => s.points.push((t, v)),
            None => out.push((
                key,
                ParsedSeries {
                    points: vec![(t, v)],
                },
            )),
        }
    }
    out
}

/// Parse a `bucket,seconds` attribution CSV (header optional).
fn parse_attrib(csv: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in csv.lines() {
        let mut cols = line.split(',');
        let (Some(bucket), Some(secs)) = (cols.next(), cols.next()) else {
            continue;
        };
        let Some(secs) = parse_f64(secs) else {
            continue;
        };
        out.push((bucket.trim().to_string(), secs));
    }
    out
}

fn mean(points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|&(_, v)| v).sum::<f64>() / points.len() as f64
}

const DIVERGE_EPS: f64 = 1e-9;

fn diverges(a: f64, b: f64) -> bool {
    (a - b).abs() > DIVERGE_EPS * f64::max(1.0, f64::max(a.abs(), b.abs()))
}

fn diff_points(a: &[(f64, f64)], b: &[(f64, f64)]) -> (f64, Option<f64>) {
    // Merge-join on timestamp (both sides ascending by construction).
    let (mut i, mut j) = (0usize, 0usize);
    let mut max_abs = 0.0f64;
    let mut first: Option<f64> = None;
    let mut note = |t: f64, d: f64| {
        if d > max_abs {
            max_abs = d;
        }
        if first.is_none() {
            first = Some(t);
        }
    };
    while i < a.len() && j < b.len() {
        let (ta, va) = a[i];
        let (tb, vb) = b[j];
        if diverges(ta, tb) {
            // A timestamp present in only one run is itself a divergence.
            if ta < tb {
                note(ta, va.abs());
                i += 1;
            } else {
                note(tb, vb.abs());
                j += 1;
            }
        } else {
            if diverges(va, vb) {
                note(ta, (va - vb).abs());
            }
            i += 1;
            j += 1;
        }
    }
    for &(t, v) in &a[i..] {
        note(t, v.abs());
    }
    for &(t, v) in &b[j..] {
        note(t, v.abs());
    }
    (max_abs, first)
}

/// Build the regression report for two runs from their exported CSVs.
///
/// `threshold` is the allowed relative slowdown of the end-to-end job time
/// (e.g. `0.05` tolerates a 5% regression).
pub fn diff_runs(
    name_a: &str,
    ts_a: &str,
    attrib_a: &str,
    name_b: &str,
    ts_b: &str,
    attrib_b: &str,
    threshold: f64,
) -> DiffReport {
    let sa = parse_timeseries(ts_a);
    let sb = parse_timeseries(ts_b);

    // Union of keys, A-order first, then B-only keys in B order.
    let mut keys: Vec<(String, Option<u32>)> = sa.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in &sb {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }

    let empty = ParsedSeries::default();
    let mut series: Vec<SeriesDiff> = keys
        .into_iter()
        .map(|key| {
            let pa = sa
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(&empty, |(_, s)| s);
            let pb = sb
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(&empty, |(_, s)| s);
            let (mean_a, mean_b) = (mean(&pa.points), mean(&pb.points));
            let (max_abs_delta, first_divergence_s) = diff_points(&pa.points, &pb.points);
            let rel = (mean_b - mean_a) / f64::max(mean_a.abs(), 1e-12);
            SeriesDiff {
                layer: catalog::def(&key.0).map_or("core", |d| d.layer),
                series: key.0,
                instance: key.1,
                mean_a,
                mean_b,
                rel,
                max_abs_delta,
                first_divergence_s,
            }
        })
        .collect();
    series.sort_by(|x, y| {
        y.rel
            .abs()
            .partial_cmp(&x.rel.abs())
            // lint:allow(float-order): |rel| is finite by construction; ties broken by name below
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.series.cmp(&y.series))
            .then_with(|| x.instance.cmp(&y.instance))
    });

    let aa = parse_attrib(attrib_a);
    let ab = parse_attrib(attrib_b);
    let job_a = aa.iter().find(|(b, _)| b == "job").map_or(0.0, |&(_, s)| s);
    let job_b = ab.iter().find(|(b, _)| b == "job").map_or(0.0, |&(_, s)| s);
    let mut buckets: Vec<BucketDiff> = aa
        .iter()
        .filter(|(b, _)| b != "job")
        .map(|(bucket, secs_a)| {
            let secs_b = ab
                .iter()
                .find(|(b, _)| b == bucket)
                .map_or(0.0, |&(_, s)| s);
            BucketDiff {
                bucket: bucket.clone(),
                layer: bucket_layer(bucket),
                secs_a: *secs_a,
                secs_b,
                delta: secs_b - secs_a,
            }
        })
        .collect();
    buckets.sort_by(|x, y| {
        y.delta
            .partial_cmp(&x.delta)
            // lint:allow(float-order): deltas are finite; ties broken by bucket name
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.bucket.cmp(&y.bucket))
    });

    DiffReport {
        name_a: name_a.to_string(),
        name_b: name_b.to_string(),
        job_a,
        job_b,
        threshold,
        series,
        buckets,
    }
}

impl DiffReport {
    /// Did run B regress past the allowed threshold on end-to-end job time?
    pub fn regressed(&self) -> bool {
        self.job_a > 0.0 && self.job_b > self.job_a * (1.0 + self.threshold)
    }

    /// The attribution bucket that grew the most, if any grew.
    pub fn dominant_bucket(&self) -> Option<&BucketDiff> {
        self.buckets.first().filter(|b| b.delta > 0.0)
    }

    /// Human-readable ranked report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regression diff: {} -> {}\n",
            self.name_a, self.name_b
        ));
        let rel = if self.job_a > 0.0 {
            (self.job_b - self.job_a) / self.job_a * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "job time: {}s -> {}s ({rel:+.2}%, threshold {:.2}%)\n",
            self.job_a,
            self.job_b,
            self.threshold * 100.0
        ));
        out.push_str(if self.regressed() {
            "verdict: REGRESSED\n"
        } else {
            "verdict: ok\n"
        });
        if let Some(b) = self.dominant_bucket() {
            out.push_str(&format!(
                "dominant mover: {} (+{:.4}s) -> layer {}\n",
                b.bucket, b.delta, b.layer
            ));
        }
        if !self.buckets.is_empty() {
            out.push_str("attribution (delta seconds, descending):\n");
            for b in &self.buckets {
                out.push_str(&format!(
                    "  {:<12} {:>12.4} -> {:>12.4}  ({:+.4}s, layer {})\n",
                    b.bucket, b.secs_a, b.secs_b, b.delta, b.layer
                ));
            }
        }
        let moved: Vec<&SeriesDiff> = self
            .series
            .iter()
            .filter(|s| s.first_divergence_s.is_some())
            .collect();
        out.push_str(&format!(
            "series moved: {} of {}\n",
            moved.len(),
            self.series.len()
        ));
        for s in moved.iter().take(12) {
            let inst = s.instance.map(|i| format!("[{i}]")).unwrap_or_default();
            let first = s
                .first_divergence_s
                .map(|t| format!("{t}s"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {:<32} layer {:<8} mean {:.4} -> {:.4} ({:+.2}%), first divergence at {}\n",
                format!("{}{}", s.series, inst),
                s.layer,
                s.mean_a,
                s.mean_b,
                s.rel * 100.0,
                first
            ));
        }
        if moved.len() > 12 {
            out.push_str(&format!("  ... and {} more\n", moved.len() - 12));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS_A: &str = "series,instance,t_s,value\n\
        engine_queue_len,,0,4\n\
        engine_queue_len,,0.5,6\n\
        storage_ssd_queue_depth,,0,2\n\
        storage_ssd_queue_depth,,0.5,2\n";

    const ATTRIB_A: &str = "bucket,seconds\njob,10\ncompute,6\nstore,3\nother,1\n";

    #[test]
    fn identical_runs_report_nothing_moved() {
        let r = diff_runs("a", TS_A, ATTRIB_A, "b", TS_A, ATTRIB_A, 0.02);
        assert!(!r.regressed());
        assert!(r.series.iter().all(|s| s.first_divergence_s.is_none()));
        assert!(r.dominant_bucket().is_none());
        assert!(r.render().contains("verdict: ok"));
        assert!(r.render().contains("series moved: 0 of 2"));
    }

    #[test]
    fn slowdown_is_flagged_with_layer_attribution() {
        let ts_b = "series,instance,t_s,value\n\
            engine_queue_len,,0,4\n\
            engine_queue_len,,0.5,6\n\
            storage_ssd_queue_depth,,0,2\n\
            storage_ssd_queue_depth,,0.5,9\n";
        let attrib_b = "bucket,seconds\njob,13\ncompute,6\nstore,6\nother,1\n";
        let r = diff_runs("a", TS_A, ATTRIB_A, "b", ts_b, attrib_b, 0.05);
        assert!(r.regressed());
        let dom = r.dominant_bucket().expect("store grew");
        assert_eq!(dom.bucket, "store");
        assert_eq!(dom.layer, "storage");
        let ssd = r
            .series
            .iter()
            .find(|s| s.series == "storage_ssd_queue_depth")
            .unwrap();
        assert_eq!(ssd.first_divergence_s, Some(0.5));
        assert_eq!(ssd.layer, "storage");
        assert!(ssd.rel > 0.0);
        // The queue-depth series should outrank the unchanged engine one.
        assert_eq!(r.series[0].series, "storage_ssd_queue_depth");
        let text = r.render();
        assert!(text.contains("verdict: REGRESSED"));
        assert!(text.contains("dominant mover: store"));
        assert!(text.contains("layer storage"));
    }

    #[test]
    fn regression_within_threshold_passes() {
        let attrib_b = "bucket,seconds\njob,10.1\ncompute,6.1\nstore,3\nother,1\n";
        let r = diff_runs("a", TS_A, ATTRIB_A, "b", TS_A, attrib_b, 0.05);
        assert!(!r.regressed(), "1% slowdown is inside a 5% threshold");
        assert!(r.dominant_bucket().is_some(), "compute still grew");
    }

    #[test]
    fn missing_timestamps_count_as_divergence() {
        let ts_b = "series,instance,t_s,value\n\
            engine_queue_len,,0,4\n\
            storage_ssd_queue_depth,,0,2\n\
            storage_ssd_queue_depth,,0.5,2\n";
        let r = diff_runs("a", TS_A, ATTRIB_A, "b", ts_b, ATTRIB_A, 0.02);
        let eq = r
            .series
            .iter()
            .find(|s| s.series == "engine_queue_len")
            .unwrap();
        assert_eq!(eq.first_divergence_s, Some(0.5));
        assert_eq!(eq.max_abs_delta, 6.0);
    }

    #[test]
    fn bucket_layers_cover_the_trace_vocabulary() {
        for (bucket, layer) in [
            ("compute", "core"),
            ("store", "storage"),
            ("fetch", "net"),
            ("lock-wait", "lustre"),
            ("gc-stall", "storage"),
            ("retry-waste", "core"),
            ("other", "core"),
        ] {
            assert_eq!(bucket_layer(bucket), layer);
        }
    }
}
