//! Exporters for the recorded time series: OpenMetrics text exposition,
//! long-format CSV, and a self-contained HTML dashboard.
//!
//! All three walk [`Recorder::sorted_series`] (catalog order, instances
//! ascending) and format floats with Rust's shortest-repr `{}` Display, so
//! output is byte-identical whenever the sample sequences are — the
//! determinism contract the golden tests in `crates/bench` pin down.

use crate::catalog;
use crate::{Recorder, Series};

/// Series the OpenMetrics exporter knows how to emit. The
/// `exhaustive-metrics` cross-file lint checks this list against
/// `catalog::ALL_NAMES` — adding a gauge without listing it here fails the
/// gate.
pub const OPENMETRICS_SERIES: [&str; 25] = [
    "engine_events_total",
    "engine_events_per_sample",
    "engine_queue_len",
    "engine_queue_overflow",
    "engine_queue_buckets",
    "net_active_flows",
    "net_rack_up_util",
    "net_rack_down_util",
    "net_core_util",
    "net_lustre_pipe_util",
    "storage_ram_queue_depth",
    "storage_ssd_queue_depth",
    "storage_ssd_dirty_bytes",
    "storage_ssd_gc_nodes",
    "storage_ssd_buffer_fill_max",
    "lustre_mds_backlog",
    "lustre_client_dirty_bytes",
    "core_resident_partition_bytes",
    "core_task_arena_tasks",
    "core_tasks_pending",
    "core_busy_slots",
    "core_resident_jobs",
    "tenant_queued_jobs",
    "tenant_running_jobs",
    "tenant_slo_burn_secs",
];

/// Series the CSV exporter knows how to emit (same lint contract as
/// [`OPENMETRICS_SERIES`]).
pub const CSV_SERIES: [&str; 25] = [
    "engine_events_total",
    "engine_events_per_sample",
    "engine_queue_len",
    "engine_queue_overflow",
    "engine_queue_buckets",
    "net_active_flows",
    "net_rack_up_util",
    "net_rack_down_util",
    "net_core_util",
    "net_lustre_pipe_util",
    "storage_ram_queue_depth",
    "storage_ssd_queue_depth",
    "storage_ssd_dirty_bytes",
    "storage_ssd_gc_nodes",
    "storage_ssd_buffer_fill_max",
    "lustre_mds_backlog",
    "lustre_client_dirty_bytes",
    "core_resident_partition_bytes",
    "core_task_arena_tasks",
    "core_tasks_pending",
    "core_busy_slots",
    "core_resident_jobs",
    "tenant_queued_jobs",
    "tenant_running_jobs",
    "tenant_slo_burn_secs",
];

fn label_of(s: &Series) -> String {
    match (catalog::def(s.name).and_then(|d| d.label), s.instance) {
        (Some(key), Some(i)) => format!("{{{key}=\"{i}\"}}"),
        (None, Some(i)) => format!("{{instance=\"{i}\"}}"),
        _ => String::new(),
    }
}

/// OpenMetrics-style text exposition: one `# HELP` / `# TYPE` / `# UNIT`
/// stanza per metric family, one sample line per stored point, `# EOF`
/// terminator. Every gauge is exported as a `gauge` family named
/// `memres_<series>`.
pub fn openmetrics(rec: &Recorder) -> String {
    let mut out = String::new();
    let sorted = rec.sorted_series();
    let mut last_name = "";
    for s in &sorted {
        if !OPENMETRICS_SERIES.contains(&s.name) {
            continue;
        }
        let def = match catalog::def(s.name) {
            Some(d) => d,
            None => continue,
        };
        if s.name != last_name {
            out.push_str(&format!("# HELP memres_{} {}\n", s.name, def.help));
            out.push_str(&format!("# TYPE memres_{} gauge\n", s.name));
            out.push_str(&format!("# UNIT memres_{} {}\n", s.name, def.unit));
            last_name = s.name;
        }
        let label = label_of(s);
        for &(t, v) in s.points() {
            out.push_str(&format!(
                "memres_{}{} {} {}\n",
                s.name,
                label,
                v,
                t.as_secs_f64()
            ));
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Long-format CSV: `series,instance,t_s,value`, catalog order, instance
/// column empty for unlabeled series. This is the interchange format
/// `diff` parses back.
pub fn timeseries_csv(rec: &Recorder) -> String {
    let mut out = String::from("series,instance,t_s,value\n");
    for s in rec.sorted_series() {
        if !CSV_SERIES.contains(&s.name) {
            continue;
        }
        let inst = s.instance.map(|i| i.to_string()).unwrap_or_default();
        for &(t, v) in s.points() {
            out.push_str(&format!("{},{},{},{}\n", s.name, inst, t.as_secs_f64(), v));
        }
    }
    out
}

fn svg_sparkline(s: &Series, w: f64, h: f64) -> String {
    let pts = s.points();
    if pts.len() < 2 {
        return format!("<svg width=\"{w}\" height=\"{h}\"></svg>");
    }
    let t0 = pts[0].0.as_secs_f64();
    let t1 = pts[pts.len() - 1].0.as_secs_f64();
    let tspan = if t1 > t0 { t1 - t0 } else { 1.0 };
    let (vmin, vmax) = (s.hist.min().min(0.0), s.hist.max());
    let vspan = if vmax > vmin { vmax - vmin } else { 1.0 };
    let mut poly = String::new();
    for &(t, v) in pts {
        let x = (t.as_secs_f64() - t0) / tspan * (w - 2.0) + 1.0;
        let y = h - 1.0 - (v - vmin) / vspan * (h - 2.0);
        // Fixed precision keeps the dashboard bytes stable and small.
        poly.push_str(&format!("{x:.1},{y:.1} "));
    }
    format!(
        "<svg width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\
         <polyline fill=\"none\" stroke=\"#2a6\" stroke-width=\"1\" points=\"{}\"/></svg>",
        poly.trim_end()
    )
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Self-contained HTML dashboard: series grouped by layer, one row per
/// series with an inline SVG sparkline and min/mean/max/p99 from its
/// histogram, plus a critical-path attribution table. `attrib` is the
/// `(bucket, seconds)` breakdown from the trace subsystem, passed in
/// generically so this crate stays independent of `memres-trace`.
pub fn dashboard_html(title: &str, rec: &Recorder, attrib: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>{}</title>\n", html_escape(title)));
    out.push_str(
        "<style>\n\
         body{font-family:system-ui,sans-serif;margin:2em;background:#fafafa}\n\
         h1{font-size:1.4em} h2{font-size:1.1em;margin-top:1.5em;\
         border-bottom:1px solid #ccc;padding-bottom:.2em}\n\
         table{border-collapse:collapse;background:#fff}\n\
         td,th{border:1px solid #ddd;padding:.3em .6em;font-size:.85em;\
         text-align:right}\n\
         td:first-child,th:first-child{text-align:left;font-family:monospace}\n\
         </style></head><body>\n",
    );
    out.push_str(&format!("<h1>{}</h1>\n", html_escape(title)));

    if !attrib.is_empty() {
        out.push_str("<h2>critical-path attribution</h2>\n<table>\n");
        out.push_str("<tr><th>bucket</th><th>seconds</th></tr>\n");
        for (bucket, secs) in attrib {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{secs}</td></tr>\n",
                html_escape(bucket)
            ));
        }
        out.push_str("</table>\n");
    }

    let sorted = rec.sorted_series();
    let mut last_layer = "";
    let mut table_open = false;
    for s in &sorted {
        let def = match catalog::def(s.name) {
            Some(d) => d,
            None => continue,
        };
        if def.layer != last_layer {
            if table_open {
                out.push_str("</table>\n");
            }
            out.push_str(&format!("<h2>{}</h2>\n<table>\n", html_escape(def.layer)));
            out.push_str(
                "<tr><th>series</th><th>unit</th><th>sparkline</th>\
                 <th>min</th><th>mean</th><th>p99</th><th>max</th>\
                 <th>last</th></tr>\n",
            );
            last_layer = def.layer;
            table_open = true;
        }
        let label = label_of(s);
        let (min, mean, max) = (s.hist.min(), s.hist.mean(), s.hist.max());
        let p99 = if s.hist.count() > 0 {
            s.hist.quantile(0.99)
        } else {
            0.0
        };
        out.push_str(&format!(
            "<tr><td>{}{}</td><td>{}</td><td>{}</td>\
             <td>{min:.4}</td><td>{mean:.4}</td><td>{p99:.4}</td>\
             <td>{max:.4}</td><td>{:.4}</td></tr>\n",
            html_escape(s.name),
            html_escape(&label),
            def.unit,
            svg_sparkline(s, 180.0, 28.0),
            s.last(),
        ));
    }
    if table_open {
        out.push_str("</table>\n");
    }
    out.push_str(&format!(
        "<p>{} series, {} sampler rounds.</p>\n</body></html>\n",
        sorted.len(),
        rec.ticks()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsConfig;
    use memres_des::time::SimTime;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new(MetricsConfig::default());
        for i in 0..4u64 {
            let t = SimTime::from_secs_f64(i as f64 * 0.5);
            r.sample("engine_queue_len", None, t, (i * 3) as f64);
            r.sample("net_rack_up_util", Some(0), t, 0.25 * i as f64);
            r.sample("tenant_queued_jobs", Some(2), t, i as f64);
            r.tick();
        }
        r
    }

    #[test]
    fn exporter_lists_match_catalog() {
        let names: Vec<_> = catalog::all().collect();
        assert_eq!(OPENMETRICS_SERIES.to_vec(), names);
        assert_eq!(CSV_SERIES.to_vec(), names);
    }

    #[test]
    fn openmetrics_has_stanzas_labels_and_eof() {
        let text = openmetrics(&sample_recorder());
        assert!(text.contains("# HELP memres_engine_queue_len "));
        assert!(text.contains("# TYPE memres_engine_queue_len gauge"));
        assert!(text.contains("# UNIT memres_engine_queue_len events"));
        assert!(text.contains("memres_net_rack_up_util{rack=\"0\"} 0.25 0.5"));
        assert!(text.contains("memres_tenant_queued_jobs{tenant=\"2\"} 3 1.5"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn csv_is_long_format_in_catalog_order() {
        let csv = timeseries_csv(&sample_recorder());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "series,instance,t_s,value");
        assert_eq!(lines[1], "engine_queue_len,,0,0");
        assert_eq!(lines[2], "engine_queue_len,,0.5,3");
        // net comes after engine, tenant last.
        assert!(lines[5].starts_with("net_rack_up_util,0,"));
        assert!(lines.last().unwrap().starts_with("tenant_queued_jobs,2,"));
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let html = dashboard_html(
            "cell x",
            &sample_recorder(),
            &[("job".to_string(), 12.5), ("compute".to_string(), 7.0)],
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("critical-path attribution"));
        assert!(html.contains("<td>compute</td><td>7</td>"));
        assert!(html.contains("engine_queue_len"));
        assert!(!html.contains("src="), "must not reference external assets");
        assert!(html.ends_with("</body></html>\n"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_recorder();
        let b = sample_recorder();
        assert_eq!(openmetrics(&a), openmetrics(&b));
        assert_eq!(timeseries_csv(&a), timeseries_csv(&b));
        assert_eq!(dashboard_html("t", &a, &[]), dashboard_html("t", &b, &[]));
    }
}
