//! SSD model with write buffer, clean-block pool, and garbage collection.
//!
//! §IV-D of the paper profiles ShuffleMapTasks writing a SATA SSD and finds
//! three regimes (Fig 8d): early tasks ride the device write buffer and
//! pre-erased ("clean") blocks and finish fast; once the buffer fills and
//! clean blocks are depleted, delayed writes and garbage collection activate
//! and interfere; and because Spark keeps inserting tasks regardless, the
//! deepening queue *further suppresses GC*, producing up to 18× spread
//! between the fastest and slowest writers. CAD (§VI-B) works by inserting
//! dispatch gaps that let GC reclaim blocks — so the model must make reclaim
//! rate a decreasing function of write pressure, and recover when idle.
//!
//! Implementation: two processor-shared channels (read/write) whose
//! capacities are re-derived from fluid internal state (buffer fill, clean
//! pool) on a fixed model tick.

use crate::device::{Device, DualChannel, IoDone, Op};
use memres_des::sim::Gen;
use memres_des::time::{SimDuration, SimTime};
use memres_des::Bytes;

#[derive(Clone, Debug)]
pub struct SsdConfig {
    /// Sustained program (flash write) bandwidth with clean blocks available.
    /// Hyperion's SATA SSD: 387 MB/s.
    pub write_bw_clean: f64,
    /// Read bandwidth with no GC interference: 507 MB/s.
    pub read_bw: f64,
    /// Read bandwidth while GC is active (moderate interference per §IV-D).
    pub read_bw_gc: f64,
    /// DRAM write-buffer capacity.
    pub buffer_bytes: f64,
    /// Rate at which the buffer accepts host writes while it has space.
    pub buffer_accept_bw: f64,
    /// Over-provisioned clean-block pool (bytes).
    pub clean_pool_bytes: f64,
    /// Clean fraction below which GC kicks in and programming degrades.
    pub gc_watermark: f64,
    /// GC reclaim rate when the device is idle.
    pub gc_reclaim_idle: f64,
    /// Queue-pressure suppression: reclaim = idle_rate / (1 + alpha * depth).
    pub gc_pressure_alpha: f64,
    /// Extra flash traffic per host byte as the pool empties (write
    /// amplification grows from 1.0 at full pool to 1 + k at empty).
    pub write_amp_k: f64,
    /// Model integration step.
    pub tick: SimDuration,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::hyperion()
    }
}

impl SsdConfig {
    /// Calibrated to the Hyperion SATA SSD (387/507 MB/s peak W/R).
    pub fn hyperion() -> Self {
        const MB: f64 = 1024.0 * 1024.0;
        SsdConfig {
            write_bw_clean: 387.0 * MB,
            read_bw: 507.0 * MB,
            read_bw_gc: 360.0 * MB,
            buffer_bytes: 512.0 * MB,
            buffer_accept_bw: 1400.0 * MB,
            clean_pool_bytes: 10.0 * 1024.0 * MB,
            gc_watermark: 0.30,
            gc_reclaim_idle: 300.0 * MB,
            gc_pressure_alpha: 0.12,
            write_amp_k: 0.7,
            tick: SimDuration::from_millis(100),
        }
    }

    /// Shrunken variant for unit tests (small pool, fast transitions).
    pub fn test_small() -> Self {
        SsdConfig {
            write_bw_clean: 100.0,
            read_bw: 200.0,
            read_bw_gc: 120.0,
            buffer_bytes: 50.0,
            buffer_accept_bw: 400.0,
            clean_pool_bytes: 300.0,
            gc_watermark: 0.3,
            gc_reclaim_idle: 30.0,
            gc_pressure_alpha: 0.5,
            write_amp_k: 2.0,
            tick: SimDuration::from_millis(100),
        }
    }
}

pub struct Ssd {
    cfg: SsdConfig,
    ch: DualChannel,
    /// Bytes sitting in the DRAM write buffer awaiting programming.
    buffer_fill: f64,
    /// Clean (erased, immediately programmable) bytes remaining.
    clean_bytes: f64,
    /// Host-write bytes accepted as of the last tick (for inflow deltas).
    accepted_marker: f64,
    next_tick: SimTime,
    gen: Gen,
    /// Trace sink plus the node id to stamp on events (DESIGN.md §4.11).
    tracer: Option<(u32, memres_trace::SharedSink)>,
    /// Last observed GC-active state, for edge-triggered GcStart/GcEnd.
    gc_traced: bool,
    /// Last observed buffer-full state, for edge-triggered BufFull/BufDrained.
    buf_traced: bool,
}

impl Ssd {
    pub fn new(cfg: SsdConfig) -> Self {
        let ch = DualChannel::new(cfg.read_bw, cfg.buffer_accept_bw);
        let clean = cfg.clean_pool_bytes;
        Ssd {
            cfg,
            ch,
            buffer_fill: 0.0,
            clean_bytes: clean,
            accepted_marker: 0.0,
            next_tick: SimTime::ZERO,
            gen: Gen::default(),
            tracer: None,
            gc_traced: false,
            buf_traced: false,
        }
    }

    pub fn hyperion() -> Self {
        Ssd::new(SsdConfig::hyperion())
    }

    pub fn clean_fraction(&self) -> f64 {
        self.clean_bytes / self.cfg.clean_pool_bytes
    }

    pub fn gc_active(&self) -> bool {
        self.clean_fraction() < self.cfg.gc_watermark
    }

    pub fn buffer_fill(&self) -> f64 {
        self.buffer_fill
    }

    /// Effective flash-programming rate for the *current* internal state.
    fn program_rate(&self, write_depth: usize) -> f64 {
        let frac = self.clean_fraction();
        if frac >= self.cfg.gc_watermark {
            self.cfg.write_bw_clean
        } else {
            // Below the watermark programming is increasingly bound by
            // reclaim; interpolate from full speed at the watermark down to
            // the (pressure-suppressed) reclaim rate at an empty pool.
            let reclaim = self.reclaim_rate(write_depth);
            let t = (frac / self.cfg.gc_watermark).clamp(0.0, 1.0);
            reclaim + (self.cfg.write_bw_clean - reclaim) * t
        }
    }

    fn reclaim_rate(&self, write_depth: usize) -> f64 {
        self.cfg.gc_reclaim_idle / (1.0 + self.cfg.gc_pressure_alpha * write_depth as f64)
    }

    fn write_amp(&self) -> f64 {
        1.0 + self.cfg.write_amp_k * (1.0 - self.clean_fraction())
    }

    /// Whether internal state still needs ticking.
    fn active(&self) -> bool {
        self.ch.queue_depth() > 0
            || self.buffer_fill > 1.0
            || self.clean_bytes < self.cfg.clean_pool_bytes - 1.0
    }

    /// Integrate fluid state across one tick and re-derive channel rates.
    fn run_tick(&mut self, now: SimTime) {
        let dt = self.cfg.tick.as_secs_f64();
        let depth = self.ch.write.load();

        // Host bytes accepted into the buffer since the previous tick.
        let accepted_total = self.ch.write.work_done;
        let inflow = (accepted_total - self.accepted_marker).max(0.0);
        self.accepted_marker = accepted_total;

        // Flash programming drains the buffer.
        let program_possible = self.program_rate(depth) * dt;
        let program_actual = (self.buffer_fill + inflow).min(program_possible);
        self.buffer_fill =
            (self.buffer_fill + inflow - program_actual).clamp(0.0, self.cfg.buffer_bytes);

        // Clean pool: consumed by programming (amplified), replenished by GC.
        let consumed = program_actual * self.write_amp();
        let reclaimed = self.reclaim_rate(depth) * dt;
        self.clean_bytes =
            (self.clean_bytes - consumed + reclaimed).clamp(0.0, self.cfg.clean_pool_bytes);

        self.trace_transitions(now);

        // Re-derive channel capacities for the next interval.
        let accept = if self.buffer_fill >= self.cfg.buffer_bytes * 0.98 {
            self.program_rate(depth)
        } else {
            self.cfg.buffer_accept_bw
        };
        self.ch.write.set_capacity(now, accept.max(1.0));
        let read_bw = if self.gc_active() {
            self.cfg.read_bw_gc
        } else {
            self.cfg.read_bw
        };
        self.ch.read.set_capacity(now, read_bw);
        self.gen.bump();
    }

    /// Edge-triggered GC / buffer-fill trace events (called once per tick).
    /// Buffer "full" uses the same 98% threshold that throttles host accepts;
    /// "drained" fires once the buffer is essentially empty again.
    fn trace_transitions(&mut self, now: SimTime) {
        let Some((node, sink)) = &self.tracer else {
            return;
        };
        let node = *node;
        let gc = self.clean_fraction() < self.cfg.gc_watermark;
        if gc != self.gc_traced {
            let ev = if gc {
                memres_trace::TraceEvent::GcStart { node }
            } else {
                memres_trace::TraceEvent::GcEnd { node }
            };
            sink.borrow_mut().emit(now, ev);
            self.gc_traced = gc;
        }
        let full = self.buffer_fill >= self.cfg.buffer_bytes * 0.98;
        let drained = self.buffer_fill <= 1.0;
        if full && !self.buf_traced {
            sink.borrow_mut()
                .emit(now, memres_trace::TraceEvent::BufFull { node });
            self.buf_traced = true;
        } else if drained && self.buf_traced {
            sink.borrow_mut()
                .emit(now, memres_trace::TraceEvent::BufDrained { node });
            self.buf_traced = false;
        }
    }

    fn catch_up_ticks(&mut self, now: SimTime) {
        while self.next_tick <= now {
            let t = self.next_tick;
            self.run_tick(t);
            self.next_tick = t + self.cfg.tick;
        }
    }
}

impl Device for Ssd {
    fn submit(&mut self, now: SimTime, op: Op, bytes: f64, tag: u64) {
        self.catch_up_ticks(now);
        if self.next_tick == SimTime::ZERO || !self.active() {
            // (Re)arm the tick train when waking from idle.
            self.next_tick = now + self.cfg.tick;
        }
        self.ch.submit(now, op, Bytes(bytes), tag);
        self.gen.bump();
    }

    fn poll(&mut self, now: SimTime) -> Vec<IoDone> {
        self.catch_up_ticks(now);
        let done = self.ch.poll(now);
        if !done.is_empty() {
            self.gen.bump();
        }
        done
    }

    fn next_event(&self) -> Option<SimTime> {
        let ps = self.ch.next_event();
        if self.active() {
            Some(ps.map_or(self.next_tick, |t| t.min(self.next_tick)))
        } else {
            ps
        }
    }

    fn gen(&self) -> Gen {
        self.gen
    }

    fn queue_depth(&self) -> usize {
        self.ch.queue_depth()
    }

    fn write_bandwidth(&self) -> f64 {
        self.cfg.write_bw_clean
    }

    fn read_bandwidth(&self) -> f64 {
        self.cfg.read_bw
    }

    fn current_read_bandwidth(&self) -> f64 {
        if self.gc_active() {
            self.cfg.read_bw_gc
        } else {
            self.cfg.read_bw
        }
    }

    fn gc_active(&self) -> bool {
        Ssd::gc_active(self)
    }

    fn buffer_fill(&self) -> f64 {
        Ssd::buffer_fill(self)
    }

    /// Degradation fault: scale every bandwidth parameter by `factor`. The
    /// new rates apply immediately (channel capacities are reset here, not
    /// just at the next model tick); buffer/pool *capacities* are unchanged.
    fn degrade(&mut self, now: SimTime, factor: f64) {
        let f = factor.clamp(1e-6, 1.0);
        self.catch_up_ticks(now);
        self.cfg.write_bw_clean *= f;
        self.cfg.read_bw *= f;
        self.cfg.read_bw_gc *= f;
        self.cfg.buffer_accept_bw *= f;
        self.cfg.gc_reclaim_idle *= f;
        let depth = self.ch.write.load();
        let accept = if self.buffer_fill >= self.cfg.buffer_bytes * 0.98 {
            self.program_rate(depth)
        } else {
            self.cfg.buffer_accept_bw
        };
        self.ch.write.set_capacity(now, accept.max(1.0));
        self.ch
            .read
            .set_capacity(now, self.current_read_bandwidth().max(1.0));
        self.gen.bump();
    }

    fn set_tracer(&mut self, node: u32, sink: memres_trace::SharedSink) {
        self.tracer = Some((node, sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Submit writes back-to-back with `gap` seconds between completions and
    /// record each write's latency.
    fn sequential_writes(ssd: &mut Ssd, count: usize, bytes: f64, gap: f64) -> Vec<f64> {
        let mut latencies = Vec::new();
        #[allow(unused_assignments)]
        let mut now = SimTime::ZERO;
        for i in 0..count {
            ssd.submit(now, Op::Write, bytes, i as u64);
            let start = now;
            loop {
                let t = ssd.next_event().expect("ssd should be active");
                let done = ssd.poll(t);
                now = t;
                if done.iter().any(|d| d.tag == i as u64) {
                    break;
                }
            }
            latencies.push(now.since(start).as_secs_f64());
            now += SimDuration::from_secs_f64(gap);
        }
        latencies
    }

    #[test]
    fn fresh_device_writes_at_burst_rate() {
        let mut ssd = Ssd::new(SsdConfig::test_small());
        // 40 bytes at 400/s accept: 0.1 s
        let lat = sequential_writes(&mut ssd, 1, 40.0, 0.0);
        assert!((lat[0] - 0.1).abs() < 0.02, "latency {}", lat[0]);
    }

    #[test]
    fn sustained_writes_degrade_then_collapse() {
        let mut ssd = Ssd::new(SsdConfig::test_small());
        // Total = 40 * 60 = 2400 bytes >> buffer(50) + pool(500): must push
        // the device through buffer-full and GC-bound regimes.
        let lat = sequential_writes(&mut ssd, 60, 40.0, 0.0);
        let early: f64 = lat[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = lat[55..].iter().sum::<f64>() / 5.0;
        assert!(
            late > early * 3.0,
            "expected ≥3x degradation, early={early:.3}s late={late:.3}s"
        );
    }

    #[test]
    fn idle_gaps_preserve_performance() {
        // CAD's mechanism: the same byte volume written with idle gaps keeps
        // the clean pool healthier than back-to-back writes.
        let cfg = SsdConfig::test_small();
        let mut packed = Ssd::new(cfg.clone());
        let lat_packed = sequential_writes(&mut packed, 40, 40.0, 0.0);
        let mut gapped = Ssd::new(cfg);
        let lat_gapped = sequential_writes(&mut gapped, 40, 40.0, 1.0);
        let p: f64 = lat_packed[35..].iter().sum::<f64>();
        let g: f64 = lat_gapped[35..].iter().sum::<f64>();
        assert!(g < p, "gapped tail {g:.3}s should beat packed tail {p:.3}s");
    }

    #[test]
    fn pool_recovers_when_idle() {
        let mut ssd = Ssd::new(SsdConfig::test_small());
        sequential_writes(&mut ssd, 30, 40.0, 0.0);
        assert!(ssd.clean_fraction() < 0.5);
        // Drain all internal ticks with no new work: pool refills.
        while let Some(t) = ssd.next_event() {
            ssd.poll(t);
        }
        assert!(
            ssd.clean_fraction() > 0.99,
            "pool at {}",
            ssd.clean_fraction()
        );
        assert!(ssd.buffer_fill() < 1.0);
    }

    #[test]
    fn reads_slow_down_under_gc() {
        let cfg = SsdConfig::test_small();
        let mut ssd = Ssd::new(cfg.clone());
        // Exhaust the pool.
        sequential_writes(&mut ssd, 40, 40.0, 0.0);
        assert!(ssd.gc_active());
        let now = ssd.next_event().unwrap();
        ssd.poll(now);
        ssd.submit(now, Op::Read, 120.0, 999);
        let done_at = loop {
            let t = ssd.next_event().unwrap();
            if ssd.poll(t).iter().any(|d| d.tag == 999) {
                break t;
            }
        };
        let took = done_at.since(now).as_secs_f64();
        let clean_time = 120.0 / cfg.read_bw;
        assert!(took > clean_time * 1.2, "read under GC took {took}s");
    }

    #[test]
    fn deep_queue_suppresses_reclaim() {
        let cfg = SsdConfig::test_small();
        let ssd = Ssd::new(cfg);
        assert!(ssd.reclaim_rate(0) > ssd.reclaim_rate(10) * 3.0);
    }

    #[test]
    fn degrade_scales_io_latency() {
        let time_one_read = |ssd: &mut Ssd, start: SimTime| -> f64 {
            ssd.submit(start, Op::Read, 100.0, 7);
            loop {
                let t = ssd.next_event().unwrap();
                if ssd.poll(t).iter().any(|d| d.tag == 7) {
                    break t.since(start).as_secs_f64();
                }
            }
        };
        let mut healthy = Ssd::new(SsdConfig::test_small());
        let base = time_one_read(&mut healthy, SimTime::ZERO);
        let mut degraded = Ssd::new(SsdConfig::test_small());
        degraded.degrade(SimTime::ZERO, 0.5);
        let slow = time_one_read(&mut degraded, SimTime::ZERO);
        assert!(
            (slow - base * 2.0).abs() < base * 0.1,
            "halved bandwidth should double latency: base={base:.3}s slow={slow:.3}s"
        );
        assert!((degraded.write_bandwidth() - 50.0).abs() < 1e-9);
    }
}
