//! # memres-storage — device and local-filesystem models
//!
//! The hierarchical storage stack of the paper's Hyperion nodes:
//!
//! * [`RamDisk`] — tmpfs at memory bandwidth (the data-centric HDFS backing).
//! * [`Ssd`] — SATA SSD with a DRAM write buffer, a clean-block pool, and
//!   pressure-sensitive garbage collection (the §IV-C/§IV-D subject).
//! * [`Hdd`] — single-spindle disk, for completeness.
//! * [`LocalFs`] — a write-back page cache mounted over any device; produces
//!   the cache-plateau behaviour of Fig 8a.
//!
//! Everything follows the polled-component idiom of `memres-des`: mutate,
//! then ask `next_event()`/`gen()` and schedule a wake.

pub mod device;
pub mod fs;
pub mod ssd;

pub use device::{Device, Hdd, IoDone, Op, RamDisk};
pub use fs::{CacheConfig, FileId, FsDone, LocalFs};
pub use ssd::{Ssd, SsdConfig};
