//! Block-device models.
//!
//! All devices expose the same polled interface: submit tagged read/write
//! requests, ask for the next internal event time, poll completions. Service
//! is processor-shared per direction — the fluid analogue of many concurrent
//! I/O streams splitting device bandwidth.

use memres_des::ps::PsResource;
use memres_des::sim::Gen;
use memres_des::time::SimTime;
use memres_des::Bytes;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    Read,
    Write,
}

/// A finished device request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoDone {
    pub op: Op,
    pub tag: u64,
}

/// Polled block-device interface (object-safe; tags are opaque u64s).
pub trait Device {
    /// Submit a request of `bytes`. Completion arrives via [`Device::poll`].
    fn submit(&mut self, now: SimTime, op: Op, bytes: f64, tag: u64);
    /// Advance internal state to `now` and take due completions.
    fn poll(&mut self, now: SimTime) -> Vec<IoDone>;
    /// Next instant at which internal state changes (completion or model
    /// tick), or `None` when fully idle.
    fn next_event(&self) -> Option<SimTime>;
    /// Generation for the stale-wake idiom.
    fn gen(&self) -> Gen;
    /// Queue depth (in-flight requests), used by congestion observers.
    fn queue_depth(&self) -> usize;
    /// Peak sequential write bandwidth (for sizing decisions).
    fn write_bandwidth(&self) -> f64;
    /// Peak sequential read bandwidth.
    fn read_bandwidth(&self) -> f64;
    /// Read bandwidth given current internal state (e.g. SSD GC); defaults
    /// to the peak value.
    fn current_read_bandwidth(&self) -> f64 {
        self.read_bandwidth()
    }
    /// True while internal housekeeping (e.g. SSD garbage collection) is
    /// degrading the device. Devices without such a mode report false.
    fn gc_active(&self) -> bool {
        false
    }
    /// Fill fraction of the device's internal write buffer in [0, 1]
    /// (metrics sampling); 0.0 for devices without one.
    fn buffer_fill(&self) -> f64 {
        0.0
    }
    /// Permanently scale the device's bandwidth by `factor` in `(0, 1]` —
    /// a fault-injection hook (worn flash, failing channel). Devices without
    /// a degradation model ignore it.
    fn degrade(&mut self, _now: SimTime, _factor: f64) {}
    /// Attach a trace sink, tagging emitted events with `node`. Devices with
    /// no internal state transitions worth tracing ignore it.
    fn set_tracer(&mut self, _node: u32, _sink: memres_trace::SharedSink) {}
}

/// Two independent PS channels (read + write) with fixed capacities — the
/// shape shared by RAMDisk and HDD (and the SSD's steady "clean" mode).
pub(crate) struct DualChannel {
    pub read: PsResource<u64>,
    pub write: PsResource<u64>,
    gen: Gen,
}

impl DualChannel {
    pub fn new(read_bw: f64, write_bw: f64) -> Self {
        DualChannel {
            read: PsResource::new(read_bw),
            write: PsResource::new(write_bw),
            gen: Gen::default(),
        }
    }

    pub fn submit(&mut self, now: SimTime, op: Op, bytes: Bytes, tag: u64) {
        let bytes = bytes.get();
        match op {
            Op::Read => self.read.add(now, bytes, tag),
            Op::Write => self.write.add(now, bytes, tag),
        };
        self.gen.bump();
    }

    pub fn poll(&mut self, now: SimTime) -> Vec<IoDone> {
        let mut out: Vec<IoDone> = self
            .read
            .poll(now)
            .into_iter()
            .map(|(_, tag)| IoDone { op: Op::Read, tag })
            .collect();
        out.extend(
            self.write
                .poll(now)
                .into_iter()
                .map(|(_, tag)| IoDone { op: Op::Write, tag }),
        );
        if !out.is_empty() {
            self.gen.bump();
        }
        out
    }

    pub fn next_event(&self) -> Option<SimTime> {
        match (self.read.next_completion(), self.write.next_completion()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    pub fn queue_depth(&self) -> usize {
        self.read.load() + self.write.load()
    }
}

/// RAMDisk: tmpfs-style storage at memory bandwidth. The paper reserves
/// 32 GB/node for it and backs both HDFS DataNodes and shuffle stores with it
/// in the data-centric configuration.
pub struct RamDisk {
    ch: DualChannel,
    read_bw: f64,
    write_bw: f64,
}

impl RamDisk {
    pub fn new(read_bw: f64, write_bw: f64) -> Self {
        RamDisk {
            ch: DualChannel::new(read_bw, write_bw),
            read_bw,
            write_bw,
        }
    }

    /// Calibrated default: a slice of one socket's memory bandwidth that the
    /// OS gives tmpfs under concurrent access.
    pub fn hyperion() -> Self {
        RamDisk::new(6.0e9, 4.0e9)
    }
}

impl Device for RamDisk {
    fn submit(&mut self, now: SimTime, op: Op, bytes: f64, tag: u64) {
        self.ch.submit(now, op, Bytes(bytes), tag);
    }
    fn poll(&mut self, now: SimTime) -> Vec<IoDone> {
        self.ch.poll(now)
    }
    fn next_event(&self) -> Option<SimTime> {
        self.ch.next_event()
    }
    fn gen(&self) -> Gen {
        self.ch.gen()
    }
    fn queue_depth(&self) -> usize {
        self.ch.queue_depth()
    }
    fn write_bandwidth(&self) -> f64 {
        self.write_bw
    }
    fn read_bandwidth(&self) -> f64 {
        self.read_bw
    }
}

/// Spinning disk: single spindle, so reads and writes share ONE channel.
/// Not used by the paper's testbed (Hyperion nodes have no local HDD) but
/// provided for completeness of the hierarchical-storage story.
pub struct Hdd {
    ps: PsResource<(Op, u64)>,
    gen: Gen,
    bw: f64,
}

impl Hdd {
    pub fn new(bandwidth: f64) -> Self {
        Hdd {
            ps: PsResource::new(bandwidth),
            gen: Gen::default(),
            bw: bandwidth,
        }
    }
}

impl Device for Hdd {
    fn submit(&mut self, now: SimTime, op: Op, bytes: f64, tag: u64) {
        self.ps.add(now, bytes, (op, tag));
        self.gen.bump();
    }
    fn poll(&mut self, now: SimTime) -> Vec<IoDone> {
        let done: Vec<IoDone> = self
            .ps
            .poll(now)
            .into_iter()
            .map(|(_, (op, tag))| IoDone { op, tag })
            .collect();
        if !done.is_empty() {
            self.gen.bump();
        }
        done
    }
    fn next_event(&self) -> Option<SimTime> {
        self.ps.next_completion()
    }
    fn gen(&self) -> Gen {
        self.gen
    }
    fn queue_depth(&self) -> usize {
        self.ps.load()
    }
    fn write_bandwidth(&self) -> f64 {
        self.bw
    }
    fn read_bandwidth(&self) -> f64 {
        self.bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(d: &mut dyn Device) -> Vec<(SimTime, IoDone)> {
        let mut out = Vec::new();
        while let Some(t) = d.next_event() {
            for io in d.poll(t) {
                out.push((t, io));
            }
        }
        out
    }

    #[test]
    fn ramdisk_reads_and_writes_are_independent() {
        let mut d = RamDisk::new(100.0, 50.0);
        d.submit(SimTime::ZERO, Op::Read, 100.0, 1);
        d.submit(SimTime::ZERO, Op::Write, 50.0, 2);
        let done = drain(&mut d);
        // Both finish at t=1.0: separate channels, no interference.
        assert_eq!(done.len(), 2);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hdd_reads_and_writes_interfere() {
        let mut d = Hdd::new(100.0);
        d.submit(SimTime::ZERO, Op::Read, 100.0, 1);
        d.submit(SimTime::ZERO, Op::Write, 100.0, 2);
        let done = drain(&mut d);
        // Shared spindle: both take 2 s.
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn queue_depth_tracks_in_flight() {
        let mut d = RamDisk::new(10.0, 10.0);
        assert_eq!(d.queue_depth(), 0);
        d.submit(SimTime::ZERO, Op::Write, 100.0, 1);
        d.submit(SimTime::ZERO, Op::Read, 100.0, 2);
        assert_eq!(d.queue_depth(), 2);
        drain(&mut d);
        assert_eq!(d.queue_depth(), 0);
    }

    #[test]
    fn gen_bumps_on_submit_and_completion() {
        let mut d = RamDisk::new(10.0, 10.0);
        let g0 = d.gen();
        d.submit(SimTime::ZERO, Op::Write, 10.0, 1);
        let g1 = d.gen();
        assert_ne!(g0, g1);
        let t = d.next_event().unwrap();
        d.poll(t);
        assert_ne!(d.gen(), g1);
    }
}
